//! # fem2-core — the FEM-2 system, assembled by its design method
//!
//! The paper's contribution is not a single algorithm but a *method*: design
//! a parallel FEM machine **top-down**, as four layers of virtual machine,
//! each **formally specified** (H-graph semantics), then **simulate** the
//! design to measure storage, processing, and communication, and **iterate**
//! until hardware and software fit. This crate is that method, executable:
//!
//! * [`layers`] — the four-layer stack ([`layers::Layer`]), each layer a
//!   formally specified [`fem2_hgraph::VmModel`] with the paper's component
//!   lists, and the implemented-on mapping between layers;
//! * [`spec`] — H-graph grammars for each layer's data objects plus
//!   converters from *live* runtime state (a structural model, a window
//!   descriptor, a machine configuration) into H-graphs, so conformance is
//!   checked against running code, not just on paper;
//! * [`scenario`] — the "typical large-scale application" analyses: a plate
//!   FEM workload (assembly → CG solve → stress recovery) run through the
//!   numerical analyst's VM on the simulated machine, producing the
//!   per-phase processing / storage / communication requirement tables the
//!   design method calls for (experiments E1/E2/E6);
//! * [`design`] — the design-space iteration loop: evaluate candidate
//!   machine organizations against a workload, score them, and converge to
//!   the "proper match of hardware and software organizations" (E10);
//! * [`hash`] — stable content hashing (canonical JSON + FNV-1a) for run
//!   descriptors, the key the serve layer's result cache and registry are
//!   indexed by;
//! * [`verify`] — the static analyzer wired into the system: every scenario
//!   is lowered to a script and checked (protocol conformance, deadlock
//!   freedom, storage bounds) *before* dispatch, and the layer grammars are
//!   checked for well-formedness — the formal specs used as analysis tools,
//!   as the design method promised.

#![forbid(unsafe_code)]

pub mod design;
pub mod hash;
pub mod layers;
pub mod scenario;
pub mod spec;
pub mod verify;

pub use design::{DesignCandidate, DesignSpace, DesignTrace};
pub use layers::{Layer, LayerStack};
pub use scenario::{plate_cg, PlateScenario, ScenarioReport};

// The full stack, re-exported for downstream users (examples, benches).
pub use fem2_appvm as appvm;
pub use fem2_fem as fem;
pub use fem2_hgraph as hgraph;
pub use fem2_kernel as kernel;
pub use fem2_machine as machine;
pub use fem2_navm as navm;
pub use fem2_par as par;
pub use fem2_verify as analyzer;
