//! Stable content hashing for run descriptors.
//!
//! The serve layer keys its result cache and run registry on the *content*
//! of a submission — (scenario, machine config, seed) — so identical
//! submissions from different users resolve to the same record. That only
//! works if the hash is a pure function of the value: byte-stable across
//! processes and runs (no `RandomState`), and independent of any container
//! iteration order. Both properties come from hashing a *canonical*
//! serialization: the value is lowered to a [`Value`] tree, every object's
//! fields are sorted by key recursively, the tree is written as compact
//! JSON, and the bytes go through FNV-1a (64-bit) — a dependency-free,
//! well-specified hash with published test vectors.
//!
//! FNV-1a is not collision-resistant against adversaries; the registry
//! stores the full spec next to the hash, so a (vanishingly unlikely)
//! collision is detectable by comparing specs. For a cache of simulation
//! results that trade-off is right: the hash is an index, not a proof.

use serde::json::Value;
use serde::Serialize;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`: the reference 64-bit fold (xor then multiply).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Return `v` with every object's fields sorted by key, recursively.
/// Arrays keep their order (position is meaning); duplicate keys keep
/// their relative order after the sort (first occurrence wins on lookup,
/// and both occurrences still contribute to the hash).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(canonicalize).collect()),
        Value::Obj(pairs) => {
            let mut sorted: Vec<(String, Value)> = pairs
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Obj(sorted)
        }
        scalar => scalar.clone(),
    }
}

/// The canonical serialization of a value: compact JSON of the
/// key-sorted tree. Two values that differ only in object field order
/// canonicalize to identical bytes.
pub fn canonical_json(v: &Value) -> String {
    let canon = canonicalize(v);
    serde_json::to_string(&canon).expect("canonical tree has no non-finite floats")
}

/// Content hash of a JSON tree: FNV-1a over its canonical serialization.
pub fn content_hash_value(v: &Value) -> u64 {
    fnv1a_64(canonical_json(v).as_bytes())
}

/// Content hash of any serializable value; see [`content_hash_value`].
pub fn content_hash<T: Serialize>(value: &T) -> u64 {
    content_hash_value(&value.to_value())
}

/// The 16-hex-digit rendering used wherever a hash is shown or stored.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fnv1a_matches_published_test_vectors() {
        // From the FNV reference implementation's vector set.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_is_byte_stable_across_runs() {
        // A pinned value must hash to a pinned digest in every process on
        // every platform; this constant is the contract the registry and
        // cache rely on. If it ever changes, the on-disk registry format
        // changed with it.
        let v = Value::Obj(vec![
            ("nx".into(), Value::UInt(32)),
            ("seed".into(), Value::UInt(7)),
            ("tol".into(), Value::Float(1e-6)),
        ]);
        assert_eq!(hash_hex(content_hash_value(&v)), "48568c4ad4ea20a6");
        // And it is reproducible within the process, trivially.
        assert_eq!(content_hash_value(&v), content_hash_value(&v));
    }

    #[test]
    fn object_key_order_is_irrelevant() {
        let a = Value::Obj(vec![
            ("x".into(), Value::UInt(1)),
            ("y".into(), Value::UInt(2)),
            (
                "nested".into(),
                Value::Obj(vec![
                    ("p".into(), Value::Bool(true)),
                    ("q".into(), Value::Str("s".into())),
                ]),
            ),
        ]);
        let b = Value::Obj(vec![
            (
                "nested".into(),
                Value::Obj(vec![
                    ("q".into(), Value::Str("s".into())),
                    ("p".into(), Value::Bool(true)),
                ]),
            ),
            ("y".into(), Value::UInt(2)),
            ("x".into(), Value::UInt(1)),
        ]);
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(content_hash_value(&a), content_hash_value(&b));
    }

    #[test]
    fn hashmap_iteration_order_cannot_leak_into_the_hash() {
        // Build the same logical object through HashMaps with different
        // insertion histories: RandomState makes iteration order
        // process-random, which is exactly what canonicalization must
        // erase.
        let mut m1: HashMap<String, u64> = HashMap::new();
        for (k, v) in [("alpha", 1u64), ("beta", 2), ("gamma", 3), ("delta", 4)] {
            m1.insert(k.into(), v);
        }
        let mut m2: HashMap<String, u64> = HashMap::new();
        for (k, v) in [("delta", 4u64), ("gamma", 3), ("beta", 2), ("alpha", 1)] {
            m2.insert(k.into(), v);
        }
        let as_value = |m: &HashMap<String, u64>| {
            Value::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect(),
            )
        };
        assert_eq!(
            content_hash_value(&as_value(&m1)),
            content_hash_value(&as_value(&m2))
        );
    }

    #[test]
    fn array_order_still_matters() {
        let a = Value::Arr(vec![Value::UInt(1), Value::UInt(2)]);
        let b = Value::Arr(vec![Value::UInt(2), Value::UInt(1)]);
        assert_ne!(content_hash_value(&a), content_hash_value(&b));
    }

    #[test]
    fn distinct_values_get_distinct_hashes() {
        let base = Value::Obj(vec![("n".into(), Value::UInt(32))]);
        let other = Value::Obj(vec![("n".into(), Value::UInt(33))]);
        assert_ne!(content_hash_value(&base), content_hash_value(&other));
    }

    #[test]
    fn machine_configs_hash_through_serialize() {
        let a = fem2_machine::MachineConfig::fem2_default();
        let mut b = a.clone();
        assert_eq!(content_hash(&a), content_hash(&b));
        b.clusters = 8;
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(hash_hex(0), "0000000000000000");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(hash_hex(0xabc), "0000000000000abc");
    }
}
