//! Scenario analyses: the "typical large-scale application" of the design
//! method, run end-to-end through the numerical analyst's VM.
//!
//! The workload is the one the paper's applications imply (and that
//! Adams–Voigt analyze in reference [8]): a plate model — assemble element
//! stiffnesses, solve the resulting SPD system by conjugate gradients with a
//! 5-point-stencil operator, recover stresses. On the simulated plane the
//! run produces the paper's three requirement families per phase:
//! processing (flops), storage (allocation high-water), and communication
//! (messages, words).

use fem2_kernel::WorkProfile;
use fem2_machine::stats::PhaseCounters;
use fem2_machine::{Cycles, MachineConfig, RunAborted, RunBudget};
use fem2_navm::{ArrayId, NaVm};
use fem2_trace::{EventKind, TraceEvent, TraceHandle, NO_CLUSTER, NO_PE};

/// Per-element assembly work of a Quad4 plane-stress element (four Gauss
/// points of `BᵀDB` products plus bookkeeping), as charged on the simulated
/// plane.
pub const ASSEMBLY_PROFILE_PER_ELEMENT: WorkProfile = WorkProfile {
    flops: 1200,
    int_ops: 300,
    mem_words: 160,
};

/// Per-element stress-recovery work (gather, centre-point `B·u`, `D·ε`).
pub const STRESS_PROFILE_PER_ELEMENT: WorkProfile = WorkProfile {
    flops: 120,
    int_ops: 40,
    mem_words: 24,
};

/// Conjugate gradients on the 5-point-stencil operator, written entirely in
/// NA-VM operations, so the same function runs on the native plane (real
/// threads) and the simulated plane (cost accounting). Solves `A·x = b`
/// with `b ≡ 1`, `x₀ = 0`. Returns `(iterations, final residual, x)`.
pub fn plate_cg(
    vm: &mut NaVm,
    nx: usize,
    ny: usize,
    tol: f64,
    max_iters: usize,
) -> (usize, f64, ArrayId) {
    let n = nx * ny;
    let b = vm.vector(n);
    vm.fill(b, |_, _| 1.0);
    let x = vm.vector(n);
    let r = vm.vector(n);
    vm.copy(b, r);
    let p = vm.vector(n);
    vm.copy(r, p);
    let ap = vm.vector(n);
    let mut rr = vm.inner(r, r);
    let target = tol * rr.sqrt();
    let mut iters = 0;
    let mut res = rr.sqrt();
    // The budget poll makes CG cooperatively abortable at iteration
    // granularity: on the simulated plane an armed budget stops the loop at
    // the first iteration boundary past the limit (deterministically for
    // the cycle budget); unbudgeted and native-plane runs never see it.
    while iters < max_iters && res > target && vm.budget_exceeded().is_none() {
        vm.stencil5(p, ap, nx, ny);
        let pap = vm.inner(p, ap);
        if pap <= 0.0 {
            break;
        }
        let alpha = rr / pap;
        vm.axpy(alpha, p, x);
        vm.axpy(-alpha, ap, r);
        let rr_new = vm.inner(r, r);
        res = rr_new.sqrt();
        let beta = rr_new / rr;
        rr = rr_new;
        vm.xpby(r, beta, p);
        iters += 1;
    }
    (iters, res, x)
}

/// A plate scenario: grid size, task count, machine, solver controls.
#[derive(Clone, Debug)]
pub struct PlateScenario {
    /// Grid points in x.
    pub nx: usize,
    /// Grid points in y.
    pub ny: usize,
    /// NA-VM task count.
    pub tasks: u32,
    /// The machine organization under evaluation.
    pub machine: MachineConfig,
    /// CG relative tolerance.
    pub tol: f64,
    /// CG iteration cap.
    pub max_iters: usize,
    /// Trace sink threaded into the simulated machine (disabled by
    /// default; tracing is observation-only and never changes results).
    pub trace: TraceHandle,
    /// Let warning-severity verification findings through the pre-dispatch
    /// gate ([`PlateScenario::run`] still hard-fails on errors).
    pub allow_warnings: bool,
    /// Run budget enforced by [`run_budgeted`](Self::run_budgeted)
    /// (unlimited by default). Like `trace`, this is an execution control,
    /// not part of the scenario's identity: it lives outside the machine
    /// config so armed budgets never perturb content hashes.
    pub budget: RunBudget,
}

impl PlateScenario {
    /// An `n × n` plate on `machine`, one task per worker PE.
    pub fn square(n: usize, machine: MachineConfig) -> Self {
        let tasks = machine.total_workers().max(1);
        PlateScenario {
            nx: n,
            ny: n,
            tasks,
            machine,
            tol: 1e-6,
            max_iters: 5000,
            trace: TraceHandle::disabled(),
            allow_warnings: false,
            budget: RunBudget::unlimited(),
        }
    }

    /// The same scenario with a trace sink attached.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The same scenario with a run budget armed.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The same scenario with warning-severity verification findings
    /// allowed through the pre-dispatch gate.
    pub fn with_allowed_warnings(mut self) -> Self {
        self.allow_warnings = true;
        self
    }

    /// Statically verify this scenario without running it: protocol
    /// conformance, window-exchange deadlock freedom, and storage bounds
    /// over the lowered scenario script.
    pub fn verify(&self) -> fem2_verify::Report {
        let script = crate::verify::scenario_script(self);
        fem2_verify::check_script(&script, &self.machine)
    }

    /// Verify, then run on the simulated plane. Scenarios the analyzer
    /// rejects are returned as `Err` with the full diagnostic report;
    /// warnings also reject unless [`allow_warnings`](Self::allow_warnings)
    /// is set.
    pub fn try_run(&self) -> Result<ScenarioReport, Box<fem2_verify::Report>> {
        let report = self.verify();
        if report.blocks(self.allow_warnings) {
            return Err(Box::new(report));
        }
        Ok(self.run_unchecked())
    }

    /// Run on the simulated plane and collect the requirement tables.
    /// The static verifier runs first and a rejected scenario panics with
    /// its diagnostics; use [`try_run`](Self::try_run) to handle rejection,
    /// or [`run_unchecked`](Self::run_unchecked) to skip the gate.
    pub fn run(&self) -> ScenarioReport {
        match self.try_run() {
            Ok(report) => report,
            Err(diagnostics) => {
                panic!("scenario rejected by static verification:\n{diagnostics}")
            }
        }
    }

    /// Run without the pre-dispatch verification gate.
    pub fn run_unchecked(&self) -> ScenarioReport {
        self.run_supervised(&RunBudget::unlimited())
            .expect("an unlimited budget never aborts")
    }

    /// Run under the scenario's armed [`budget`](Self::budget): the same
    /// execution as [`run_unchecked`](Self::run_unchecked), but a run that
    /// exceeds a deterministic limit (sim cycles, DES events), blows its
    /// wall-clock deadline, or is cooperatively cancelled winds down and
    /// returns a structured [`RunAborted`] instead of a report.
    ///
    /// Abort points are checked at phase and solver-iteration granularity,
    /// so for the deterministic limits the abort (cause and observed
    /// progress) is itself deterministic: two budgeted runs of the same
    /// scenario abort identically.
    pub fn run_budgeted(&self) -> Result<ScenarioReport, RunAborted> {
        self.run_supervised(&self.budget)
    }

    fn run_supervised(&self, budget: &RunBudget) -> Result<ScenarioReport, RunAborted> {
        let mut vm = NaVm::simulated(self.machine.clone(), self.tasks);
        vm.set_trace(self.trace.clone());
        vm.set_budget(budget.clone());
        let elements = (self.nx - 1).max(1) * (self.ny - 1).max(1);

        vm.phase("assembly");
        let stmts: Vec<_> = vm
            .tasks()
            .iter()
            .map(|t| {
                let share = vm.tasks().share(elements, t).len() as u64;
                (t, ASSEMBLY_PROFILE_PER_ELEMENT.scaled(share))
            })
            .collect();
        vm.pardo(&stmts);
        self.check_abort(&vm)?;

        vm.phase("solve");
        let (iterations, residual, _x) =
            plate_cg(&mut vm, self.nx, self.ny, self.tol, self.max_iters);
        self.check_abort(&vm)?;

        vm.phase("stress");
        let stmts: Vec<_> = vm
            .tasks()
            .iter()
            .map(|t| {
                let share = vm.tasks().share(elements, t).len() as u64;
                (t, STRESS_PROFILE_PER_ELEMENT.scaled(share))
            })
            .collect();
        vm.pardo(&stmts);
        self.check_abort(&vm)?;

        let machine = vm.machine().expect("simulated plane");
        let stats = &machine.stats;
        let phases: Vec<(String, PhaseCounters)> = stats
            .phase_names()
            .iter()
            .map(|n| {
                (
                    n.clone(),
                    *stats.get(n).expect("phase_names lists existing phases"),
                )
            })
            .collect();
        let total = stats.total();
        Ok(ScenarioReport {
            elapsed: vm.elapsed(),
            engine_events: machine.events,
            iterations,
            residual,
            converged: iterations < self.max_iters,
            phases,
            peak_memory_words: machine.peak_memory(),
            total_memory_words: machine.total_memory_high_water(),
            total_messages: machine.network.messages,
            total_words_moved: machine.network.total_words_moved(),
            total_flops: total.flops,
            table: stats.table(),
            unknowns: self.nx * self.ny,
            alloc_link_records: machine.network.allocated_link_records() as u64,
            alloc_cluster_records: machine.allocated_cluster_records() as u64,
        })
    }

    /// If the VM's budget has been exceeded, record a [`EventKind::RunAbort`]
    /// instant in the trace and surface the structured abort.
    fn check_abort(&self, vm: &NaVm) -> Result<(), RunAborted> {
        if let Some(abort) = vm.budget_exceeded() {
            let cause = abort.cause as u8;
            self.trace.emit(|| {
                TraceEvent::instant(
                    vm.elapsed(),
                    NO_CLUSTER,
                    NO_PE,
                    EventKind::RunAbort { cause },
                )
            });
            return Err(abort);
        }
        Ok(())
    }
}

/// The requirement tables of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Simulated makespan in cycles.
    pub elapsed: Cycles,
    /// Machine-level events the engine processed (PE charges and remote
    /// transfers). Always recorded — unlike trace-derived counts this does
    /// not require a sink, so throughput is measurable for every run.
    pub engine_events: u64,
    /// CG iterations taken.
    pub iterations: usize,
    /// Final CG residual.
    pub residual: f64,
    /// Whether CG met its tolerance.
    pub converged: bool,
    /// Per-phase counters in phase order.
    pub phases: Vec<(String, PhaseCounters)>,
    /// Largest single-cluster memory high-water, words.
    pub peak_memory_words: u64,
    /// Sum of cluster memory high-waters, words.
    pub total_memory_words: u64,
    /// Remote messages sent.
    pub total_messages: u64,
    /// Total words moved (payload + headers).
    pub total_words_moved: u64,
    /// Total floating-point operations charged.
    pub total_flops: u64,
    /// Rendered per-phase table.
    pub table: String,
    /// Number of unknowns solved.
    pub unknowns: usize,
    /// Link records the sparse network slab materialized — the memory the
    /// run actually paid for, versus the topology's full link id space.
    pub alloc_link_records: u64,
    /// Cluster PE lanes materialized (clusters that ran work or faulted).
    pub alloc_cluster_records: u64,
}

impl ScenarioReport {
    /// Counters of a named phase.
    pub fn phase(&self, name: &str) -> Option<&PhaseCounters> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// One summary row: problem size, cycles, flops, messages, words,
    /// memory.
    pub fn row(&self) -> String {
        format!(
            "{:>8} {:>14} {:>14} {:>9} {:>12} {:>12} {:>6}",
            self.unknowns,
            self.elapsed,
            self.total_flops,
            self.total_messages,
            self.total_words_moved,
            self.total_memory_words,
            self.iterations
        )
    }

    /// Header matching [`ScenarioReport::row`].
    pub fn header() -> String {
        format!(
            "{:>8} {:>14} {:>14} {:>9} {:>12} {:>12} {:>6}",
            "n", "cycles", "flops", "messages", "words", "mem_words", "iters"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_par::Pool;
    use std::sync::Arc;

    #[test]
    fn scenario_produces_all_three_requirement_families() {
        let r = PlateScenario::square(16, MachineConfig::fem2_default()).run();
        assert!(
            r.converged,
            "{} iters, residual {}",
            r.iterations, r.residual
        );
        // Processing.
        assert!(r.total_flops > 0);
        assert!(r.phase("solve").unwrap().flops > r.phase("stress").unwrap().flops);
        // Storage.
        assert!(r.peak_memory_words > 0);
        // Communication.
        assert!(r.total_messages > 0);
        assert!(r.total_words_moved > 0);
        // Phases in order.
        let names: Vec<&str> = r.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["assembly", "solve", "stress"]);
        assert!(r.table.contains("TOTAL"));
        // Engine throughput is measurable without a trace sink.
        assert!(r.engine_events > 0);
    }

    #[test]
    fn bigger_plates_need_more_of_everything() {
        let small = PlateScenario::square(8, MachineConfig::fem2_default()).run();
        let large = PlateScenario::square(24, MachineConfig::fem2_default()).run();
        assert!(large.total_flops > small.total_flops);
        assert!(large.total_memory_words > small.total_memory_words);
        assert!(large.elapsed > small.elapsed);
        assert!(large.iterations >= small.iterations, "CG iteration growth");
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let one = PlateScenario::square(
            24,
            MachineConfig::clustered(1, 2, fem2_machine::Topology::Crossbar),
        )
        .run();
        let many = PlateScenario::square(24, MachineConfig::fem2_default()).run();
        assert!(
            many.elapsed < one.elapsed,
            "28 workers {} < 1 worker {}",
            many.elapsed,
            one.elapsed
        );
    }

    #[test]
    fn plate_cg_identical_on_both_planes() {
        let mut sim = NaVm::simulated(MachineConfig::fem2_default(), 8);
        let (it_s, res_s, xs) = plate_cg(&mut sim, 12, 12, 1e-8, 2000);
        let mut native = NaVm::native(Arc::new(Pool::new(4)), 8);
        let (it_n, res_n, xn) = plate_cg(&mut native, 12, 12, 1e-8, 2000);
        assert_eq!(it_s, it_n, "same iteration path");
        assert_eq!(res_s.to_bits(), res_n.to_bits(), "bitwise-equal residuals");
        let a = sim.snapshot(xs);
        let b = native.snapshot(xn);
        for (p, q) in a.iter().zip(&b) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn plate_cg_actually_solves_the_system() {
        let mut vm = NaVm::native(Arc::new(Pool::new(4)), 4);
        let (_, res, x) = plate_cg(&mut vm, 10, 10, 1e-10, 5000);
        assert!(res < 1e-8);
        // Verify A·x ≈ 1 directly.
        let ax = vm.vector(100);
        vm.stencil5(x, ax, 10, 10);
        let sol = vm.snapshot(ax);
        for v in sol {
            assert!((v - 1.0).abs() < 1e-6, "A·x component {v}");
        }
    }

    #[test]
    fn four_thousand_cluster_torus_plate_stays_o_active() {
        // The headline sparse-state regression guard: a 64x64 torus of
        // 4096 clusters running a 128-task plate must materialize link
        // and cluster records proportional to the *active* set, not the
        // machine size (link id space 16384; a dense or quadratic
        // allocation would show up orders of magnitude above the bound).
        let cfg = MachineConfig::clustered(
            4096,
            2,
            fem2_machine::Topology::Torus { dims: vec![64, 64] },
        );
        let mut scenario = PlateScenario::square(32, cfg);
        scenario.tasks = 128;
        let r = scenario.run();
        assert!(
            r.converged,
            "{} iters, residual {}",
            r.iterations, r.residual
        );
        assert!(
            r.alloc_cluster_records <= 256,
            "cluster records must track the 128 active clusters, got {}",
            r.alloc_cluster_records
        );
        // Each active cluster's traffic touches at most ~2·diameter
        // directional links of dimension-order route (~8.7k here); a
        // dense network would pin all 16384 records before the first
        // message moved.
        assert!(
            r.alloc_link_records <= 10_000,
            "link records must stay below the 16384-link id space, got {}",
            r.alloc_link_records
        );
    }

    #[test]
    fn report_row_and_header_align() {
        let r = PlateScenario::square(8, MachineConfig::fem2_default()).run();
        let h = ScenarioReport::header();
        let row = r.row();
        assert_eq!(h.split_whitespace().count(), row.split_whitespace().count());
    }

    #[test]
    fn unlimited_budget_matches_run_unchecked() {
        let scenario = PlateScenario::square(12, MachineConfig::fem2_default());
        let plain = scenario.run_unchecked();
        let budgeted = scenario.run_budgeted().expect("unlimited budget");
        assert_eq!(plain.elapsed, budgeted.elapsed);
        assert_eq!(plain.iterations, budgeted.iterations);
        assert_eq!(plain.residual.to_bits(), budgeted.residual.to_bits());
        assert_eq!(plain.total_flops, budgeted.total_flops);
    }

    #[test]
    fn cycle_budget_aborts_deterministically() {
        let full = PlateScenario::square(16, MachineConfig::fem2_default()).run_unchecked();
        let limit = full.elapsed / 4;
        let scenario = PlateScenario::square(16, MachineConfig::fem2_default())
            .with_budget(RunBudget::max_cycles(limit));
        let first = scenario.run_budgeted().expect_err("budget must fire");
        let second = scenario.run_budgeted().expect_err("budget must fire");
        assert_eq!(first, second, "aborts are bitwise-repeatable");
        assert_eq!(first.cause, crate::machine::AbortCause::CyclesExceeded);
        assert!(
            first.sim_cycles >= limit,
            "abort observed past the limit: {} vs {}",
            first.sim_cycles,
            limit
        );
    }

    #[test]
    fn cancelled_run_surfaces_the_cancel_cause() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cancel = Arc::new(AtomicBool::new(false));
        cancel.store(true, Ordering::Relaxed);
        let mut budget = RunBudget::unlimited();
        budget.cancel = Some(cancel);
        let err = PlateScenario::square(12, MachineConfig::fem2_default())
            .with_budget(budget)
            .run_budgeted()
            .expect_err("pre-cancelled run aborts");
        assert_eq!(err.cause, crate::machine::AbortCause::Cancelled);
    }
}
