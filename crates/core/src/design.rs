//! The top-down design iteration loop.
//!
//! > "The entire design process may be iterated, adjusting the design of
//! > each virtual machine level, until the proper match of hardware and
//! > software organizations is found."
//!
//! The hardware-architecture section imposes the requirements the iteration
//! optimizes against: support large dynamic task initiation, large messages
//! and irregular communication, large storage, **multi-user access**, and
//! extensibility — all within a hardware budget. [`DesignRequirements`]
//! encodes that as a workload mix (several independent user problems plus
//! one machine-wide large problem) and a cost cap; [`DesignSpace::iterate`]
//! simulates every candidate organization against the mix and converges on
//! the best feasible one (experiment E10). On this objective the clustered
//! FEM-2 organization wins, which is the paper's own outcome.

use crate::scenario::PlateScenario;
use fem2_machine::{Cycles, MachineConfig, Topology};

/// Hardware cost model (abstract units). PEs dominate; networks scale with
/// their physical resource count.
#[derive(Clone, Copy, Debug)]
pub struct CostWeights {
    /// Cost per PE.
    pub pe: f64,
    /// Cost per cluster chassis (shared memory, kernel support).
    pub cluster: f64,
    /// Cost per network link.
    pub link: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            pe: 1.0,
            cluster: 2.0,
            link: 0.25,
        }
    }
}

impl CostWeights {
    /// The hardware cost of a configuration.
    pub fn cost(&self, cfg: &MachineConfig) -> f64 {
        let n = cfg.clusters as f64;
        let links = match &cfg.topology {
            Topology::Bus => 1.0,
            Topology::Ring => 2.0 * n,
            Topology::Mesh2D { .. } => 4.0 * n,
            Topology::Crossbar => n * n,
            Topology::Torus { dims } => 2.0 * dims.len() as f64 * n,
            Topology::FatTree { .. } => 4.0 * n,
        };
        self.pe * cfg.total_pes() as f64 + self.cluster * n + self.link * links
    }
}

/// The requirements the design iteration evaluates against.
#[derive(Clone, Copy, Debug)]
pub struct DesignRequirements {
    /// Hardware budget: candidates above it are infeasible.
    pub budget: f64,
    /// Simultaneous independent user problems (multi-user access).
    pub users: usize,
    /// Grid size of each user problem.
    pub small_n: usize,
    /// Grid size of the machine-wide large problem.
    pub large_n: usize,
}

impl Default for DesignRequirements {
    fn default() -> Self {
        DesignRequirements {
            budget: 60.0,
            users: 8,
            small_n: 16,
            large_n: 32,
        }
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct DesignCandidate {
    /// The organization evaluated.
    pub config: MachineConfig,
    /// Hardware cost.
    pub cost: f64,
    /// Within budget?
    pub feasible: bool,
    /// Makespan of the user-problem batch (cycles).
    pub batch_cycles: Cycles,
    /// Makespan of the machine-wide large problem (cycles).
    pub large_cycles: Cycles,
    /// Total workload makespan = batch + large (infeasible → `u64::MAX`).
    pub makespan: Cycles,
}

impl DesignCandidate {
    /// The score the iteration minimizes.
    pub fn score(&self) -> f64 {
        if self.feasible {
            self.makespan as f64
        } else {
            f64::INFINITY
        }
    }
}

/// The record of one design iteration run.
#[derive(Clone, Debug)]
pub struct DesignTrace {
    /// Every candidate, in evaluation order.
    pub evaluated: Vec<DesignCandidate>,
    /// Index of the best candidate in `evaluated`.
    pub best: usize,
    /// Best-so-far score after each evaluation (the convergence curve).
    pub best_so_far: Vec<f64>,
}

impl DesignTrace {
    /// The winning candidate.
    pub fn best(&self) -> &DesignCandidate {
        &self.evaluated[self.best]
    }

    /// Render the iteration table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<30} {:>8} {:>10} {:>12} {:>12} {:>12}",
            "configuration", "cost", "feasible", "batch", "large", "makespan"
        );
        for (i, c) in self.evaluated.iter().enumerate() {
            let marker = if i == self.best { " <== best" } else { "" };
            let _ = writeln!(
                out,
                "{:<30} {:>8.1} {:>10} {:>12} {:>12} {:>12}{}",
                c.config.describe(),
                c.cost,
                if c.feasible { "yes" } else { "OVER" },
                c.batch_cycles,
                c.large_cycles,
                if c.feasible {
                    c.makespan.to_string()
                } else {
                    "-".into()
                },
                marker
            );
        }
        out
    }
}

/// A set of candidate machine organizations plus the evaluation policy.
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// The candidates to evaluate.
    pub candidates: Vec<MachineConfig>,
    /// The cost model.
    pub weights: CostWeights,
    /// The requirements/workload mix.
    pub requirements: DesignRequirements,
}

impl DesignSpace {
    /// The standard sweep: clusters × PEs-per-cluster × topology, plus
    /// FEM-1-style flat arrays as baselines.
    pub fn standard_sweep() -> Self {
        let mut candidates = Vec::new();
        for &clusters in &[1u32, 2, 4, 8] {
            for &pes in &[2u32, 4, 8] {
                let mut topos = vec![Topology::Bus, Topology::Ring, Topology::Crossbar];
                if clusters == 4 {
                    topos.push(Topology::Mesh2D { width: 2 });
                } else if clusters == 8 {
                    topos.push(Topology::Mesh2D { width: 4 });
                }
                for topo in topos {
                    if clusters == 1 && topo != Topology::Bus {
                        continue; // one cluster: network choice is moot
                    }
                    candidates.push(MachineConfig::clustered(clusters, pes, topo));
                }
            }
        }
        candidates.push(MachineConfig::fem1_style(16));
        candidates.push(MachineConfig::fem1_style(32));
        DesignSpace {
            candidates,
            weights: CostWeights::default(),
            requirements: DesignRequirements::default(),
        }
    }

    /// Evaluate one configuration against the requirement mix.
    pub fn evaluate(&self, cfg: MachineConfig) -> DesignCandidate {
        let req = self.requirements;
        let cost = self.weights.cost(&cfg);
        let feasible = cost <= req.budget;
        if !feasible {
            return DesignCandidate {
                config: cfg,
                cost,
                feasible,
                batch_cycles: 0,
                large_cycles: 0,
                makespan: u64::MAX,
            };
        }
        // Independent user problems: each runs within one cluster; clusters
        // process their share of the batch serially, so the batch makespan
        // is ceil(users / clusters) sequential problems on one cluster.
        let one_cluster = MachineConfig {
            clusters: 1,
            topology: Topology::Bus,
            ..cfg.clone()
        };
        let t_small = PlateScenario::square(req.small_n, one_cluster)
            .run()
            .elapsed;
        let rounds = req.users.div_ceil(cfg.clusters as usize) as u64;
        let batch_cycles = rounds * t_small;
        // The large problem uses the whole machine.
        let large_cycles = PlateScenario::square(req.large_n, cfg.clone())
            .run()
            .elapsed;
        let makespan = batch_cycles + large_cycles;
        DesignCandidate {
            config: cfg,
            cost,
            feasible,
            batch_cycles,
            large_cycles,
            makespan,
        }
    }

    /// Run the full iteration and trace convergence of the best score.
    pub fn iterate(&self) -> DesignTrace {
        let mut evaluated: Vec<DesignCandidate> = Vec::with_capacity(self.candidates.len());
        let mut best = 0;
        let mut best_so_far = Vec::with_capacity(self.candidates.len());
        for (i, cfg) in self.candidates.iter().cloned().enumerate() {
            let cand = self.evaluate(cfg);
            if cand.score()
                < evaluated
                    .get(best)
                    .map(|c| c.score())
                    .unwrap_or(f64::INFINITY)
            {
                best = i;
            }
            evaluated.push(cand);
            best_so_far.push(evaluated[best].score());
        }
        DesignTrace {
            evaluated,
            best,
            best_so_far,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_space(candidates: Vec<MachineConfig>) -> DesignSpace {
        DesignSpace {
            candidates,
            weights: CostWeights::default(),
            requirements: DesignRequirements {
                budget: 60.0,
                users: 8,
                small_n: 10,
                large_n: 20,
            },
        }
    }

    #[test]
    fn cost_model_orders_sanely() {
        let w = CostWeights::default();
        let small = MachineConfig::clustered(2, 2, Topology::Bus);
        let big = MachineConfig::clustered(8, 8, Topology::Crossbar);
        assert!(w.cost(&big) > w.cost(&small));
    }

    #[test]
    fn over_budget_is_infeasible() {
        let space = quick_space(vec![MachineConfig::clustered(8, 8, Topology::Crossbar)]);
        let c = space.evaluate(space.candidates[0].clone());
        assert!(!c.feasible);
        assert_eq!(c.score(), f64::INFINITY);
    }

    #[test]
    fn iteration_converges_and_best_is_consistent() {
        let space = quick_space(vec![
            MachineConfig::clustered(1, 2, Topology::Bus),
            MachineConfig::clustered(4, 4, Topology::Crossbar),
            MachineConfig::fem1_style(16),
        ]);
        let trace = space.iterate();
        assert_eq!(trace.evaluated.len(), 3);
        for w in trace.best_so_far.windows(2) {
            assert!(w[1] <= w[0], "best-so-far non-increasing");
        }
        let min = trace
            .evaluated
            .iter()
            .map(|c| c.score())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(trace.best().score(), min);
        assert!(trace.table().contains("<== best"));
    }

    #[test]
    fn multi_cluster_beats_single_cluster_on_the_mix() {
        let space = quick_space(vec![]);
        let single = space.evaluate(MachineConfig::clustered(1, 8, Topology::Bus));
        let four = space.evaluate(MachineConfig::clustered(4, 8, Topology::Crossbar));
        assert!(four.feasible && single.feasible);
        assert!(
            four.makespan < single.makespan,
            "clustered {} < single {}",
            four.makespan,
            single.makespan
        );
    }

    #[test]
    fn clustered_beats_flat_array_at_similar_cost() {
        let space = quick_space(vec![]);
        // fem1_style(16): cost 16 + 32 + 0.25 = 48.25; 4x4 crossbar:
        // 16 + 8 + 4 = 28. Both feasible; the clustered machine should win.
        let flat = space.evaluate(MachineConfig::fem1_style(16));
        let clustered = space.evaluate(MachineConfig::clustered(4, 4, Topology::Crossbar));
        assert!(flat.feasible && clustered.feasible);
        assert!(
            clustered.makespan < flat.makespan,
            "clustered {} < flat {}",
            clustered.makespan,
            flat.makespan
        );
    }

    #[test]
    fn standard_sweep_selects_a_clustered_organization() {
        let mut space = DesignSpace::standard_sweep();
        // Keep the test quick.
        space.requirements.small_n = 10;
        space.requirements.large_n = 20;
        let trace = space.iterate();
        let best = trace.best();
        assert!(best.feasible);
        assert!(
            best.config.clusters > 1,
            "the method should pick a clustered organization, got {}",
            best.config.describe()
        );
        assert!(
            best.config.pes_per_cluster > 1,
            "not a flat array: {}",
            best.config.describe()
        );
    }
}
