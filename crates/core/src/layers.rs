//! The four layers of virtual machine and their formal catalog.
//!
//! > "Four layers of virtual machine are currently conceived: (1) The
//! > applications user's machine …, (2) the applications
//! > programmer/numerical analyst's machine …, (3) the systems programmer's
//! > machine …, and (4) the hardware itself."
//!
//! Each [`Layer`] carries a [`VmModel`]: the layer's data-object grammar
//! (from [`crate::spec`]) plus its feature catalog under the five VM
//! components. The stack knows which layer implements which — the top-down
//! refinement chain the design method walks.

use crate::spec;
use fem2_hgraph::{VmComponent, VmModel};

/// The four FEM-2 layers, top to bottom.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Layer {
    /// The structural engineer's interactive workstation.
    ApplicationUser,
    /// The research user's parallel programming machine.
    NumericalAnalyst,
    /// The operating-system implementation machine.
    SystemProgrammer,
    /// The clusters-of-PEs hardware.
    Hardware,
}

impl Layer {
    /// All four layers, top to bottom.
    pub const ALL: [Layer; 4] = [
        Layer::ApplicationUser,
        Layer::NumericalAnalyst,
        Layer::SystemProgrammer,
        Layer::Hardware,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::ApplicationUser => "application user's virtual machine",
            Layer::NumericalAnalyst => "numerical analyst's virtual machine",
            Layer::SystemProgrammer => "system programmer's virtual machine",
            Layer::Hardware => "hardware architecture",
        }
    }

    /// The layer this one is implemented on (the next lower layer), if any.
    pub fn implemented_on(self) -> Option<Layer> {
        match self {
            Layer::ApplicationUser => Some(Layer::NumericalAnalyst),
            Layer::NumericalAnalyst => Some(Layer::SystemProgrammer),
            Layer::SystemProgrammer => Some(Layer::Hardware),
            Layer::Hardware => None,
        }
    }

    /// The crate that realizes this layer in the reproduction.
    pub fn crate_name(self) -> &'static str {
        match self {
            Layer::ApplicationUser => "fem2-appvm",
            Layer::NumericalAnalyst => "fem2-navm",
            Layer::SystemProgrammer => "fem2-kernel",
            Layer::Hardware => "fem2-machine",
        }
    }
}

/// The assembled four-layer design.
pub struct LayerStack {
    models: Vec<(Layer, VmModel)>,
}

impl LayerStack {
    /// Build the FEM-2 stack with every layer's formal model, feature
    /// catalogs populated from the paper's component lists.
    pub fn fem2() -> Self {
        LayerStack {
            models: vec![
                (Layer::ApplicationUser, app_user_model()),
                (Layer::NumericalAnalyst, numerical_analyst_model()),
                (Layer::SystemProgrammer, system_programmer_model()),
                (Layer::Hardware, hardware_model()),
            ],
        }
    }

    /// The formal model of one layer.
    pub fn model(&self, layer: Layer) -> &VmModel {
        &self
            .models
            .iter()
            .find(|(l, _)| *l == layer)
            .expect("all four layers present")
            .1
    }

    /// Number of layers (always 4).
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The full design document: every layer's component summary plus the
    /// refinement chain.
    pub fn design_document(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "THE FEM-2 DESIGN — four layers of virtual machine\n");
        for (layer, model) in &self.models {
            out.push_str(&model.summary());
            let _ = writeln!(out, "realized by: {}", layer.crate_name());
            match layer.implemented_on() {
                Some(lower) => {
                    let _ = writeln!(
                        out,
                        "implemented on: {} ({})\n",
                        lower.name(),
                        lower.crate_name()
                    );
                }
                None => {
                    let _ = writeln!(out, "implemented on: (physical machine)\n");
                }
            }
        }
        out
    }
}

fn app_user_model() -> VmModel {
    let mut m = VmModel::new(Layer::ApplicationUser.name(), spec::app_grammar());
    for d in [
        "structure/substructure model",
        "grid description",
        "node/element description",
        "load set",
        "displacements of nodes",
        "stresses on elements",
    ] {
        m.declare(d, VmComponent::DataObjects);
    }
    for o in [
        "define structure model",
        "generate grid",
        "define elements",
        "solve for displacements",
        "calculate stresses",
        "database store/retrieve",
    ] {
        m.declare(o, VmComponent::Operations);
    }
    m.declare(
        "direct interpretation of user commands",
        VmComponent::SequenceControl,
    );
    m.declare("workspace (user local data)", VmComponent::DataControl);
    m.declare(
        "data base (long-term storage; shared data)",
        VmComponent::DataControl,
    );
    m.declare(
        "dynamic storage allocation for models/results/workspaces",
        VmComponent::StorageManagement,
    );
    m.declare(
        "data movement between data base and workspace",
        VmComponent::StorageManagement,
    );
    m
}

fn numerical_analyst_model() -> VmModel {
    let mut m = VmModel::new(Layer::NumericalAnalyst.name(), spec::navm_grammar());
    m.declare(
        "windows on arrays (row/column/block descriptors)",
        VmComponent::DataObjects,
    );
    for o in [
        "tasks (programmer-defined parallel procedures)",
        "window operations: create/access/assign",
        "broadcast data to a set of tasks",
        "linear algebra operations",
    ] {
        m.declare(o, VmComponent::Operations);
    }
    for c in [
        "forall loops",
        "pardo ... end",
        "task control: initiate/pause/resume/terminate",
        "remote procedure call (routed by window location)",
    ] {
        m.declare(c, VmComponent::SequenceControl);
    }
    for c in [
        "all data owned by a single task",
        "non-local access only via windows",
        "windows transmissible/partitionable/storable",
    ] {
        m.declare(c, VmComponent::DataControl);
    }
    for s in [
        "dynamic creation of data objects by a task",
        "data lifetime = owner task lifetime",
        "dynamic task replication",
        "locals retained over pause/resume",
    ] {
        m.declare(s, VmComponent::StorageManagement);
    }
    m
}

fn system_programmer_model() -> VmModel {
    let mut m = VmModel::new(Layer::SystemProgrammer.name(), spec::kernel_grammar());
    for d in [
        "code blocks/constants blocks",
        "task/procedure activation records",
        "window descriptors",
        "storage representations",
        "the seven kernel message types",
    ] {
        m.declare(d, VmComponent::DataObjects);
    }
    for o in [
        "sequential operations",
        "linear algebra library routines",
        "format and send message",
        "decode and execute message",
    ] {
        m.declare(o, VmComponent::Operations);
    }
    m.declare(
        "sequential control structures",
        VmComponent::SequenceControl,
    );
    m.declare("sequential language data control", VmComponent::DataControl);
    m.declare(
        "general heap with variable size blocks",
        VmComponent::StorageManagement,
    );
    m
}

fn hardware_model() -> VmModel {
    let mut m = VmModel::new(Layer::Hardware.name(), spec::hw_grammar());
    for d in [
        "clusters of PEs around a shared memory",
        "common communication network",
        "cluster input queues",
    ] {
        m.declare(d, VmComponent::DataObjects);
    }
    for o in [
        "kernel PE fields incoming messages",
        "any available PE processes queued messages",
        "fault isolation / reconfiguration",
    ] {
        m.declare(o, VmComponent::Operations);
    }
    m.declare("message-driven dispatch", VmComponent::SequenceControl);
    m.declare(
        "cluster-local shared memory access",
        VmComponent::DataControl,
    );
    m.declare(
        "per-cluster memory capacity",
        VmComponent::StorageManagement,
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_has_four_layers_in_order() {
        let s = LayerStack::fem2();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        for layer in Layer::ALL {
            let m = s.model(layer);
            assert_eq!(m.name(), layer.name());
        }
    }

    #[test]
    fn refinement_chain_is_linear() {
        assert_eq!(
            Layer::ApplicationUser.implemented_on(),
            Some(Layer::NumericalAnalyst)
        );
        assert_eq!(
            Layer::NumericalAnalyst.implemented_on(),
            Some(Layer::SystemProgrammer)
        );
        assert_eq!(
            Layer::SystemProgrammer.implemented_on(),
            Some(Layer::Hardware)
        );
        assert_eq!(Layer::Hardware.implemented_on(), None);
    }

    #[test]
    fn every_layer_declares_all_five_components() {
        let s = LayerStack::fem2();
        for layer in Layer::ALL {
            let m = s.model(layer);
            for c in fem2_hgraph::VmComponent::ALL {
                assert!(!m.features(c).is_empty(), "{} missing {c}", layer.name());
            }
        }
    }

    #[test]
    fn paper_vocabulary_present() {
        let s = LayerStack::fem2();
        let doc = s.design_document();
        for phrase in [
            "windows on arrays",
            "forall loops",
            "general heap with variable size blocks",
            "clusters of PEs around a shared memory",
            "direct interpretation of user commands",
            "remote procedure call",
        ] {
            assert!(doc.contains(phrase), "design document missing {phrase:?}");
        }
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(Layer::Hardware.crate_name(), "fem2-machine");
        assert_eq!(Layer::ApplicationUser.crate_name(), "fem2-appvm");
    }
}
