//! Formal specifications: H-graph grammars per layer, and converters that
//! render *live* runtime state as H-graphs.
//!
//! This is the step the paper calls out as novel: "each layer of virtual
//! machine is formally specified during the design process, using the
//! methods of H-graph semantics". Here the specification is also *checked*:
//! integration tests take real objects — a [`StructuralModel`], a
//! [`WindowDescriptor`], a [`KernelSim`] task population, a
//! [`MachineConfig`] — convert them to H-graphs, and require conformance to
//! the layer grammar.

use fem2_appvm as _; // layer realized by the appvm crate; models come from fem
use fem2_fem::StructuralModel;
use fem2_hgraph::{AtomKind, Grammar, HGraph, Selector, Shape, Value};
use fem2_kernel::window_desc::WindowDescriptor;
use fem2_kernel::{KernelSim, TaskState};
use fem2_machine::MachineConfig;
use std::sync::Arc;

/// Grammar of the application user's data objects: the structural model as
/// stored in the workspace/database.
pub fn app_grammar() -> Arc<Grammar> {
    Arc::new(
        Grammar::builder("app-user data objects")
            .rule("Model", Shape::graph_entry("ModelNode"))
            .rule(
                "ModelNode",
                Shape::node(AtomKind::SymExact("model".into()))
                    .arc("name", "Name")
                    .arc("nodes", "Count")
                    .arc("elements", "Count")
                    .arc("fixed_dofs", "Count")
                    .arc("loads", "LoadsHub"),
            )
            .rule("Name", Shape::node(AtomKind::Str))
            .rule("Count", Shape::node(AtomKind::Int))
            .rule(
                "LoadsHub",
                Shape::node(AtomKind::SymExact("loads".into())).arcs_indexed("LoadSetNode"),
            )
            .rule(
                "LoadSetNode",
                Shape::node(AtomKind::Str).arc("count", "Count"),
            )
            .build()
            .expect("app grammar well-formed"),
    )
}

/// Render a structural model as an H-graph in the app-layer shape.
pub fn model_to_hgraph(m: &StructuralModel) -> HGraph {
    let mut h = HGraph::new();
    let g = h.new_graph(format!("model:{}", m.name));
    let root = h.add_node(g, Value::sym("model"));
    h.set_entry(g, root)
        .expect("fresh graph construction cannot collide");
    let name = h.add_node(g, Value::str(m.name.clone()));
    let nodes = h.add_node(g, Value::int(m.mesh.node_count() as i64));
    let elems = h.add_node(g, Value::int(m.mesh.element_count() as i64));
    let fixed = h.add_node(g, Value::int(m.constraints.fixed_count() as i64));
    let hub = h.add_node(g, Value::sym("loads"));
    h.add_arc(g, root, Selector::name("name"), name)
        .expect("fresh graph construction cannot collide");
    h.add_arc(g, root, Selector::name("nodes"), nodes)
        .expect("fresh graph construction cannot collide");
    h.add_arc(g, root, Selector::name("elements"), elems)
        .expect("fresh graph construction cannot collide");
    h.add_arc(g, root, Selector::name("fixed_dofs"), fixed)
        .expect("fresh graph construction cannot collide");
    h.add_arc(g, root, Selector::name("loads"), hub)
        .expect("fresh graph construction cannot collide");
    for (i, ls) in m.load_sets.iter().enumerate() {
        let lsn = h.add_node(g, Value::str(ls.name.clone()));
        let count = h.add_node(g, Value::int(ls.len() as i64));
        h.add_arc(g, lsn, Selector::name("count"), count)
            .expect("fresh graph construction cannot collide");
        h.add_arc(g, hub, Selector::index(i as u64), lsn)
            .expect("fresh graph construction cannot collide");
    }
    h
}

/// Grammar of the numerical analyst's data objects: window descriptors.
pub fn navm_grammar() -> Arc<Grammar> {
    Arc::new(
        Grammar::builder("numerical-analyst data objects")
            .rule("Window", Shape::graph_entry("WinNode"))
            .rule(
                "WinNode",
                Shape::node(AtomKind::SymExact("window".into()))
                    .arc("array", "Count")
                    .arc("row0", "Count")
                    .arc("row1", "Count")
                    .arc("col0", "Count")
                    .arc("col1", "Count")
                    .arc("owner", "Count")
                    .arc("cluster", "Count"),
            )
            .rule("Count", Shape::node(AtomKind::Int))
            .build()
            .expect("navm grammar well-formed"),
    )
}

/// Render a window descriptor as an H-graph.
pub fn window_to_hgraph(w: &WindowDescriptor) -> HGraph {
    let mut h = HGraph::new();
    let g = h.new_graph("window");
    let root = h.add_node(g, Value::sym("window"));
    h.set_entry(g, root)
        .expect("fresh graph construction cannot collide");
    let fields: [(&str, i64); 7] = [
        ("array", w.array as i64),
        ("row0", w.row0 as i64),
        ("row1", w.row1 as i64),
        ("col0", w.col0 as i64),
        ("col1", w.col1 as i64),
        ("owner", w.owner.0 as i64),
        ("cluster", w.owner_cluster as i64),
    ];
    for (name, v) in fields {
        let n = h.add_node(g, Value::int(v));
        h.add_arc(g, root, Selector::name(name), n)
            .expect("fresh graph construction cannot collide");
    }
    h
}

/// Grammar of the system programmer's data objects: the task population
/// (activation records with legal states).
pub fn kernel_grammar() -> Arc<Grammar> {
    Arc::new(
        Grammar::builder("system-programmer data objects")
            .rule("Tasks", Shape::graph_entry("TaskHub"))
            .rule(
                "TaskHub",
                Shape::node(AtomKind::SymExact("tasks".into())).arcs_indexed("TaskNode"),
            )
            .rule("TaskNode", task_shape("ready"))
            .rule("TaskNode", task_shape("running"))
            .rule("TaskNode", task_shape("paused"))
            .rule("TaskNode", task_shape("done"))
            .rule("Count", Shape::node(AtomKind::Int))
            .build()
            .expect("kernel grammar well-formed"),
    )
}

fn task_shape(state: &str) -> Shape {
    Shape::node(AtomKind::SymExact(state.into()))
        .arc("cluster", "Count")
        .arc_opt("parent", "Count")
}

/// Render a kernel's task population as an H-graph.
pub fn kernel_tasks_to_hgraph(k: &KernelSim) -> HGraph {
    let mut h = HGraph::new();
    let g = h.new_graph("tasks");
    let hub = h.add_node(g, Value::sym("tasks"));
    h.set_entry(g, hub)
        .expect("fresh graph construction cannot collide");
    for i in 0..k.task_count() {
        let rec = k.task(fem2_kernel::TaskId(i as u64));
        let state = match rec.state {
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Paused => "paused",
            TaskState::Done => "done",
        };
        let tn = h.add_node(g, Value::sym(state));
        let cl = h.add_node(g, Value::int(rec.cluster as i64));
        h.add_arc(g, tn, Selector::name("cluster"), cl)
            .expect("fresh graph construction cannot collide");
        if let Some(p) = rec.parent {
            let pn = h.add_node(g, Value::int(p.0 as i64));
            h.add_arc(g, tn, Selector::name("parent"), pn)
                .expect("fresh graph construction cannot collide");
        }
        h.add_arc(g, hub, Selector::index(i as u64), tn)
            .expect("fresh graph construction cannot collide");
    }
    h
}

/// Grammar of the hardware layer: the machine organization.
pub fn hw_grammar() -> Arc<Grammar> {
    Arc::new(
        Grammar::builder("hardware organization")
            .rule("Machine", Shape::graph_entry("MachineNode"))
            .rule(
                "MachineNode",
                Shape::node(AtomKind::SymExact("machine".into()))
                    .arc("topology", "Tag")
                    .arcs_indexed("ClusterNode"),
            )
            .rule(
                "ClusterNode",
                Shape::node(AtomKind::SymExact("cluster".into()))
                    .arc("pes", "Count")
                    .arc("memory", "Count"),
            )
            .rule("Tag", Shape::node(AtomKind::Sym))
            .rule("Count", Shape::node(AtomKind::Int))
            .build()
            .expect("hw grammar well-formed"),
    )
}

/// Render a machine configuration as an H-graph.
pub fn machine_to_hgraph(cfg: &MachineConfig) -> HGraph {
    let mut h = HGraph::new();
    let g = h.new_graph("machine");
    let root = h.add_node(g, Value::sym("machine"));
    h.set_entry(g, root)
        .expect("fresh graph construction cannot collide");
    let topo = h.add_node(g, Value::sym(cfg.topology.name()));
    h.add_arc(g, root, Selector::name("topology"), topo)
        .expect("fresh graph construction cannot collide");
    for c in 0..cfg.clusters {
        let cn = h.add_node(g, Value::sym("cluster"));
        let pes = h.add_node(g, Value::int(cfg.pes_per_cluster as i64));
        let mem = h.add_node(g, Value::int(cfg.memory_per_cluster as i64));
        h.add_arc(g, cn, Selector::name("pes"), pes)
            .expect("fresh graph construction cannot collide");
        h.add_arc(g, cn, Selector::name("memory"), mem)
            .expect("fresh graph construction cannot collide");
        h.add_arc(g, root, Selector::index(c as u64), cn)
            .expect("fresh graph construction cannot collide");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_fem::cantilever_plate;
    use fem2_kernel::{CodeBlock, TaskId, WorkProfile};
    use fem2_machine::{Machine, Topology};

    #[test]
    fn structural_model_conforms_to_app_grammar() {
        let m = cantilever_plate(4, 2, -1e3);
        let h = model_to_hgraph(&m);
        let g = h.root().unwrap();
        app_grammar().graph_conforms(&h, g, "Model").unwrap();
    }

    #[test]
    fn model_without_loads_still_conforms() {
        let m = StructuralModel::new("bare");
        let h = model_to_hgraph(&m);
        app_grammar()
            .graph_conforms(&h, h.root().unwrap(), "Model")
            .unwrap();
    }

    #[test]
    fn corrupted_model_hgraph_fails() {
        let m = cantilever_plate(2, 2, -1.0);
        let mut h = model_to_hgraph(&m);
        // Break it: the name becomes an int.
        let g = h.root().unwrap();
        let entry = h.entry(g).unwrap();
        let name = h.follow(g, entry, &Selector::name("name")).unwrap();
        h.set_value(name, Value::int(42));
        assert!(app_grammar().graph_conforms(&h, g, "Model").is_err());
    }

    #[test]
    fn window_descriptor_conforms() {
        let w = WindowDescriptor::block(3, 0, 8, 2, 6, TaskId(5), 1);
        let h = window_to_hgraph(&w);
        navm_grammar()
            .graph_conforms(&h, h.root().unwrap(), "Window")
            .unwrap();
    }

    #[test]
    fn live_kernel_task_population_conforms() {
        let machine = Machine::new(MachineConfig::clustered(2, 4, Topology::Crossbar));
        let mut k = KernelSim::new(machine);
        let code = k.register_code(CodeBlock::new("w", 32, WorkProfile::flops(100), 8));
        k.initiate(0, 0, code, 5, None, 0);
        k.run();
        let h = kernel_tasks_to_hgraph(&k);
        kernel_grammar()
            .graph_conforms(&h, h.root().unwrap(), "Tasks")
            .unwrap();
    }

    #[test]
    fn empty_task_population_conforms() {
        let machine = Machine::new(MachineConfig::fem1_style(2));
        let k = KernelSim::new(machine);
        let h = kernel_tasks_to_hgraph(&k);
        kernel_grammar()
            .graph_conforms(&h, h.root().unwrap(), "Tasks")
            .unwrap();
    }

    #[test]
    fn machine_configs_conform() {
        for cfg in [
            MachineConfig::fem2_default(),
            MachineConfig::fem1_style(8),
            MachineConfig::clustered(3, 2, Topology::Ring),
        ] {
            let h = machine_to_hgraph(&cfg);
            hw_grammar()
                .graph_conforms(&h, h.root().unwrap(), "Machine")
                .unwrap();
        }
    }

    #[test]
    fn illegal_task_state_rejected() {
        // Hand-build a hub with a bogus state symbol.
        let mut h = HGraph::new();
        let g = h.new_graph("tasks");
        let hub = h.add_node(g, Value::sym("tasks"));
        h.set_entry(g, hub).unwrap();
        let t = h.add_node(g, Value::sym("zombie"));
        let c = h.add_node(g, Value::int(0));
        h.add_arc(g, t, Selector::name("cluster"), c).unwrap();
        h.add_arc(g, hub, Selector::index(0), t).unwrap();
        assert!(kernel_grammar().graph_conforms(&h, g, "Tasks").is_err());
    }
}
