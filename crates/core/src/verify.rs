//! Static verification of scenarios and layer grammars, wired into the
//! system: the catalog `fem2-report --check` walks, the lowering from
//! [`PlateScenario`] to the analyzer's script IR, and the named example
//! workloads.
//!
//! Every scenario is verified *before* dispatch (see
//! [`PlateScenario::run`]): the analyzer replays the scenario's message
//! sequence through the kernel's protocol automaton, matches its window
//! rendezvous for deadlock, and bounds its per-cluster storage — all
//! without simulating a cycle. A scenario that fails is rejected with
//! diagnostics naming the tasks and clusters involved.

use crate::scenario::{PlateScenario, ASSEMBLY_PROFILE_PER_ELEMENT, STRESS_PROFILE_PER_ELEMENT};
use crate::spec;
use fem2_kernel::WorkProfile;
use fem2_machine::{CostClass, MachineConfig, Topology};
use fem2_verify::lower::{solve_script, SolveShape};
use fem2_verify::{
    check_grammar, check_script, CostModeler, CostParams, CostReport, Report, ScenarioScript,
};

/// Number of solver vectors a plate CG run keeps live: b, x, r, p, Ap.
pub const CG_LIVE_VECTORS: u64 = 5;

/// Lower a plate scenario to the analyzer's script IR. The script mirrors
/// what [`PlateScenario::run`] will ask of the kernel: one task per worker
/// block-mapped over the clusters, row-block vector storage, and red-black
/// halo exchanges between neighbouring tasks.
pub fn scenario_script(s: &PlateScenario) -> ScenarioScript {
    let unknowns = (s.nx * s.ny) as u64;
    solve_script(
        format!("plate {}x{} on {}", s.nx, s.ny, s.machine.describe()),
        &s.machine,
        s.tasks,
        SolveShape {
            unknowns,
            vectors: CG_LIVE_VECTORS,
            // One boundary row of the grid crosses each halo.
            halo_words: s.nx as u64,
        },
    )
}

/// Sound upper bounds for one plate scenario: the lowered script's spawn,
/// window-exchange (swept `max_iters` times), and allocation structure,
/// plus the numeric work the script does not carry — the per-element
/// assembly/stress profiles and the solver's elementwise and reduction
/// charges, each at its CG iteration cap.
///
/// Every number over-approximates what [`PlateScenario::run`] charges: the
/// serial sum of all charges dominates the barrier-synchronized actual
/// (see `fem2_verify::cost` for the argument), iteration-dependent work is
/// taken at `max_iters >= iterations`, the script's halo pairs are a
/// superset of the runtime's (shares of `nx*ny` versus shares of `ny`),
/// and the per-cluster allocations are the exact arena claims. The
/// soundness property test in `tests/tests/verify.rs` exercises this
/// against real runs over randomized scenarios.
pub fn scenario_cost(s: &PlateScenario) -> CostReport {
    let script = scenario_script(s);
    let params = CostParams {
        sweep_iters: s.max_iters.max(1) as u64,
    };
    let mut m = CostModeler::new(script.name.clone(), &s.machine);
    m.walk_script(&script, &params);

    let n = (s.nx * s.ny) as u64;
    let elements = ((s.nx - 1).max(1) * (s.ny - 1).max(1)) as u64;
    let tasks = u64::from(s.tasks);
    let iters = s.max_iters.max(1) as u64;
    let clusters = s.machine.clusters;
    let charge_profile = |m: &mut CostModeler, p: &WorkProfile, count: u64| {
        m.charge(CostClass::Flop, p.flops.saturating_mul(count));
        m.charge(CostClass::IntOp, p.int_ops.saturating_mul(count));
        m.charge(CostClass::MemWord, p.mem_words.saturating_mul(count));
    };

    m.begin_phase("assembly");
    charge_profile(&mut m, &ASSEMBLY_PROFILE_PER_ELEMENT, elements);
    m.charge(CostClass::ContextSwitch, tasks);

    m.begin_phase("solve");
    // Parallel sections context-switch every task: the fill, two copies,
    // and first inner product before the loop, then per iteration one
    // stencil, two inners, two axpys, and one xpby.
    let sections = 4 + 6 * iters;
    m.charge(CostClass::ContextSwitch, sections.saturating_mul(tasks));
    // fill(b): one int op and one stored word per element.
    m.charge(CostClass::IntOp, n);
    m.charge(CostClass::MemWord, n);
    // copy(b, r) and copy(r, p): two words moved per element each.
    m.charge(CostClass::MemWord, 4 * n);
    // Inner products — one before the loop, two per iteration — at two
    // flops and two words per element, each ending in a tree reduction of
    // 2-word transfers to and from cluster 0.
    let inners = 1 + 2 * iters;
    m.charge(CostClass::Flop, inners.saturating_mul(2 * n));
    m.charge(CostClass::MemWord, inners.saturating_mul(2 * n));
    for c in 1..clusters {
        m.message_times(c, 0, 2, inners);
        m.message_times(0, c, 2, inners);
    }
    // axpy twice and xpby once per iteration: 2 flops, 3 words per element.
    m.charge(CostClass::Flop, (3 * iters).saturating_mul(2 * n));
    m.charge(CostClass::MemWord, (3 * iters).saturating_mul(3 * n));
    // Stencil elementwise work per iteration; its halo exchange is already
    // covered by the script's window sweeps above.
    m.charge(CostClass::Flop, iters.saturating_mul(8 * n));
    m.charge(CostClass::IntOp, iters.saturating_mul(6 * n));
    m.charge(CostClass::MemWord, iters.saturating_mul(6 * n));

    m.begin_phase("stress");
    charge_profile(&mut m, &STRESS_PROFILE_PER_ELEMENT, elements);
    m.charge(CostClass::ContextSwitch, tasks);

    m.finish()
}

/// The four layer grammars, named, in layer order.
pub fn layer_grammars() -> Vec<(&'static str, std::sync::Arc<fem2_hgraph::Grammar>)> {
    vec![
        ("application-user", spec::app_grammar()),
        ("numerical-analyst", spec::navm_grammar()),
        ("system-programmer", spec::kernel_grammar()),
        ("hardware", spec::hw_grammar()),
    ]
}

/// Named scenarios mirroring each program under `examples/`: the workload
/// each example drives, expressed as the plate scenario the analyzer
/// checks. Kept in sync with the examples by the `verify` test suite.
pub fn example_scenarios() -> Vec<(&'static str, PlateScenario)> {
    vec![
        // quickstart: 32x32 plate on the default FEM-2 machine.
        (
            "quickstart",
            PlateScenario::square(32, MachineConfig::fem2_default()),
        ),
        // cantilever_plate: 40x12-element cantilever (41x13 grid points).
        ("cantilever_plate", {
            let mut s = PlateScenario::square(41, MachineConfig::fem2_default());
            s.ny = 13;
            s
        }),
        // substructure_wing: 48x6-element wing skin (49x7 grid points).
        ("substructure_wing", {
            let mut s = PlateScenario::square(49, MachineConfig::fem2_default());
            s.ny = 7;
            s
        }),
        // command_session: the 12x4 bridge-deck grid (13x5 points).
        ("command_session", {
            let mut s = PlateScenario::square(13, MachineConfig::fem2_default());
            s.ny = 5;
            s
        }),
        // design_space: the sweep's machine-wide problem on the selected
        // clustered organization.
        (
            "design_space",
            PlateScenario::square(32, MachineConfig::fem2_default()),
        ),
        // multi_user: one user's 24x24 problem confined to a single cluster.
        (
            "multi_user",
            PlateScenario::square(24, MachineConfig::clustered(1, 8, Topology::Crossbar)),
        ),
        // formal_spec: the small demonstration model (4x2 elements).
        ("formal_spec", {
            let mut s = PlateScenario::square(5, MachineConfig::fem2_default());
            s.ny = 3;
            s
        }),
    ]
}

/// Run the whole check catalog: the four layer grammars, then the seven
/// example scenarios. Deterministic order and content.
pub fn check_catalog() -> Vec<Report> {
    let mut reports: Vec<Report> = layer_grammars()
        .iter()
        .map(|(_, g)| check_grammar(g))
        .collect();
    for (_, scenario) in example_scenarios() {
        let script = scenario_script(&scenario);
        reports.push(check_script(&script, &scenario.machine));
    }
    reports
}

/// Static cost bounds for every example scenario, in catalog order, each
/// at its CG iteration cap.
pub fn catalog_costs() -> Vec<(&'static str, CostReport)> {
    example_scenarios()
        .iter()
        .map(|(name, scenario)| (*name, scenario_cost(scenario)))
        .collect()
}

/// Render the catalog's cost bounds as the `fem2-report --check` table.
pub fn render_cost_table(costs: &[(&str, CostReport)]) -> String {
    let mut out = String::from(
        "COST BOUNDS (sound upper bounds per example scenario, at the CG iteration cap)\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:>16} {:>12} {:>10} {:>10}  {}\n",
        "scenario", "sim cycles", "DES events", "messages", "peak mem", "verdict"
    ));
    for (name, c) in costs {
        let verdict = match &c.verdict {
            fem2_verify::CostVerdict::Bounded => "bounded".to_string(),
            fem2_verify::CostVerdict::Unbounded { span, .. } => {
                format!("UNBOUNDED (line {})", span.line)
            }
        };
        out.push_str(&format!(
            "{name:<18} {:>16} {:>12} {:>10} {:>10}  {verdict}\n",
            c.sim_cycles, c.des_events, c.messages, c.peak_memory_words
        ));
    }
    out
}

/// Render a catalog run as the `fem2-report --check` output.
pub fn render_catalog(reports: &[Report]) -> String {
    let mut out =
        String::from("FEM-2 static verification (4 layer grammars + 7 example scenarios)\n\n");
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    out.push_str(&render_cost_table(&catalog_costs()));
    out.push('\n');
    let errors: usize = reports.iter().map(Report::error_count).sum();
    let warnings: usize = reports.iter().map(Report::warning_count).sum();
    out.push_str(&format!(
        "TOTAL: {} subject(s), {} error(s), {} warning(s)\n",
        reports.len(),
        errors,
        warnings
    ));
    out
}

/// Render a catalog run as a machine-readable JSON document: the schema
/// tag, every subject report in [`fem2_verify::Report`]'s JSON form, and
/// the catalog-wide counts. This is the same representation the serve
/// layer returns in HTTP rejection bodies, so one consumer handles both.
pub fn catalog_json(reports: &[Report]) -> String {
    use serde::json::Value;
    use serde::Serialize as _;
    let errors: usize = reports.iter().map(Report::error_count).sum();
    let warnings: usize = reports.iter().map(Report::warning_count).sum();
    let doc = Value::Obj(vec![
        ("schema".into(), Value::Str("fem2-verify/2".into())),
        (
            "subjects".into(),
            Value::Arr(reports.iter().map(|r| r.to_value()).collect()),
        ),
        (
            "cost".into(),
            Value::Arr(
                catalog_costs()
                    .iter()
                    .map(|(name, c)| {
                        let Value::Obj(mut fields) = c.to_value() else {
                            unreachable!("cost reports serialize as objects")
                        };
                        fields.insert(0, ("scenario".into(), Value::Str((*name).into())));
                        Value::Obj(fields)
                    })
                    .collect(),
            ),
        ),
        ("errors".into(), Value::UInt(errors as u64)),
        ("warnings".into(), Value::UInt(warnings as u64)),
    ]);
    let mut text = serde_json::to_string_pretty(&doc).expect("catalog has no non-finite floats");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_clean_and_deterministic() {
        let a = check_catalog();
        assert_eq!(a.len(), 4 + 7);
        for r in &a {
            assert!(r.is_clean(), "{}", r.render());
        }
        let b = check_catalog();
        assert_eq!(render_catalog(&a), render_catalog(&b));
    }

    #[test]
    fn catalog_json_is_valid_and_counts_subjects() {
        let reports = check_catalog();
        let text = catalog_json(&reports);
        let v: serde::json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            v.get_field("schema").unwrap(),
            &serde::json::Value::Str("fem2-verify/2".into())
        );
        match v.get_field("subjects").unwrap() {
            serde::json::Value::Arr(items) => assert_eq!(items.len(), reports.len()),
            other => panic!("subjects must be an array, got {other:?}"),
        }
        assert_eq!(v.get_field("errors").unwrap(), &serde::json::Value::UInt(0));
    }

    #[test]
    fn scenario_script_names_the_machine() {
        let s = PlateScenario::square(8, MachineConfig::fem2_default());
        let script = scenario_script(&s);
        assert!(script.name.contains("plate 8x8"));
        assert!(script.name.contains("crossbar"));
        assert!(!script.is_empty());
    }

    #[test]
    fn layer_grammars_cover_all_four_layers() {
        let gs = layer_grammars();
        assert_eq!(gs.len(), 4);
        for (name, g) in gs {
            assert!(g.rule_count() > 0, "{name} grammar is empty");
            assert!(g.start().is_some(), "{name} grammar has a start symbol");
        }
    }
}
