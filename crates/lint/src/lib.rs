//! Determinism lint for the FEM-2 workspace.
//!
//! The simulator's central contract is that a run is a pure function of
//! its spec: content hashes key the result cache, the registry replays
//! verbatim on restart, and bench baselines diff cycle-exactly. That
//! contract dies quietly — one `Instant::now` in a sim path, one
//! `HashMap` iteration feeding an output, one wall-time field folded
//! into a content hash — so this crate scans the workspace source for
//! the known failure shapes and fails loudly instead.
//!
//! The scanner is deliberately line-based (no parser, no new
//! dependencies): each rule is a substring/word match against
//! comment-stripped source lines. That makes it fast and dumb; escape
//! hatches go in `lint-allow.toml` at the workspace root, where every
//! exemption carries a written reason.
//!
//! Rules:
//!
//! - `wall-clock` — `Instant::now` / `SystemTime` read the host clock.
//!   Allowed only where the allowlist says measuring real time is the
//!   point (bench walls, serve timeouts, budget deadlines).
//! - `hash-collection` — `HashMap` / `HashSet` iterate in seed order.
//!   Anything that feeds an output must use `BTreeMap` or a `Vec`;
//!   allowlisted uses must never iterate into observable state.
//! - `unsafe-code` — `unsafe` lives only in `crates/par` (the scoped
//!   pool's lifetime transmute) and `crates/appvm` (console TTY ioctl).
//!   Everywhere else the workspace is safe Rust.
//! - `wall-in-hash` — a `wall…`-named value on the same line as a
//!   `content_hash` call folds host timing into an identity hash. Never
//!   allowlisted in-tree; wall time is provenance, not identity.
//!
//! The pattern constants below are assembled with `concat!` so this
//! crate's own source does not trip its own scan.

use std::fmt;
use std::path::{Path, PathBuf};

/// `Instant::now` spelled so this file does not match itself.
const PAT_INSTANT_NOW: &str = concat!("Instant", "::", "now");
/// `SystemTime`, likewise split.
const PAT_SYSTEM_TIME: &str = concat!("System", "Time");
/// `HashMap`, likewise split.
const PAT_HASH_MAP: &str = concat!("Hash", "Map");
/// `HashSet`, likewise split.
const PAT_HASH_SET: &str = concat!("Hash", "Set");
/// The `unsafe` keyword, likewise split.
const PAT_UNSAFE: &str = concat!("un", "safe");
/// `content_hash`, likewise split.
const PAT_CONTENT_HASH: &str = concat!("content", "_", "hash");
/// Prefix of wall-time identifiers (`wall_ns`, `wall_ms`, ...).
const PAT_WALL: &str = concat!("wa", "ll");

/// Directories whose files may use `unsafe` (workspace-relative
/// prefixes, forward slashes).
const UNSAFE_ALLOWED: &[&str] = &["crates/par/", "crates/appvm/"];

/// One lint rule; `as_str` is the name used in findings and in
/// `lint-allow.toml` entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    WallClock,
    HashCollection,
    UnsafeCode,
    WallInHash,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HashCollection => "hash-collection",
            Rule::UnsafeCode => concat!("un", "safe-code"),
            Rule::WallInHash => "wall-in-hash",
        }
    }
}

/// One violation: where, which rule, and the offending line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    pub rule: Rule,
    /// The trimmed source line, for the report.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.as_str(),
            self.excerpt
        )
    }
}

/// One `[[allow]]` entry from `lint-allow.toml`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub path: String,
    pub rule: String,
    pub reason: String,
}

/// The parsed allowlist. An empty list allows nothing.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the `lint-allow.toml` dialect: `[[allow]]` headers followed
    /// by `key = "value"` lines; `#` comments and blank lines ignored.
    /// This is a hand-rolled subset parser, not a TOML implementation —
    /// exactly enough for the allowlist format and nothing more.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(Self::finish(e, i)?);
                }
                current = Some(AllowEntry {
                    path: String::new(),
                    rule: String::new(),
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint-allow.toml:{}: expected key = \"value\"",
                    i + 1
                ));
            };
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("lint-allow.toml:{}: value must be quoted", i + 1))?;
            let entry = current
                .as_mut()
                .ok_or_else(|| format!("lint-allow.toml:{}: key before [[allow]]", i + 1))?;
            match key.trim() {
                "path" => entry.path = value.to_string(),
                "rule" => entry.rule = value.to_string(),
                "reason" => entry.reason = value.to_string(),
                other => {
                    return Err(format!("lint-allow.toml:{}: unknown key `{other}`", i + 1));
                }
            }
        }
        if let Some(e) = current.take() {
            entries.push(Self::finish(e, text.lines().count())?);
        }
        Ok(Allowlist { entries })
    }

    fn finish(e: AllowEntry, line: usize) -> Result<AllowEntry, String> {
        if e.path.is_empty() || e.rule.is_empty() || e.reason.is_empty() {
            return Err(format!(
                "lint-allow.toml: entry ending near line {line} needs path, rule, and reason"
            ));
        }
        Ok(e)
    }

    /// Is `rule` exempted for `path`?
    pub fn allows(&self, path: &str, rule: Rule) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule.as_str() && e.path == path)
    }

    /// Entries whose path no longer matches any scanned file — stale
    /// exemptions the allowlist should drop.
    pub fn stale<'a>(&'a self, scanned: &[String]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| !scanned.iter().any(|p| p == &e.path))
            .collect()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `hay` contain `word` with a non-identifier character (or edge)
/// on both sides?
fn has_word(hay: &str, word: &str) -> bool {
    find_word(hay, word, true)
}

/// Does `hay` contain an identifier that *starts* with `word` (boundary
/// on the left only)? Catches `wall_ns`, `wall_ms`, `walltime`, ...
fn has_word_prefix(hay: &str, word: &str) -> bool {
    find_word(hay, word, false)
}

fn find_word(hay: &str, word: &str, bound_right: bool) -> bool {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(word) {
        let i = start + pos;
        let left_ok = i == 0 || !is_ident(bytes[i - 1]);
        let j = i + word.len();
        let right_ok = !bound_right || j >= bytes.len() || !is_ident(bytes[j]);
        if left_ok && right_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Strip a trailing `//` comment. Line-based and string-naive: a `//`
/// inside a string literal truncates the rest of the line, which only
/// ever makes the scan more permissive (and URLs in comments are the
/// common case, where truncation is exactly right).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Scan one file's text. `path` must be workspace-relative with forward
/// slashes — it is matched against the allowlist and the `unsafe`
/// directory exemptions.
pub fn scan_text(path: &str, text: &str, allow: &Allowlist) -> Vec<Finding> {
    let unsafe_dir_ok = UNSAFE_ALLOWED.iter().any(|d| path.starts_with(d));
    let mut findings = Vec::new();
    let mut push = |rule: Rule, lineno: usize, raw: &str| {
        if !allow.allows(path, rule) {
            findings.push(Finding {
                path: path.to_string(),
                line: (lineno + 1) as u32,
                rule,
                excerpt: raw.trim().to_string(),
            });
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let code = strip_comment(raw);
        if code.trim().is_empty() {
            continue;
        }
        if code.contains(PAT_INSTANT_NOW) || has_word(code, PAT_SYSTEM_TIME) {
            push(Rule::WallClock, i, raw);
        }
        if has_word(code, PAT_HASH_MAP) || has_word(code, PAT_HASH_SET) {
            push(Rule::HashCollection, i, raw);
        }
        // `unsafe_code` (the forbid attribute) has an identifier
        // character after the keyword, so the word match skips it.
        if !unsafe_dir_ok && has_word(code, PAT_UNSAFE) {
            push(Rule::UnsafeCode, i, raw);
        }
        if code.contains(PAT_CONTENT_HASH) && has_word_prefix(code, PAT_WALL) {
            push(Rule::WallInHash, i, raw);
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for a
/// deterministic report order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The result of a workspace scan: findings plus the file census the
/// stale-entry check runs against.
pub struct ScanReport {
    pub findings: Vec<Finding>,
    pub files_scanned: Vec<String>,
    pub allowlist: Allowlist,
}

/// Scan every `.rs` file under `root`'s `crates/` and `tests/` trees
/// against the allowlist at `root/lint-allow.toml` (absent file = empty
/// allowlist).
pub fn scan_workspace(root: &Path) -> Result<ScanReport, String> {
    let allow_path = root.join("lint-allow.toml");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("read {}: {e}", allow_path.display())),
    };
    let mut files = Vec::new();
    for sub in ["crates", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            rs_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .rs files under {} — is this the workspace root?",
            root.display()
        ));
    }
    let mut findings = Vec::new();
    let mut scanned = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        findings.extend(scan_text(&rel, &text, &allowlist));
        scanned.push(rel);
    }
    Ok(ScanReport {
        findings,
        files_scanned: scanned,
        allowlist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_wall_clock() -> String {
        format!("fn t() {{ let t0 = std::time::{PAT_INSTANT_NOW}(); }}\n")
    }

    #[test]
    fn unallowlisted_instant_now_is_a_finding() {
        let f = scan_text(
            "crates/core/src/des.rs",
            &fixture_wall_clock(),
            &Allowlist::default(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allowlist_exempts_exactly_its_path_and_rule() {
        let allow = Allowlist::parse(&format!(
            "[[allow]]\npath = \"crates/bench/src/harness.rs\"\nrule = \"{}\"\nreason = \"benches measure wall time\"\n",
            Rule::WallClock.as_str()
        ))
        .expect("parse");
        assert!(scan_text("crates/bench/src/harness.rs", &fixture_wall_clock(), &allow).is_empty());
        // Same rule, different file: still a finding.
        assert_eq!(
            scan_text("crates/core/src/des.rs", &fixture_wall_clock(), &allow).len(),
            1
        );
        // Same file, different rule: still a finding.
        let hash_line = format!("use std::collections::{PAT_HASH_MAP};\n");
        assert_eq!(
            scan_text("crates/bench/src/harness.rs", &hash_line, &allow).len(),
            1
        );
    }

    #[test]
    fn system_time_and_hash_set_match_as_words() {
        let sys = format!("let t = std::time::{PAT_SYSTEM_TIME}::now();\n");
        assert_eq!(
            scan_text("crates/x/src/a.rs", &sys, &Allowlist::default())[0].rule,
            Rule::WallClock
        );
        let set = format!("let mut seen: {PAT_HASH_SET}<u64> = Default::default();\n");
        assert_eq!(
            scan_text("crates/x/src/a.rs", &set, &Allowlist::default())[0].rule,
            Rule::HashCollection
        );
        // Longer identifiers do not match: a word boundary is required.
        let not_a_match = format!("struct {PAT_SYSTEM_TIME}stamp;\n");
        assert!(scan_text("crates/x/src/a.rs", &not_a_match, &Allowlist::default()).is_empty());
    }

    #[test]
    fn unsafe_flagged_outside_par_and_appvm_only() {
        let line = format!("{PAT_UNSAFE} {{ ptr.read() }}\n");
        assert_eq!(
            scan_text("crates/core/src/des.rs", &line, &Allowlist::default())[0].rule,
            Rule::UnsafeCode
        );
        assert!(scan_text("crates/par/src/pool.rs", &line, &Allowlist::default()).is_empty());
        assert!(scan_text(
            "crates/appvm/src/bin/fem2-console.rs",
            &line,
            &Allowlist::default()
        )
        .is_empty());
        // The forbid attribute names `unsafe_code`, which is a longer
        // identifier — not the keyword.
        let forbid = format!("#![forbid({PAT_UNSAFE}_code)]\n");
        assert!(scan_text("crates/core/src/lib.rs", &forbid, &Allowlist::default()).is_empty());
    }

    #[test]
    fn wall_value_feeding_a_hash_call_is_flagged() {
        let bad = format!("let h = {PAT_CONTENT_HASH}(&(spec, {PAT_WALL}_ns));\n");
        let f = scan_text("crates/serve/src/job.rs", &bad, &Allowlist::default());
        assert!(f.iter().any(|f| f.rule == Rule::WallInHash), "{f:?}");
        // Either alone is fine (for this rule).
        let hash_only = format!("let h = {PAT_CONTENT_HASH}(&spec);\n");
        let wall_only = format!("let {PAT_WALL}_ns = 7;\n");
        let both = format!("{hash_only}{wall_only}");
        assert!(
            scan_text("crates/serve/src/job.rs", &both, &Allowlist::default())
                .iter()
                .all(|f| f.rule != Rule::WallInHash)
        );
    }

    #[test]
    fn comments_do_not_trip_rules() {
        let text = format!("// {PAT_INSTANT_NOW} would break determinism here\nlet x = 1;\n");
        assert!(scan_text("crates/x/src/a.rs", &text, &Allowlist::default()).is_empty());
    }

    #[test]
    fn allowlist_parser_rejects_incomplete_entries() {
        assert!(Allowlist::parse("[[allow]]\npath = \"a.rs\"\n").is_err());
        assert!(Allowlist::parse("path = \"a.rs\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\npath = unquoted\n").is_err());
        let ok = Allowlist::parse(
            "# comment\n[[allow]]\npath = \"a.rs\"\nrule = \"wall-clock\"\nreason = \"r\"\n",
        )
        .expect("well-formed");
        assert!(ok.allows("a.rs", Rule::WallClock));
        assert!(!ok.allows("a.rs", Rule::UnsafeCode));
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let allow = Allowlist::parse(
            "[[allow]]\npath = \"crates/gone.rs\"\nrule = \"wall-clock\"\nreason = \"r\"\n",
        )
        .expect("parse");
        let stale = allow.stale(&["crates/here.rs".to_string()]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/gone.rs");
    }
}
