//! `fem2-lint`: scan the workspace for determinism hazards.
//!
//! ```text
//! fem2-lint --workspace [--root DIR]
//! ```
//!
//! Exit status 0 when the tree is clean (stale allowlist entries are
//! warnings), 1 on findings, 2 on usage or I/O errors. See the library
//! docs for the rules and `lint-allow.toml` for the exemption format.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fem2-lint --workspace [--root DIR]";

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a value")?;
                root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("--workspace is required\n{USAGE}"));
    }
    let root = match root {
        Some(r) => r,
        None => std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?,
    };
    let report = fem2_lint::scan_workspace(&root)?;
    for f in &report.findings {
        println!("{f}");
    }
    for stale in report.allowlist.stale(&report.files_scanned) {
        eprintln!(
            "warning: stale allowlist entry for {} ({}): file not in scan",
            stale.path, stale.rule
        );
    }
    if report.findings.is_empty() {
        println!(
            "fem2-lint: {} files clean (allowlist: lint-allow.toml)",
            report.files_scanned.len()
        );
        Ok(true)
    } else {
        println!(
            "fem2-lint: {} finding(s) in {} files — fix or add a reasoned lint-allow.toml entry",
            report.findings.len(),
            report.files_scanned.len()
        );
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fem2-lint: {e}");
            ExitCode::from(2)
        }
    }
}
