//! The fem2-serve server: admission → cache → scheduler → registry.
//!
//! Every submission walks the same four stations, in order:
//!
//! 1. **Admission** — the body parses into a resolved [`JobSpec`] (400 on
//!    malformed input), then runs through the fem2-verify passes; a
//!    blocking report is returned as a 422 whose body is the structured
//!    diagnostics document. Nothing rejected here ever touches a worker.
//! 2. **Cache** — the resolved spec's content hash is looked up in the
//!    registry (completed runs, including previous server lifetimes) and
//!    in the in-flight table (submitted but not finished). A registry hit
//!    answers 200 immediately with the stored outcome; an in-flight hit
//!    coalesces onto the running job instead of queuing a duplicate.
//! 3. **Scheduler** — admitted misses are handed to a dedicated scheduler
//!    thread that spawns each job onto a bounded `fem2-par` pool. Queue
//!    depth is capped; submissions past the cap are shed with a 503 so an
//!    overloaded server degrades by refusing work, not by drowning.
//! 4. **Registry** — completed runs are appended to the crash-safe JSONL
//!    log before the job is marked done, so a result the server ever
//!    reported is a result it can serve again after a restart.
//!
//! Jobs run *supervised*: execution is wrapped in `catch_unwind` so a
//! panicking scenario fails its own job (structured 500, failure record,
//! quarantine) without taking a worker or the server down; run budgets
//! turn runaway simulations into structured 504 aborts; and a spec whose
//! latest registry record ended *deterministically* badly (panic,
//! cycle/event budget) is *quarantined* — submitting it again replays the
//! recorded failure instead of burning a worker on a known-poisonous job.
//! Operational endings (wall deadline, cancel) never quarantine: they are
//! host facts, not spec facts, so those specs re-run.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fem2_par::Pool;
use parking_lot::Mutex;
use serde::json::Value;
use serde::Serialize as _;

use crate::chaos::{ChaosPlan, ChaosState};
use crate::http::{
    read_request_deadline, write_response, ParseError, Request, Response, REQUEST_DEADLINE,
};
use crate::job::{self, JobOutcome, JobSpec, RunStatus};
use crate::registry::Registry;
use crate::util::{json_compact, json_pretty};

/// Backoff before the single registry-write retry.
const RETRY_BACKOFF: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Registry/data directory.
    pub data_dir: PathBuf,
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Worker threads in the simulation pool.
    pub workers: usize,
    /// Maximum queued-or-running jobs before submissions shed with 503.
    pub queue_capacity: usize,
    /// Total per-request read deadline (tests shrink this; production
    /// keeps [`REQUEST_DEADLINE`]).
    pub request_deadline: Duration,
    /// Deterministic fault plan (`--chaos`); `None` in production.
    pub chaos: Option<ChaosPlan>,
    /// Reject plate submissions whose static sim-cycle *bound* exceeds
    /// this (`--quota-cycles`); `None` disables the check.
    pub quota_cycles: Option<u64>,
    /// Reject plate submissions whose static DES-event bound exceeds
    /// this (`--quota-events`).
    pub quota_events: Option<u64>,
    /// Reject plate submissions whose static peak-memory bound (words on
    /// the busiest cluster) exceeds this (`--quota-memory`).
    pub quota_memory_words: Option<u64>,
    /// Slack applied when auto-deriving a run budget from the static
    /// cost bound, in percent (150 = bound × 1.5); clamped to ≥ 100 so
    /// the derived cap can never undercut the bound.
    pub budget_slack_percent: u64,
    /// Cluster shards admitted jobs execute with (`--shards`); 1 runs the
    /// sequential reference engine. Sharding is bitwise-invisible to
    /// results, so this never affects cache keys — a spec-level
    /// `des_shards` > 1 still wins for that job.
    pub shards: u32,
}

impl ServeOptions {
    /// Defaults: ephemeral port, two workers, depth 16, no chaos, no
    /// quotas, 150% budget slack.
    pub fn new(data_dir: PathBuf) -> Self {
        ServeOptions {
            data_dir,
            port: 0,
            workers: 2,
            queue_capacity: 16,
            request_deadline: REQUEST_DEADLINE,
            chaos: None,
            quota_cycles: None,
            quota_events: None,
            quota_memory_words: None,
            budget_slack_percent: 150,
            shards: 1,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Aborted,
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Aborted => "aborted",
        }
    }
}

/// One tracked submission (including cache hits, which are born done).
struct JobEntry {
    id: u64,
    hash: String,
    name: String,
    kind: &'static str,
    status: JobStatus,
    /// Whether the answer came from the cache rather than a fresh run.
    cached: bool,
    outcome: Option<Value>,
    wall_ns: u64,
    error: Option<String>,
}

/// Mutable tables: the job list and the in-flight coalescing index.
#[derive(Default)]
struct Tables {
    jobs: Vec<JobEntry>,
    /// hash → job id for submitted-but-unfinished work.
    in_flight: HashMap<String, u64>,
}

enum SchedMsg {
    Run(u64, Box<JobSpec>),
    Stop,
}

/// Shared server state.
pub struct State {
    registry: Mutex<Registry>,
    tables: Mutex<Tables>,
    sched: Mutex<mpsc::Sender<SchedMsg>>,
    /// Simulations actually executed (cache hits never increment this).
    sims_run: AtomicU64,
    /// Submissions answered from the registry or coalesced onto an
    /// in-flight job.
    cache_hits: AtomicU64,
    /// Submissions refused with 503.
    shed: AtomicU64,
    /// Jobs queued or running right now.
    queue_depth: AtomicU64,
    /// Jobs that panicked in a worker (isolated, recorded as failed).
    panics: AtomicU64,
    /// Jobs aborted by their run budget.
    aborts: AtomicU64,
    /// Submissions answered from a quarantined failure record.
    quarantine_hits: AtomicU64,
    /// Submissions rejected at admission because their static cost bound
    /// exceeded an operator quota (or was unbounded under a quota).
    cost_rejections: AtomicU64,
    /// Admitted plate jobs whose run budget was (partly) auto-derived
    /// from the static cost bound.
    auto_budgeted: AtomicU64,
    /// Registry writes that failed once and were retried.
    infra_retries: AtomicU64,
    /// Whether the most recent registry write (after any retry) landed.
    last_registry_write_ok: AtomicBool,
    /// Armed chaos plan, if any.
    chaos: Option<Arc<ChaosState>>,
    request_deadline: Duration,
    next_id: AtomicU64,
    stop: AtomicBool,
    capacity: usize,
    workers: usize,
    /// Operator quotas on the *static bounds* of plate submissions.
    quota_cycles: Option<u64>,
    quota_events: Option<u64>,
    quota_memory_words: Option<u64>,
    /// Slack (percent, ≥ 100) for budgets auto-derived from cost bounds.
    budget_slack_percent: u64,
    /// Cluster shards admitted jobs execute with (1 = sequential engine).
    shards: u32,
}

/// A running server: bound address plus its threads.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<State>,
    accept_thread: Option<JoinHandle<()>>,
    sched_thread: Option<JoinHandle<()>>,
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn error_body(msg: &str) -> String {
    json_compact(&obj(vec![("error", Value::Str(msg.to_string()))]))
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl State {
    fn entry_value(e: &JobEntry, detail: bool) -> Value {
        let mut pairs = vec![
            ("id", Value::UInt(e.id)),
            ("hash", Value::Str(e.hash.clone())),
            ("name", Value::Str(e.name.clone())),
            ("kind", Value::Str(e.kind.to_string())),
            ("status", Value::Str(e.status.name().to_string())),
            ("cached", Value::Bool(e.cached)),
        ];
        if detail {
            if e.status == JobStatus::Done {
                pairs.push(("wall_ns", Value::UInt(e.wall_ns)));
            }
            if let Some(err) = &e.error {
                pairs.push(("error", Value::Str(err.clone())));
            }
        }
        obj(pairs)
    }

    /// POST /jobs: the full admission → cache → schedule walk.
    fn submit(self: &Arc<Self>, body: &str) -> Response {
        // Station 1: parse + static verification.
        let spec = match JobSpec::parse(body) {
            Ok(s) => s,
            // A machine config that parsed but describes an impossible
            // machine (torus dims that do not factor the cluster count,
            // a fat-tree radix whose pods do not tile it) is a semantic
            // rejection, not a malformed request: 422, naming the field.
            Err(e) if e.contains(job::INVALID_MACHINE_PREFIX) => {
                return Response::json(422, error_body(&e))
            }
            Err(e) => return Response::json(400, error_body(&e)),
        };
        let report = spec.verify();
        if report.blocks(spec.allow_warnings()) {
            let mut doc = report.to_value();
            if let Value::Obj(pairs) = &mut doc {
                pairs.insert(
                    0,
                    (
                        "error".into(),
                        Value::Str("rejected by static verification".into()),
                    ),
                );
            }
            return Response::json(422, json_pretty(&doc));
        }
        // Station 1b: predictive admission. When the operator armed a
        // quota, the static cost pass upper-bounds the run before any
        // cycle is simulated; a plate whose *bound* already exceeds the
        // quota is refused here, before it can touch the cache, the
        // queue, or a worker. The check is conservative by construction
        // (the bound is sound, so it can over- but never under-estimate),
        // which is the correct polarity for admission. Script jobs never
        // simulate, so quotas do not apply to them.
        if matches!(spec, JobSpec::Plate(_)) && self.has_quota() {
            if let Some(resp) = self.enforce_quota(&spec) {
                self.cost_rejections.fetch_add(1, Ordering::Relaxed);
                return resp;
            }
        }
        let hash = spec.content_hash();

        // Station 2: the result cache (registry, then in-flight work).
        // Both tables stay locked through the capacity check and enqueue so
        // two identical concurrent submissions cannot both miss.
        let registry = self.registry.lock();
        let mut tables = self.tables.lock();
        // Latest record wins, with one carve-out: an *operational* ending
        // (wall deadline, cancel) is a host fact, not a spec fact — and
        // `wall_ms` is hash-neutral, so replaying it would poison the
        // identical unbudgeted spec for every tenant, permanently. Such a
        // record never quarantines: an earlier ok record (same hash) still
        // serves, and with none the spec simply re-runs.
        let cached = match registry.lookup(&hash) {
            Some(rec) if !rec.status.is_ok() && !rec.quarantines() => registry.lookup_ok(&hash),
            other => other,
        };
        if let Some(rec) = cached {
            // Poison quarantine: a spec whose latest record ended
            // *deterministically* badly (panic, cycle/event budget)
            // replays that recorded fate — structured error, no worker
            // burned on a known-poisonous job.
            if !rec.status.is_ok() {
                self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
                let (code, entry_status) = match rec.status {
                    RunStatus::Aborted => (504, JobStatus::Aborted),
                    _ => (500, JobStatus::Failed),
                };
                let err = rec
                    .error
                    .clone()
                    .unwrap_or_else(|| format!("job previously {}", rec.status.name()));
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let entry = JobEntry {
                    id,
                    hash: hash.clone(),
                    name: spec.name().to_string(),
                    kind: if matches!(spec, JobSpec::Plate(_)) {
                        "plate"
                    } else {
                        "script"
                    },
                    status: entry_status,
                    cached: true,
                    outcome: None,
                    wall_ns: rec.wall_ns,
                    error: Some(err.clone()),
                };
                tables.jobs.push(entry);
                let body = obj(vec![
                    ("error", Value::Str(err)),
                    ("status", Value::Str(rec.status.name().to_string())),
                    ("quarantined", Value::Bool(true)),
                    ("id", Value::UInt(id)),
                    ("hash", Value::Str(hash)),
                ]);
                return Response::json(code, json_compact(&body));
            }
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let entry = JobEntry {
                id,
                hash: hash.clone(),
                name: spec.name().to_string(),
                kind: if matches!(spec, JobSpec::Plate(_)) {
                    "plate"
                } else {
                    "script"
                },
                status: JobStatus::Done,
                cached: true,
                outcome: Some(rec.outcome.clone()),
                wall_ns: rec.wall_ns,
                error: None,
            };
            let resp = Self::entry_value(&entry, true);
            tables.jobs.push(entry);
            return Response::json(200, json_compact(&resp));
        }
        drop(registry);
        if let Some(&id) = tables.in_flight.get(&hash) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            let entry = tables
                .jobs
                .iter()
                .find(|e| e.id == id)
                .expect("in-flight ids index the job table");
            let mut v = Self::entry_value(entry, false);
            if let Value::Obj(pairs) = &mut v {
                pairs.push(("coalesced".into(), Value::Bool(true)));
            }
            return Response::json(200, json_compact(&v));
        }

        // Station 3: bounded scheduling with shedding.
        let depth = self.queue_depth.load(Ordering::Acquire);
        if depth as usize >= self.capacity {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Response::json(
                503,
                json_compact(&obj(vec![
                    ("error", Value::Str("queue full, submission shed".into())),
                    ("queue_depth", Value::UInt(depth)),
                    ("capacity", Value::UInt(self.capacity as u64)),
                ])),
            );
        }
        self.queue_depth.fetch_add(1, Ordering::AcqRel);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = JobEntry {
            id,
            hash: hash.clone(),
            name: spec.name().to_string(),
            kind: if matches!(spec, JobSpec::Plate(_)) {
                "plate"
            } else {
                "script"
            },
            status: JobStatus::Queued,
            cached: false,
            outcome: None,
            wall_ns: 0,
            error: None,
        };
        let resp = Self::entry_value(&entry, false);
        tables.in_flight.insert(hash, id);
        tables.jobs.push(entry);
        drop(tables);
        if self
            .sched
            .lock()
            .send(SchedMsg::Run(id, Box::new(spec)))
            .is_err()
        {
            // Scheduler gone (shutdown race): fail the entry honestly.
            self.finish(
                id,
                JobStatus::Failed,
                None,
                0,
                Some("scheduler stopped".into()),
            );
            return Response::json(503, error_body("server is shutting down"));
        }
        Response::json(201, json_compact(&resp))
    }

    fn has_quota(&self) -> bool {
        self.quota_cycles.is_some()
            || self.quota_events.is_some()
            || self.quota_memory_words.is_some()
    }

    /// The quota gate: `Some(422)` when the spec's static cost bound
    /// exceeds an armed quota (or carries an `Unbounded` verdict, which
    /// no quota can admit). The response body carries the structured
    /// diagnostics — each violation names the bound and the limit it
    /// broke — plus the full cost report, so a rejected tenant can size
    /// the job down without guessing.
    fn enforce_quota(&self, spec: &JobSpec) -> Option<Response> {
        let cost = spec.cost_report();
        let mut violations: Vec<(String, Option<u32>)> = Vec::new();
        match &cost.verdict {
            fem2_verify::CostVerdict::Unbounded { reason, span } => {
                violations.push((
                    format!("cost bound is unbounded ({reason}); quotas cannot admit it"),
                    Some(span.line),
                ));
            }
            fem2_verify::CostVerdict::Bounded => {
                for (what, bound, quota) in [
                    ("sim cycles", cost.sim_cycles, self.quota_cycles),
                    ("DES events", cost.des_events, self.quota_events),
                    (
                        "peak memory words",
                        cost.peak_memory_words,
                        self.quota_memory_words,
                    ),
                ] {
                    if let Some(limit) = quota {
                        if bound > limit {
                            violations.push((
                                format!(
                                    "static bound of {bound} {what} exceeds the quota of {limit}"
                                ),
                                None,
                            ));
                        }
                    }
                }
            }
        }
        if violations.is_empty() {
            return None;
        }
        let diagnostics: Vec<Value> = violations
            .into_iter()
            .map(|(message, line)| {
                let mut pairs = vec![
                    ("kind".to_string(), Value::Str("error".into())),
                    ("pass".to_string(), Value::Str("cost".into())),
                    ("message".to_string(), Value::Str(message)),
                ];
                if let Some(line) = line {
                    pairs.push(("line".to_string(), Value::UInt(u64::from(line))));
                }
                Value::Obj(pairs)
            })
            .collect();
        let doc = obj(vec![
            ("error", Value::Str("rejected by cost quota".into())),
            ("diagnostics", Value::Arr(diagnostics)),
            ("cost", cost.to_value()),
        ]);
        Some(Response::json(422, json_pretty(&doc)))
    }

    /// Execute one admitted job on a pool worker, supervised: panics are
    /// caught and recorded as failures, budget aborts surface as aborted,
    /// and every ending — ok, failed, aborted — is persisted before the
    /// job is published.
    fn run_job(self: &Arc<Self>, id: u64, spec: &JobSpec) {
        {
            let mut tables = self.tables.lock();
            if let Some(e) = tables.jobs.iter_mut().find(|e| e.id == id) {
                e.status = JobStatus::Running;
            }
        }
        let (chaos_panic, chaos_stall) = self
            .chaos
            .as_ref()
            .map_or((false, None), |c| c.on_dispatch());
        // Arm the effective budget: explicit caps win, missing cycle and
        // event caps are auto-derived from the static cost bound × slack.
        // Soundness (bound ≥ actual) means the derived cap only ever
        // fires on a run that violates its own static bound — a
        // cost-model or simulator bug, which *should* abort loudly.
        let budget = match spec {
            JobSpec::Plate(p) => {
                let (budget, auto) =
                    p.effective_budget(&spec.cost_report(), self.budget_slack_percent);
                if auto {
                    self.auto_budgeted.fetch_add(1, Ordering::Relaxed);
                }
                budget
            }
            JobSpec::Script(_) => fem2_machine::RunBudget::unlimited(),
        };
        // Execute with the server's shard setting (a spec-level
        // `des_shards` wins). Sharding is bitwise-invisible, so the
        // override lives only in the executed copy — the submitted spec
        // (and its cache key) is persisted untouched, and the shard
        // count rides along on the registry record instead.
        let shards = spec.effective_shards(self.shards);
        let sharded = (shards != 1).then(|| spec.with_exec_shards(shards));
        let exec_spec = sharded.as_ref().unwrap_or(spec);
        let t0 = Instant::now();
        // The unwind boundary: a panic in the scenario (or an injected
        // one) must not cross into the pool scope, where it would poison
        // every other tenant's worker.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(ms) = chaos_stall {
                thread::sleep(Duration::from_millis(ms));
            }
            if chaos_panic {
                panic!("chaos: injected worker panic");
            }
            exec_spec.execute_with_budget(budget)
        }));
        let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if matches!(spec, JobSpec::Plate(_)) {
            self.sims_run.fetch_add(1, Ordering::Relaxed);
        }
        match result {
            Ok(Ok(outcome)) => {
                // Station 4: persist before publishing, so a result a
                // tenant saw is a result the next lifetime can serve.
                match self.persist(
                    spec,
                    RunStatus::Ok,
                    Some(&outcome),
                    None,
                    None,
                    wall_ns,
                    shards,
                ) {
                    Ok(()) => self.finish(id, JobStatus::Done, Some(outcome.value), wall_ns, None),
                    Err(e) => self.finish(id, JobStatus::Failed, None, wall_ns, Some(e)),
                }
            }
            Ok(Err(abort)) => {
                self.aborts.fetch_add(1, Ordering::Relaxed);
                let msg = abort.to_string();
                // Persist the abort with its structured cause — the cause
                // decides whether quarantine replays it; if even the
                // record fails, the in-memory entry still tells the truth.
                let cause = abort.cause.name();
                let _ = self.persist(
                    spec,
                    RunStatus::Aborted,
                    None,
                    Some(&msg),
                    Some(cause),
                    wall_ns,
                    shards,
                );
                self.finish(id, JobStatus::Aborted, None, wall_ns, Some(msg));
            }
            Err(payload) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                // `&*payload` reborrows the boxed payload itself; a plain
                // `&payload` would coerce the Box into the trait object and
                // make every downcast miss.
                let msg = format!("job panicked: {}", panic_message(&*payload));
                let _ = self.persist(
                    spec,
                    RunStatus::Failed,
                    None,
                    Some(&msg),
                    None,
                    wall_ns,
                    shards,
                );
                self.finish(id, JobStatus::Failed, None, wall_ns, Some(msg));
            }
        }
    }

    /// Append one result record, retrying once after a short backoff: a
    /// failed write is infrastructure trouble (disk hiccup, injected
    /// fault), not a property of the scenario, so one retry is cheap and
    /// absorbs transients without masking a dead disk.
    #[allow(clippy::too_many_arguments)]
    fn persist(
        &self,
        spec: &JobSpec,
        status: RunStatus,
        outcome: Option<&JobOutcome>,
        error: Option<&str>,
        abort_cause: Option<&str>,
        wall_ns: u64,
        shards: u32,
    ) -> Result<(), String> {
        let attempt = || {
            self.registry
                .lock()
                .record_result(spec, status, outcome, error, abort_cause, wall_ns, shards)
                .map(|_| ())
        };
        let first = match attempt() {
            Ok(()) => {
                self.last_registry_write_ok.store(true, Ordering::Relaxed);
                return Ok(());
            }
            Err(e) => e,
        };
        self.infra_retries.fetch_add(1, Ordering::Relaxed);
        thread::sleep(RETRY_BACKOFF);
        match attempt() {
            Ok(()) => {
                self.last_registry_write_ok.store(true, Ordering::Relaxed);
                Ok(())
            }
            Err(second) => {
                self.last_registry_write_ok.store(false, Ordering::Relaxed);
                Err(format!(
                    "registry write failed after retry: {second} (first attempt: {first})"
                ))
            }
        }
    }

    fn finish(
        &self,
        id: u64,
        status: JobStatus,
        outcome: Option<Value>,
        wall_ns: u64,
        error: Option<String>,
    ) {
        let mut tables = self.tables.lock();
        if let Some(e) = tables.jobs.iter_mut().find(|e| e.id == id) {
            e.status = status;
            e.outcome = outcome;
            e.wall_ns = wall_ns;
            e.error = error;
            let hash = e.hash.clone();
            tables.in_flight.remove(&hash);
        }
        self.queue_depth.fetch_sub(1, Ordering::AcqRel);
    }

    fn stats(&self) -> Response {
        let registry = self.registry.lock();
        let doc = obj(vec![
            (
                "sims_run",
                Value::UInt(self.sims_run.load(Ordering::Relaxed)),
            ),
            (
                "cache_hits",
                Value::UInt(self.cache_hits.load(Ordering::Relaxed)),
            ),
            ("shed", Value::UInt(self.shed.load(Ordering::Relaxed))),
            (
                "queue_depth",
                Value::UInt(self.queue_depth.load(Ordering::Relaxed)),
            ),
            ("capacity", Value::UInt(self.capacity as u64)),
            ("workers", Value::UInt(self.workers as u64)),
            ("shards", Value::UInt(u64::from(self.shards))),
            ("panics", Value::UInt(self.panics.load(Ordering::Relaxed))),
            ("aborts", Value::UInt(self.aborts.load(Ordering::Relaxed))),
            (
                "quarantine_hits",
                Value::UInt(self.quarantine_hits.load(Ordering::Relaxed)),
            ),
            (
                "cost_rejections",
                Value::UInt(self.cost_rejections.load(Ordering::Relaxed)),
            ),
            (
                "auto_budgeted",
                Value::UInt(self.auto_budgeted.load(Ordering::Relaxed)),
            ),
            (
                "infra_retries",
                Value::UInt(self.infra_retries.load(Ordering::Relaxed)),
            ),
            (
                "quarantine_size",
                Value::UInt(registry.quarantine_size() as u64),
            ),
            (
                "last_registry_write_ok",
                Value::Bool(self.last_registry_write_ok.load(Ordering::Relaxed)),
            ),
            ("registry_runs", Value::UInt(registry.run_count() as u64)),
            (
                "registry_benches",
                Value::UInt(registry.bench_count() as u64),
            ),
        ]);
        Response::json(200, json_pretty(&doc))
    }

    /// GET /readyz: readiness (distinct from /healthz liveness). Reports
    /// load and persistence signals; answers 503 once the registry stops
    /// accepting writes or shutdown has begun, so a balancer drains the
    /// instance while /healthz stays green (the process itself is fine).
    fn readyz(&self) -> Response {
        let registry = self.registry.lock();
        let quarantine = registry.quarantine_size();
        drop(registry);
        let in_flight = self.tables.lock().in_flight.len();
        let write_ok = self.last_registry_write_ok.load(Ordering::Relaxed);
        let ready = write_ok && !self.stop.load(Ordering::SeqCst);
        let doc = obj(vec![
            ("ready", Value::Bool(ready)),
            (
                "queue_depth",
                Value::UInt(self.queue_depth.load(Ordering::Relaxed)),
            ),
            ("capacity", Value::UInt(self.capacity as u64)),
            ("shards", Value::UInt(u64::from(self.shards))),
            ("in_flight", Value::UInt(in_flight as u64)),
            ("quarantine_size", Value::UInt(quarantine as u64)),
            (
                "cost_rejections",
                Value::UInt(self.cost_rejections.load(Ordering::Relaxed)),
            ),
            (
                "auto_budgeted",
                Value::UInt(self.auto_budgeted.load(Ordering::Relaxed)),
            ),
            ("last_registry_write_ok", Value::Bool(write_ok)),
        ]);
        Response::json(if ready { 200 } else { 503 }, json_pretty(&doc))
    }

    fn job_detail(&self, id: u64) -> Response {
        let tables = self.tables.lock();
        match tables.jobs.iter().find(|e| e.id == id) {
            Some(e) => Response::json(200, json_compact(&Self::entry_value(e, true))),
            None => Response::json(404, error_body(&format!("no job {id}"))),
        }
    }

    fn job_result(&self, id: u64) -> Response {
        let tables = self.tables.lock();
        match tables.jobs.iter().find(|e| e.id == id) {
            Some(e) => match (&e.status, &e.outcome) {
                (JobStatus::Done, Some(outcome)) => {
                    let doc = obj(vec![
                        ("id", Value::UInt(e.id)),
                        ("hash", Value::Str(e.hash.clone())),
                        ("cached", Value::Bool(e.cached)),
                        ("wall_ns", Value::UInt(e.wall_ns)),
                        ("outcome", outcome.clone()),
                    ]);
                    Response::json(200, json_pretty(&doc))
                }
                (JobStatus::Failed, _) => Response::json(
                    500,
                    json_compact(&obj(vec![
                        (
                            "error",
                            Value::Str(e.error.clone().unwrap_or_else(|| "job failed".into())),
                        ),
                        ("status", Value::Str("failed".into())),
                        ("id", Value::UInt(e.id)),
                    ])),
                ),
                (JobStatus::Aborted, _) => Response::json(
                    504,
                    json_compact(&obj(vec![
                        (
                            "error",
                            Value::Str(e.error.clone().unwrap_or_else(|| "job aborted".into())),
                        ),
                        ("status", Value::Str("aborted".into())),
                        ("id", Value::UInt(e.id)),
                    ])),
                ),
                _ => Response::json(409, error_body(&format!("job {id} is {}", e.status.name()))),
            },
            None => Response::json(404, error_body(&format!("no job {id}"))),
        }
    }

    fn job_list(&self) -> Response {
        let tables = self.tables.lock();
        let jobs: Vec<Value> = tables
            .jobs
            .iter()
            .map(|e| Self::entry_value(e, false))
            .collect();
        let doc = obj(vec![
            ("count", Value::UInt(jobs.len() as u64)),
            ("jobs", Value::Arr(jobs)),
        ]);
        Response::json(200, json_pretty(&doc))
    }

    fn ingest_bench(&self, body: &str) -> Response {
        let doc = match serde_json::parse_value(body) {
            Ok(v) => v,
            Err(e) => return Response::json(400, error_body(&format!("invalid JSON: {e}"))),
        };
        match self.registry.lock().ingest_bench_suite(&doc) {
            Ok(n) => Response::json(
                200,
                json_compact(&obj(vec![("ingested", Value::UInt(n as u64))])),
            ),
            Err(e) => Response::json(400, error_body(&e)),
        }
    }

    /// Route one parsed request.
    fn dispatch(self: &Arc<Self>, req: &Request) -> Response {
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("POST", "/jobs") => self.submit(&req.body),
            ("POST", "/ingest/bench") => self.ingest_bench(&req.body),
            ("GET", "/jobs") => self.job_list(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/healthz") => Response::json(200, "{\"ok\":true}"),
            ("GET", "/readyz") => self.readyz(),
            ("GET", p) => {
                let rest = p.strip_prefix("/jobs/").unwrap_or("");
                let (id_part, tail) = match rest.split_once('/') {
                    Some((i, t)) => (i, Some(t)),
                    None => (rest, None),
                };
                match (id_part.parse::<u64>(), tail) {
                    (Ok(id), None) => self.job_detail(id),
                    (Ok(id), Some("result")) => self.job_result(id),
                    _ => Response::json(404, error_body(&format!("no route {p}"))),
                }
            }
            (m, p) => Response::json(405, error_body(&format!("{m} {p} not supported"))),
        }
    }
}

impl ServerHandle {
    /// The bound address (useful when `port` was 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the scheduler, and join all threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Block on the acceptor — i.e. serve until the process is killed.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown(&mut self) {
        if self.state.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Tell the scheduler to drain, then poke the acceptor awake.
        let _ = self.state.sched.lock().send(SchedMsg::Stop);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sched_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind, spin up the scheduler and acceptor, and return the handle.
pub fn start(opts: &ServeOptions) -> Result<ServerHandle, String> {
    let mut registry = Registry::open(&opts.data_dir)?;
    let chaos = match &opts.chaos {
        Some(plan) => {
            if !plan.registry_error_on_write.is_empty() {
                registry.inject_write_errors(plan.registry_error_on_write.clone());
            }
            Some(Arc::new(ChaosState::new(plan.clone())))
        }
        None => None,
    };
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", opts.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let (tx, rx) = mpsc::channel::<SchedMsg>();
    let state = Arc::new(State {
        registry: Mutex::new(registry),
        tables: Mutex::new(Tables::default()),
        sched: Mutex::new(tx),
        sims_run: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        queue_depth: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        aborts: AtomicU64::new(0),
        quarantine_hits: AtomicU64::new(0),
        cost_rejections: AtomicU64::new(0),
        auto_budgeted: AtomicU64::new(0),
        infra_retries: AtomicU64::new(0),
        last_registry_write_ok: AtomicBool::new(true),
        chaos,
        request_deadline: opts.request_deadline,
        next_id: AtomicU64::new(1),
        stop: AtomicBool::new(false),
        capacity: opts.queue_capacity.max(1),
        workers: opts.workers.max(1),
        quota_cycles: opts.quota_cycles,
        quota_events: opts.quota_events,
        quota_memory_words: opts.quota_memory_words,
        budget_slack_percent: opts.budget_slack_percent.max(100),
        shards: opts.shards.max(1),
    });

    // Scheduler: a long-lived fem2-par scope fed over a channel. Each
    // admitted job becomes one scoped task; `Stop` lets the scope join
    // whatever is still running and unwind cleanly.
    let sched_state = Arc::clone(&state);
    let workers = opts.workers.max(1);
    let sched_thread = thread::spawn(move || {
        let pool = Pool::new(workers);
        pool.scope(|s| {
            while let Ok(msg) = rx.recv() {
                match msg {
                    SchedMsg::Run(id, spec) => {
                        let state = Arc::clone(&sched_state);
                        s.spawn(move || state.run_job(id, &spec));
                    }
                    SchedMsg::Stop => break,
                }
            }
        });
    });

    // Acceptor: one short-lived thread per connection — the API is
    // one-shot request/response and job submissions are small.
    let accept_state = Arc::clone(&state);
    let accept_thread = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_state.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let state = Arc::clone(&accept_state);
            thread::spawn(move || {
                let resp = match read_request_deadline(&mut stream, state.request_deadline) {
                    Ok(Some(req)) => state.dispatch(&req),
                    Ok(None) => return,
                    Err(ParseError::TooLarge) => Response::text(413, "body too large"),
                    Err(ParseError::Malformed(m)) => Response::text(400, m),
                    Err(ParseError::Timeout) => Response::text(408, "request timed out"),
                    Err(ParseError::Io(_)) => return,
                };
                let _ = write_response(&mut stream, &resp);
            });
        }
    });

    Ok(ServerHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
        sched_thread: Some(sched_thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use std::fs;
    use std::sync::atomic::AtomicU64 as TestSeq;

    static DIR_SEQ: TestSeq = TestSeq::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fem2-serve-server-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_poll_result_and_cache_hit() {
        let dir = temp_dir("basic");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();

        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":12,"ny":12}"#)).unwrap();
        assert_eq!(status, 201, "{body}");
        let v = serde_json::parse_value(&body).unwrap();
        let Value::UInt(id) = v.get_field("id").unwrap() else {
            panic!("id field: {body}")
        };
        let id = *id;

        let outcome = client::wait_done(addr, id).unwrap();
        let (status, body) =
            client::request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(outcome.get_field("converged").is_ok());

        // Identical resubmission: answered from the registry, no new sim.
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"ny":12,"nx":12}"#)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cached\":true"), "{body}");

        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(
            sv.get_field("sims_run").unwrap(),
            &Value::UInt(1),
            "{stats}"
        );
        assert_eq!(sv.get_field("cache_hits").unwrap(), &Value::UInt(1));
        assert_eq!(sv.get_field("registry_runs").unwrap(), &Value::UInt(1));

        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_submission_gets_422_with_diagnostics() {
        let dir = temp_dir("reject");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        // 300x300 on a fem1-style machine: storage pass must reject.
        let body = r#"{"nx":300,"ny":300,"machine":{"clusters":4,"pes_per_cluster":8,
            "memory_per_cluster":65536,"topology":"Crossbar","link_latency":20,
            "words_per_cycle":1,"max_packet_words":256,"header_words":4,
            "cost":{"flop":4,"int_op":1,"mem_word":2,"msg_send":60,"msg_dispatch":80,
            "task_create":120,"context_switch":40},"dedicated_kernel_pe":false,
            "route_cache":false,"des_queue":"Heap"}}"#;
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(status, 422, "{resp}");
        assert!(resp.contains("REJECTED"), "{resp}");
        assert!(resp.contains("storage"), "{resp}");
        // Nothing reached the scheduler or the registry.
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        assert!(stats.contains("\"sims_run\": 0"), "{stats}");
        assert!(stats.contains("\"registry_runs\": 0"), "{stats}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn impossible_topology_gets_422_naming_the_field() {
        let dir = temp_dir("topo422");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        // Torus dims that do not factor the cluster count: the body is
        // well-formed JSON describing an impossible machine, so the
        // rejection is 422 (not 400) and names the offending field.
        let body = r#"{"nx":12,"ny":12,"machine":{"clusters":16,"pes_per_cluster":2,
            "memory_per_cluster":4194304,"topology":{"Torus":{"dims":[3,5]}},"link_latency":20,
            "words_per_cycle":1,"max_packet_words":256,"header_words":4,
            "cost":{"flop":4,"int_op":1,"mem_word":2,"msg_send":60,"msg_dispatch":80,
            "task_create":120,"context_switch":40},"dedicated_kernel_pe":true,
            "route_cache":true,"des_queue":"Calendar"}}"#;
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(status, 422, "{resp}");
        assert!(resp.contains("field `machine`"), "{resp}");
        assert!(resp.contains("torus dims"), "{resp}");
        assert!(resp.contains("do not factor"), "{resp}");
        // Same story for a fat-tree radix that does not divide the count.
        let ft = body.replace(r#"{"Torus":{"dims":[3,5]}}"#, r#"{"FatTree":{"radix":5}}"#);
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(&ft)).unwrap();
        assert_eq!(status, 422, "{resp}");
        assert!(resp.contains("fat-tree radix"), "{resp}");
        assert!(resp.contains("does not divide"), "{resp}");
        // The factoring variant of the same submission is admitted.
        let good = body.replace("[3,5]", "[4,4]");
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(&good)).unwrap();
        assert_eq!(status, 201, "{resp}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_submission_gets_400() {
        let dir = temp_dir("malformed");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        let (status, body) = client::request(addr, "POST", "/jobs", Some("{nope")).unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, _) = client::request(addr, "GET", "/jobs/99", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client::request(addr, "DELETE", "/jobs", None).unwrap();
        assert_eq!(status, 405);
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_capacity_sheds_with_503() {
        let dir = temp_dir("shed");
        let mut opts = ServeOptions::new(dir.clone());
        opts.queue_capacity = 0; // clamped to 1; fill it with a job, then shed
        let handle = start(&opts).unwrap();
        let addr = handle.addr();
        // Occupy the single slot with a large-ish plate...
        let (s1, b1) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":64,"ny":64}"#)).unwrap();
        assert_eq!(s1, 201, "{b1}");
        // ...and race differently-hashed submissions against it until one
        // sheds or the first finishes (then the test can't assert — retry
        // with another slot-filler). In practice the 64x64 run is slow
        // enough that the very first distinct submission sheds.
        let mut shed = false;
        for seed in 1..50u64 {
            let body = format!(r#"{{"nx":16,"ny":16,"seed":{seed}}}"#);
            let (status, resp) = client::request(addr, "POST", "/jobs", Some(&body)).unwrap();
            if status == 503 {
                assert!(resp.contains("shed"), "{resp}");
                shed = true;
                break;
            }
        }
        assert!(shed, "no submission shed while the slot was full");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_ne!(sv.get_field("shed").unwrap(), &Value::UInt(0), "{stats}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    fn submit_id(addr: std::net::SocketAddr, body: &str) -> u64 {
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(status, 201, "{resp}");
        let v = serde_json::parse_value(&resp).unwrap();
        let Value::UInt(id) = v.get_field("id").unwrap() else {
            panic!("id field: {resp}")
        };
        *id
    }

    #[test]
    fn panicking_job_is_isolated_recorded_and_quarantined() {
        let dir = temp_dir("panic");
        let mut opts = ServeOptions::new(dir.clone());
        opts.chaos = Some(ChaosPlan::parse(r#"{"panic_on_run":[1]}"#).unwrap());
        let handle = start(&opts).unwrap();
        let addr = handle.addr();

        let id = submit_id(addr, r#"{"nx":12,"ny":12}"#);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "failed");
        let (status, body) =
            client::request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("injected worker panic"), "{body}");

        // The server survived: healthz green, a different job completes.
        let (status, health) = client::request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(health, "{\"ok\":true}");
        let id2 = submit_id(addr, r#"{"nx":8,"ny":8}"#);
        assert_eq!(client::wait_settled(addr, id2).unwrap(), "done");

        // Resubmitting the crasher replays the recorded failure from
        // quarantine — no new run.
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":12,"ny":12}"#)).unwrap();
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("\"quarantined\":true"), "{body}");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(sv.get_field("panics").unwrap(), &Value::UInt(1), "{stats}");
        assert_eq!(sv.get_field("quarantine_hits").unwrap(), &Value::UInt(1));
        assert_eq!(sv.get_field("quarantine_size").unwrap(), &Value::UInt(1));
        assert_eq!(
            sv.get_field("sims_run").unwrap(),
            &Value::UInt(2),
            "crasher ran once, healthy job once, replay zero: {stats}"
        );
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budgeted_runaway_aborts_with_504_and_is_recorded() {
        let dir = temp_dir("budget");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        let body = r#"{"nx":24,"ny":24,"budget":{"max_sim_cycles":10000}}"#;
        let id = submit_id(addr, body);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "aborted");
        let (status, resp) =
            client::request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
        assert_eq!(status, 504, "{resp}");
        assert!(resp.contains("cycles_exceeded"), "{resp}");
        // The abort is quarantined like any other non-ok ending.
        let (status, resp) = client::request(addr, "POST", "/jobs", Some(body)).unwrap();
        assert_eq!(status, 504, "{resp}");
        assert!(resp.contains("\"quarantined\":true"), "{resp}");
        // The same plate *without* a budget is a different job and runs.
        let id2 = submit_id(addr, r#"{"nx":24,"ny":24}"#);
        assert_eq!(client::wait_settled(addr, id2).unwrap(), "done");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(sv.get_field("aborts").unwrap(), &Value::UInt(1), "{stats}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn over_quota_plate_is_rejected_at_admission_with_the_bound() {
        let dir = temp_dir("quota");
        let mut opts = ServeOptions::new(dir.clone());
        opts.quota_cycles = Some(1_000); // far below any real plate bound
        let handle = start(&opts).unwrap();
        let addr = handle.addr();
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":16,"ny":16}"#)).unwrap();
        assert_eq!(status, 422, "{body}");
        let v = serde_json::parse_value(&body).unwrap();
        assert_eq!(
            v.get_field("error").unwrap(),
            &Value::Str("rejected by cost quota".into())
        );
        assert!(
            body.contains("exceeds the quota of 1000"),
            "diagnostics must carry the limit: {body}"
        );
        assert!(
            body.contains("static bound of"),
            "diagnostics must carry the bound: {body}"
        );
        // Nothing reached the cache, the scheduler, or the registry.
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(sv.get_field("cost_rejections").unwrap(), &Value::UInt(1));
        assert_eq!(sv.get_field("sims_run").unwrap(), &Value::UInt(0));
        assert_eq!(sv.get_field("registry_runs").unwrap(), &Value::UInt(0));
        // Script jobs never simulate, so quotas do not gate them.
        let script = r#"{"kind":"script","ops":[
            {"op":"initiate","task":"a"},{"op":"terminate","task":"a"}]}"#;
        let id = submit_id(addr, script);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "done");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn admitted_plates_get_auto_derived_budgets() {
        let dir = temp_dir("autobudget");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        let id = submit_id(addr, r#"{"nx":8,"ny":8}"#);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "done");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(
            sv.get_field("auto_budgeted").unwrap(),
            &Value::UInt(1),
            "{stats}"
        );
        assert_eq!(sv.get_field("aborts").unwrap(), &Value::UInt(0));
        let (_, ready) = client::request(addr, "GET", "/readyz", None).unwrap();
        let rv = serde_json::parse_value(&ready).unwrap();
        assert!(rv.get_field("auto_budgeted").is_ok(), "{ready}");
        assert!(rv.get_field("cost_rejections").is_ok(), "{ready}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wall_abort_does_not_poison_the_hash_neutral_spec() {
        let dir = temp_dir("wallq");
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12}"#).unwrap();
        {
            // Pre-seed the registry with a wall-deadline abort for the
            // spec's hash — what a {"budget":{"wall_ms":1}} submission on
            // a slow host would have recorded. wall_ms is hash-neutral,
            // so this is the *same* hash as the unbudgeted spec.
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_result(
                &spec,
                RunStatus::Aborted,
                None,
                Some("run aborted (wall_deadline) at 10 sim cycles, 0 DES events"),
                Some("wall_deadline"),
                5,
                1,
            )
            .unwrap();
        }
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        // The abort is operational, not a property of the spec: the
        // submission re-runs instead of replaying a quarantined 504.
        let id = submit_id(addr, r#"{"nx":12,"ny":12}"#);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "done");
        // The fresh ok record supersedes the abort for the next tenant.
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":12,"ny":12}"#)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cached\":true"), "{body}");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(sv.get_field("quarantine_hits").unwrap(), &Value::UInt(0));
        assert_eq!(sv.get_field("quarantine_size").unwrap(), &Value::UInt(0));
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wall_abort_after_ok_still_serves_the_ok_record() {
        let dir = temp_dir("wallok");
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12}"#).unwrap();
        let outcome = spec.execute();
        {
            // An ok run followed by a wall abort of the same hash (e.g. a
            // later submission with a too-tight wall_ms on a loaded host).
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_run(&spec, &outcome, 42).unwrap();
            reg.record_result(
                &spec,
                RunStatus::Aborted,
                None,
                Some("run aborted (wall_deadline) at 3 sim cycles, 0 DES events"),
                Some("wall_deadline"),
                2,
                1,
            )
            .unwrap();
        }
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        // No re-run needed: the earlier completed result answers.
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":12,"ny":12}"#)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cached\":true"), "{body}");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(
            sv.get_field("sims_run").unwrap(),
            &Value::UInt(0),
            "{stats}"
        );
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_registry_error_is_absorbed_by_the_retry() {
        let dir = temp_dir("retry");
        let mut opts = ServeOptions::new(dir.clone());
        opts.chaos = Some(ChaosPlan::parse(r#"{"registry_error_on_write":[1]}"#).unwrap());
        let handle = start(&opts).unwrap();
        let addr = handle.addr();
        let id = submit_id(addr, r#"{"nx":10,"ny":10}"#);
        assert_eq!(client::wait_settled(addr, id).unwrap(), "done");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(
            sv.get_field("infra_retries").unwrap(),
            &Value::UInt(1),
            "{stats}"
        );
        assert_eq!(sv.get_field("registry_runs").unwrap(), &Value::UInt(1));
        assert_eq!(
            sv.get_field("last_registry_write_ok").unwrap(),
            &Value::Bool(true)
        );
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readyz_reports_load_and_stays_distinct_from_healthz() {
        let dir = temp_dir("readyz");
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        let (status, body) = client::request(addr, "GET", "/readyz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = serde_json::parse_value(&body).unwrap();
        assert_eq!(v.get_field("ready").unwrap(), &Value::Bool(true));
        assert!(v.get_field("queue_depth").is_ok(), "{body}");
        assert!(v.get_field("in_flight").is_ok(), "{body}");
        assert!(v.get_field("quarantine_size").is_ok(), "{body}");
        assert!(v.get_field("last_registry_write_ok").is_ok(), "{body}");
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_readyz_expose_configured_shard_count() {
        let dir = temp_dir("shards");
        let mut opts = ServeOptions::new(dir.clone());
        opts.shards = 4;
        let handle = start(&opts).unwrap();
        let addr = handle.addr();
        for path in ["/stats", "/readyz"] {
            let (status, body) = client::request(addr, "GET", path, None).unwrap();
            assert_eq!(status, 200, "{body}");
            let v = serde_json::parse_value(&body).unwrap();
            assert_eq!(v.get_field("shards").unwrap(), &Value::UInt(4), "{body}");
        }
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_serves_cached_results_from_registry() {
        let dir = temp_dir("restart");
        {
            let handle = start(&ServeOptions::new(dir.clone())).unwrap();
            let addr = handle.addr();
            let (status, body) =
                client::request(addr, "POST", "/jobs", Some(r#"{"nx":10,"ny":10}"#)).unwrap();
            assert_eq!(status, 201, "{body}");
            let v = serde_json::parse_value(&body).unwrap();
            let Value::UInt(id) = v.get_field("id").unwrap() else {
                panic!("{body}")
            };
            client::wait_done(addr, *id).unwrap();
            handle.stop();
        }
        // New lifetime, same data-dir: the same submission is a cache hit
        // without a single simulation.
        let handle = start(&ServeOptions::new(dir.clone())).unwrap();
        let addr = handle.addr();
        let (status, body) =
            client::request(addr, "POST", "/jobs", Some(r#"{"nx":10,"ny":10}"#)).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"cached\":true"), "{body}");
        let (_, stats) = client::request(addr, "GET", "/stats", None).unwrap();
        let sv = serde_json::parse_value(&stats).unwrap();
        assert_eq!(
            sv.get_field("sims_run").unwrap(),
            &Value::UInt(0),
            "{stats}"
        );
        assert_eq!(sv.get_field("registry_runs").unwrap(), &Value::UInt(1));
        handle.stop();
        fs::remove_dir_all(&dir).unwrap();
    }
}
