//! The `fem2-serve` binary: run the simulation service, generate the
//! static report site, ingest bench suites, or act as a thin client.
//!
//! ```text
//! fem2-serve serve --data-dir DIR [--port N] [--workers N] [--queue N]
//! fem2-serve report --data-dir DIR --out DIR
//! fem2-serve ingest-bench --data-dir DIR FILE...
//! fem2-serve submit --addr HOST:PORT [--wait] FILE
//! fem2-serve status --addr HOST:PORT ID
//! fem2-serve result --addr HOST:PORT ID
//! fem2-serve list --addr HOST:PORT
//! ```
//!
//! `serve` is the default subcommand when the first argument is a flag.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

use fem2_serve::{client, report, ChaosPlan, Registry, ServeOptions};

const USAGE: &str = "usage: fem2-serve <serve|report|ingest-bench|submit|status|result|list> ...
  serve        --data-dir DIR [--port N] [--workers N] [--queue N] [--chaos PLAN]
               [--quota-cycles N] [--quota-events N] [--quota-memory WORDS]
               [--budget-slack PCT] [--shards N]
               PLAN is inline JSON ('{...}') or a file path; see chaos docs
               quotas reject plates whose static cost bound exceeds them (422);
               --budget-slack pads auto-derived run budgets (default 150 = x1.5)
  report       --data-dir DIR --out DIR
  ingest-bench --data-dir DIR FILE...
  submit       --addr HOST:PORT [--wait] FILE
  status       --addr HOST:PORT ID
  result       --addr HOST:PORT ID
  list         --addr HOST:PORT";

struct Args {
    data_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    addr: Option<SocketAddr>,
    port: u16,
    workers: usize,
    queue: usize,
    wait: bool,
    chaos: Option<ChaosPlan>,
    quota_cycles: Option<u64>,
    quota_events: Option<u64>,
    quota_memory: Option<u64>,
    budget_slack: u64,
    shards: u32,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        data_dir: None,
        out: None,
        addr: None,
        port: 7299,
        workers: 2,
        queue: 16,
        wait: false,
        chaos: None,
        quota_cycles: None,
        quota_events: None,
        quota_memory: None,
        budget_slack: 150,
        shards: 1,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data-dir" => out.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--out" => out.out = Some(PathBuf::from(value("--out")?)),
            "--addr" => {
                let raw = value("--addr")?;
                out.addr = Some(raw.parse().map_err(|e| format!("--addr {raw}: {e}"))?);
            }
            "--port" => {
                let raw = value("--port")?;
                out.port = raw.parse().map_err(|e| format!("--port {raw}: {e}"))?;
            }
            "--workers" => {
                let raw = value("--workers")?;
                out.workers = raw.parse().map_err(|e| format!("--workers {raw}: {e}"))?;
            }
            "--queue" => {
                let raw = value("--queue")?;
                out.queue = raw.parse().map_err(|e| format!("--queue {raw}: {e}"))?;
            }
            "--chaos" => out.chaos = Some(ChaosPlan::load(&value("--chaos")?)?),
            "--quota-cycles" => {
                let raw = value("--quota-cycles")?;
                out.quota_cycles = Some(
                    raw.parse()
                        .map_err(|e| format!("--quota-cycles {raw}: {e}"))?,
                );
            }
            "--quota-events" => {
                let raw = value("--quota-events")?;
                out.quota_events = Some(
                    raw.parse()
                        .map_err(|e| format!("--quota-events {raw}: {e}"))?,
                );
            }
            "--quota-memory" => {
                let raw = value("--quota-memory")?;
                out.quota_memory = Some(
                    raw.parse()
                        .map_err(|e| format!("--quota-memory {raw}: {e}"))?,
                );
            }
            "--budget-slack" => {
                let raw = value("--budget-slack")?;
                out.budget_slack = raw
                    .parse()
                    .map_err(|e| format!("--budget-slack {raw}: {e}"))?;
            }
            "--shards" => {
                let raw = value("--shards")?;
                out.shards = raw.parse().map_err(|e| format!("--shards {raw}: {e}"))?;
                if out.shards == 0 {
                    return Err("--shards must be a positive integer".into());
                }
            }
            "--wait" => out.wait = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => out.positional.push(other.to_string()),
        }
    }
    Ok(out)
}

fn data_dir(a: &Args) -> Result<PathBuf, String> {
    a.data_dir
        .clone()
        .ok_or_else(|| "--data-dir is required".into())
}

fn addr(a: &Args) -> Result<SocketAddr, String> {
    a.addr.ok_or_else(|| "--addr HOST:PORT is required".into())
}

fn job_id(a: &Args) -> Result<u64, String> {
    let raw = a
        .positional
        .first()
        .ok_or_else(|| "a job id is required".to_string())?;
    raw.parse().map_err(|e| format!("job id {raw}: {e}"))
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let mut opts = ServeOptions::new(data_dir(a)?);
    opts.port = a.port;
    opts.workers = a.workers;
    opts.queue_capacity = a.queue;
    opts.chaos = a.chaos.clone();
    opts.quota_cycles = a.quota_cycles;
    opts.quota_events = a.quota_events;
    opts.quota_memory_words = a.quota_memory;
    opts.budget_slack_percent = a.budget_slack;
    opts.shards = a.shards;
    let mut handle = fem2_serve::start(&opts)?;
    let chaos = if opts.chaos.as_ref().is_some_and(ChaosPlan::is_armed) {
        ", CHAOS ARMED"
    } else {
        ""
    };
    println!(
        "fem2-serve listening on http://{} (data-dir {}, {} workers, queue {}{chaos})",
        handle.addr(),
        opts.data_dir.display(),
        opts.workers,
        opts.queue_capacity
    );
    handle.wait();
    Ok(())
}

fn cmd_report(a: &Args) -> Result<(), String> {
    let out = a
        .out
        .clone()
        .ok_or_else(|| "--out is required".to_string())?;
    let pages = report::generate(&data_dir(a)?, &out)?;
    println!("wrote {pages} pages under {}", out.display());
    Ok(())
}

fn cmd_ingest_bench(a: &Args) -> Result<(), String> {
    if a.positional.is_empty() {
        return Err("ingest-bench needs at least one fem2-bench --json file".into());
    }
    let mut reg = Registry::open(&data_dir(a)?)?;
    let mut total = 0;
    for file in &a.positional {
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let doc = serde_json::parse_value(&text).map_err(|e| format!("{file}: {e}"))?;
        let n = reg.ingest_bench_suite(&doc)?;
        println!("{file}: ingested {n} records");
        total += n;
    }
    println!("total: {total} bench records");
    Ok(())
}

fn cmd_submit(a: &Args) -> Result<(), String> {
    let addr = addr(a)?;
    let file = a
        .positional
        .first()
        .ok_or_else(|| "submit needs a job-spec JSON file".to_string())?;
    let body = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
    let (status, resp) = client::request(addr, "POST", "/jobs", Some(&body))?;
    println!("{status}: {resp}");
    if status >= 400 {
        return Err(format!("submission refused with {status}"));
    }
    if a.wait {
        let v = serde_json::parse_value(&resp).map_err(|e| format!("bad response: {e}"))?;
        let id = match v.get_field("id").map_err(|e| e.to_string())? {
            serde_json::Value::UInt(id) => *id,
            other => return Err(format!("bad id field: {other:?}")),
        };
        let outcome = client::wait_done(addr, id)?;
        let text = serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?;
        println!("{text}");
    }
    Ok(())
}

fn cmd_get(a: &Args, path: String) -> Result<(), String> {
    let (status, resp) = client::request(addr(a)?, "GET", &path, None)?;
    println!("{resp}");
    if status >= 400 {
        return Err(format!("GET {path} -> {status}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match argv.first().map(String::as_str) {
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        Some(flag) if flag.starts_with("--") => ("serve", &argv[..]),
        Some(cmd) => (cmd, &argv[1..]),
    };
    let run = parse_args(rest).and_then(|args| match cmd {
        "serve" => cmd_serve(&args),
        "report" => cmd_report(&args),
        "ingest-bench" => cmd_ingest_bench(&args),
        "submit" => cmd_submit(&args),
        "status" => {
            let id = job_id(&args)?;
            cmd_get(&args, format!("/jobs/{id}"))
        }
        "result" => {
            let id = job_id(&args)?;
            cmd_get(&args, format!("/jobs/{id}/result"))
        }
        "list" => cmd_get(&args, "/jobs".to_string()),
        "stats" => cmd_get(&args, "/stats".to_string()),
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    });
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fem2-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
