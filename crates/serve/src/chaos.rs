//! Deterministic fault injection for the serve layer.
//!
//! A [`ChaosPlan`] is a small JSON document naming exactly which faults to
//! arm, keyed by *run ordinal* (the 1-based count of jobs dispatched to
//! workers since the server started). Because injection points are counted
//! rather than sampled, a plan reproduces the same fault sequence on every
//! run — the chaos harness is a deterministic test fixture, not a fuzzer.
//!
//! Plan document (all fields optional):
//!
//! ```json
//! {
//!   "seed": 7,
//!   "panic_on_run": [2],
//!   "stall_ms_on_run": [[3, 250]],
//!   "registry_error_on_write": [1]
//! }
//! ```
//!
//! * `panic_on_run` — the Nth dispatched runs panic inside the worker
//!   (exercising panic isolation, failure records, and quarantine).
//! * `stall_ms_on_run` — the Nth dispatched runs sleep that many
//!   milliseconds before executing (exercising wall budgets and the
//!   health probes under load).
//! * `registry_error_on_write` — the Nth registry log appends fail with a
//!   simulated IO error (exercising the persist retry path).
//! * `seed` — reserved for future stochastic plans; today it only labels
//!   the plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::json::Value;

/// Parsed fault plan; see the module docs for the document format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Label for the plan (reserved for stochastic extensions).
    pub seed: u64,
    /// 1-based run ordinals that panic in the worker.
    pub panic_on_run: Vec<u64>,
    /// `(run ordinal, milliseconds)` pairs: stall before executing.
    pub stall_ms_on_run: Vec<(u64, u64)>,
    /// 1-based registry append ordinals that fail.
    pub registry_error_on_write: Vec<u64>,
}

fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn u64_list(v: &Value, name: &str) -> Result<Vec<u64>, String> {
    match field(v, name) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|i| as_u64(i).ok_or_else(|| format!("`{name}` entries must be non-negative")))
            .collect(),
        Some(_) => Err(format!("`{name}` must be an array")),
    }
}

impl ChaosPlan {
    /// Parse a plan from its JSON text. Unknown fields are rejected so a
    /// typoed fault name fails loudly instead of silently arming nothing.
    pub fn parse(text: &str) -> Result<ChaosPlan, String> {
        let v = serde_json::parse_value(text).map_err(|e| format!("chaos plan: {e}"))?;
        let Value::Obj(pairs) = &v else {
            return Err("chaos plan must be a JSON object".into());
        };
        for (k, _) in pairs {
            if !matches!(
                k.as_str(),
                "seed" | "panic_on_run" | "stall_ms_on_run" | "registry_error_on_write"
            ) {
                return Err(format!("chaos plan: unknown field `{k}`"));
            }
        }
        let seed = match field(&v, "seed") {
            None | Some(Value::Null) => 0,
            Some(s) => as_u64(s).ok_or("chaos plan: `seed` must be a non-negative integer")?,
        };
        let stall_ms_on_run = match field(&v, "stall_ms_on_run") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Arr(items)) => items
                .iter()
                .map(|i| match i {
                    Value::Arr(pair) if pair.len() == 2 => {
                        match (as_u64(&pair[0]), as_u64(&pair[1])) {
                            (Some(run), Some(ms)) => Ok((run, ms)),
                            _ => Err("`stall_ms_on_run` entries must be [run, ms]".to_string()),
                        }
                    }
                    _ => Err("`stall_ms_on_run` entries must be [run, ms] pairs".to_string()),
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err("`stall_ms_on_run` must be an array".into()),
        };
        Ok(ChaosPlan {
            seed,
            panic_on_run: u64_list(&v, "panic_on_run")?,
            stall_ms_on_run,
            registry_error_on_write: u64_list(&v, "registry_error_on_write")?,
        })
    }

    /// Load a plan from either inline JSON (argument starts with `{`) or
    /// a file path — the two forms `fem2-serve --chaos` accepts.
    pub fn load(arg: &str) -> Result<ChaosPlan, String> {
        if arg.trim_start().starts_with('{') {
            ChaosPlan::parse(arg)
        } else {
            let text =
                std::fs::read_to_string(arg).map_err(|e| format!("chaos plan {arg}: {e}"))?;
            ChaosPlan::parse(&text)
        }
    }

    /// Whether the plan arms any fault at all.
    pub fn is_armed(&self) -> bool {
        !self.panic_on_run.is_empty()
            || !self.stall_ms_on_run.is_empty()
            || !self.registry_error_on_write.is_empty()
    }
}

/// Runtime state of an armed plan: the dispatch counter plus the faults
/// not yet fired. Shared by every worker thread.
#[derive(Debug, Default)]
pub struct ChaosState {
    plan: Mutex<ChaosPlan>,
    dispatched: AtomicU64,
}

impl ChaosState {
    /// Arm `plan`.
    pub fn new(plan: ChaosPlan) -> ChaosState {
        ChaosState {
            plan: Mutex::new(plan),
            dispatched: AtomicU64::new(0),
        }
    }

    /// Count one job dispatch and return the faults armed for it:
    /// `(panic, stall_ms)`. Each fault fires at most once.
    pub fn on_dispatch(&self) -> (bool, Option<u64>) {
        let run = self.dispatched.fetch_add(1, Ordering::Relaxed) + 1;
        let mut plan = self.plan.lock().expect("chaos plan lock");
        let panic = match plan.panic_on_run.iter().position(|&r| r == run) {
            Some(i) => {
                plan.panic_on_run.swap_remove(i);
                true
            }
            None => false,
        };
        let stall = plan
            .stall_ms_on_run
            .iter()
            .position(|&(r, _)| r == run)
            .map(|i| plan.stall_ms_on_run.swap_remove(i).1);
        (panic, stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_faults_fire_once_in_order() {
        let plan = ChaosPlan::parse(
            r#"{"seed":7,"panic_on_run":[2],"stall_ms_on_run":[[3,250]],
                "registry_error_on_write":[1]}"#,
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.registry_error_on_write, vec![1]);
        assert!(plan.is_armed());
        let state = ChaosState::new(plan);
        assert_eq!(state.on_dispatch(), (false, None), "run 1 clean");
        assert_eq!(state.on_dispatch(), (true, None), "run 2 panics");
        assert_eq!(state.on_dispatch(), (false, Some(250)), "run 3 stalls");
        assert_eq!(state.on_dispatch(), (false, None), "run 4 clean again");
    }

    #[test]
    fn unknown_fields_and_bad_shapes_are_rejected() {
        assert!(ChaosPlan::parse(r#"{"panic_on_runz":[1]}"#).is_err());
        assert!(ChaosPlan::parse(r#"{"panic_on_run":3}"#).is_err());
        assert!(ChaosPlan::parse(r#"{"stall_ms_on_run":[[1]]}"#).is_err());
        assert!(ChaosPlan::parse(r#"[1,2,3]"#).is_err());
        assert!(ChaosPlan::parse("not json").is_err());
    }

    #[test]
    fn empty_plan_is_unarmed_and_inline_load_round_trips() {
        let empty = ChaosPlan::parse("{}").unwrap();
        assert!(!empty.is_armed());
        let inline = ChaosPlan::load(r#"{"panic_on_run":[1]}"#).unwrap();
        assert!(inline.is_armed());
        assert!(ChaosPlan::load("/nonexistent/plan.json").is_err());
    }
}
