//! Job specifications: what a tenant submits, fully resolved and
//! content-addressable.
//!
//! A submission is JSON describing one of two job kinds:
//!
//! * `plate` — a plate scenario (grid, machine configuration, solver
//!   controls). Admitted plate jobs are *simulated* on the requested
//!   machine and produce the full requirement outcome.
//! * `script` — a raw kernel scenario script (the analyzer's op list).
//!   Script jobs are *analysis* workloads: they run through the same
//!   admission gate and, when clean, complete with a verification outcome
//!   without simulating (there is no runnable semantics for arbitrary
//!   scripts — the value of the job is the verdict).
//!
//! Every optional field is resolved to its default **before** hashing, so
//! `{"kind":"plate","nx":32,"ny":32}` and the same submission with all
//! defaults spelled out are the same job: one simulation, one registry
//! record, every later submission a cache hit. The hash key is the
//! canonical serialization of the resolved spec — (scenario, machine
//! config, seed) — through [`fem2_core::hash`].

use fem2_core::hash::{content_hash_value, hash_hex};
use fem2_core::PlateScenario;
use fem2_machine::{MachineConfig, RunAborted, RunBudget};
use fem2_verify::{check_cost, check_script, CostParams, CostReport, Op, Report, ScenarioScript};
use serde::json::Value;
use serde::{Deserialize as _, Serialize as _};
use std::time::Duration;

/// Default CG relative tolerance for plate jobs.
const DEFAULT_TOL: f64 = 1e-6;
/// Default CG iteration cap for plate jobs.
const DEFAULT_MAX_ITERS: usize = 5000;

/// How a supervised run ended, as persisted per registry record and served
/// to clients. Absent in registry schema rev 1 records, which replay as
/// [`RunStatus::Ok`] (rev 1 only ever persisted successful runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The job completed and produced its outcome.
    Ok,
    /// The job panicked (or infrastructure failed it permanently); the
    /// record carries the failure message instead of an outcome.
    Failed,
    /// The job exceeded its run budget or was cancelled; the record
    /// carries the structured abort cause.
    Aborted,
}

impl RunStatus {
    /// Stable wire name (`ok` / `failed` / `aborted`).
    pub fn name(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Failed => "failed",
            RunStatus::Aborted => "aborted",
        }
    }

    /// Parse a wire name back; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "failed" => Some(RunStatus::Failed),
            "aborted" => Some(RunStatus::Aborted),
            _ => None,
        }
    }

    /// Whether this record carries a servable outcome.
    pub fn is_ok(self) -> bool {
        matches!(self, RunStatus::Ok)
    }
}

/// A fully resolved plate-scenario job.
#[derive(Clone, Debug, PartialEq)]
pub struct PlateJob {
    /// Display name (defaults to `plate {nx}x{ny}`).
    pub name: String,
    /// Grid points in x.
    pub nx: usize,
    /// Grid points in y.
    pub ny: usize,
    /// NA-VM task count (defaults to the machine's worker count).
    pub tasks: u32,
    /// Machine organization to simulate on.
    pub machine: MachineConfig,
    /// CG relative tolerance.
    pub tol: f64,
    /// CG iteration cap.
    pub max_iters: usize,
    /// Replication seed. Simulations are deterministic today, so the seed
    /// only partitions the cache key — reserved for stochastic fault
    /// plans; distinct seeds are distinct jobs.
    pub seed: u64,
    /// Let warning-severity findings through the admission gate.
    pub allow_warnings: bool,
    /// Abort the simulation once its clock passes this many cycles.
    /// Deterministic, so it partitions the cache key: a budgeted run and
    /// an unbudgeted run of the same plate are different jobs.
    pub budget_cycles: Option<u64>,
    /// Abort after this many DES events. Deterministic; partitions the
    /// cache key like [`budget_cycles`](Self::budget_cycles).
    pub budget_events: Option<u64>,
    /// Wall-clock deadline in milliseconds. Operational only: it depends
    /// on host speed, so it is *excluded* from the resolved spec and the
    /// content hash — two submissions differing only in `wall_ms` are the
    /// same job.
    pub budget_wall_ms: Option<u64>,
}

/// A fully resolved raw-script job (analysis only).
#[derive(Clone, Debug)]
pub struct ScriptJob {
    /// Display name.
    pub name: String,
    /// The script ops, in global program order.
    pub ops: Vec<Op>,
    /// Machine the storage pass bounds against.
    pub machine: MachineConfig,
    /// Cache-key seed (see [`PlateJob::seed`]).
    pub seed: u64,
    /// Let warning-severity findings through the admission gate.
    pub allow_warnings: bool,
}

/// One resolved submission.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// Simulate a plate scenario.
    Plate(PlateJob),
    /// Verify a raw kernel script.
    Script(ScriptJob),
}

/// The outcome of one completed job, as stored in the registry and served
/// from `/jobs/<id>/result`.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The outcome document (kind-tagged object).
    pub value: Value,
}

fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn opt_u64(v: &Value, name: &str, default: u64) -> Result<u64, String> {
    match field(v, name) {
        None | Some(Value::Null) => Ok(default),
        Some(f) => u64::from_value(f).map_err(|e| format!("field `{name}`: {e}")),
    }
}

fn opt_bool(v: &Value, name: &str, default: bool) -> Result<bool, String> {
    match field(v, name) {
        None | Some(Value::Null) => Ok(default),
        Some(f) => bool::from_value(f).map_err(|e| format!("field `{name}`: {e}")),
    }
}

fn opt_f64(v: &Value, name: &str, default: f64) -> Result<f64, String> {
    match field(v, name) {
        None | Some(Value::Null) => Ok(default),
        Some(f) => f64::from_value(f).map_err(|e| format!("field `{name}`: {e}")),
    }
}

fn opt_opt_u64(v: &Value, name: &str) -> Result<Option<u64>, String> {
    match field(v, name) {
        None | Some(Value::Null) => Ok(None),
        Some(f) => u64::from_value(f)
            .map(Some)
            .map_err(|e| format!("field `{name}`: {e}")),
    }
}

/// The three optional caps of a parsed `budget` object, in declaration
/// order: `(max_sim_cycles, max_des_events, wall_ms)`.
type BudgetCaps = (Option<u64>, Option<u64>, Option<u64>);

/// Parse the optional nested `budget` object of a plate submission:
/// `{"max_sim_cycles":N,"max_des_events":M,"wall_ms":W}`, every field
/// optional.
fn opt_budget(v: &Value) -> Result<BudgetCaps, String> {
    match field(v, "budget") {
        None | Some(Value::Null) => Ok((None, None, None)),
        Some(b @ Value::Obj(_)) => {
            let cycles = opt_opt_u64(b, "max_sim_cycles").map_err(|e| format!("budget: {e}"))?;
            let events = opt_opt_u64(b, "max_des_events").map_err(|e| format!("budget: {e}"))?;
            let wall = opt_opt_u64(b, "wall_ms").map_err(|e| format!("budget: {e}"))?;
            for (name, limit) in [
                ("max_sim_cycles", cycles),
                ("max_des_events", events),
                ("wall_ms", wall),
            ] {
                if limit == Some(0) {
                    return Err(format!("budget: `{name}` must be positive when set"));
                }
            }
            Ok((cycles, events, wall))
        }
        Some(other) => Err(format!(
            "field `budget` must be an object, found {}",
            other.kind()
        )),
    }
}

fn req_str(v: &Value, name: &str) -> Result<String, String> {
    field(v, name)
        .ok_or_else(|| format!("missing field `{name}`"))
        .and_then(|f| String::from_value(f).map_err(|e| format!("field `{name}`: {e}")))
}

/// Error-message prefix of a machine configuration that parsed but failed
/// semantic validation (e.g. torus dims that do not factor the cluster
/// count). The server maps these to 422 — the submission was well-formed,
/// the configuration it describes is impossible — versus 400 for shape
/// errors.
pub const INVALID_MACHINE_PREFIX: &str = "invalid field `machine`: ";

fn opt_machine(v: &Value) -> Result<MachineConfig, String> {
    let machine = match field(v, "machine") {
        None | Some(Value::Null) => MachineConfig::fem2_default(),
        Some(m) => MachineConfig::from_value(m).map_err(|e| format!("field `machine`: {e}"))?,
    };
    machine
        .validate()
        .map_err(|e| format!("{INVALID_MACHINE_PREFIX}{e}"))?;
    Ok(machine)
}

/// Parse one script op from its JSON form, e.g.
/// `{"op":"window_send","from":"a","to":"b","window":"w","words":8}`.
fn op_from_value(v: &Value) -> Result<Op, String> {
    let kind = req_str(v, "op")?;
    let s = |name: &str| req_str(v, name);
    let n = |name: &str, default: u64| opt_u64(v, name, default);
    Ok(match kind.as_str() {
        "initiate" => Op::Initiate {
            task: s("task")?,
            cluster: u32::try_from(n("cluster", 0)?).map_err(|_| "cluster out of range")?,
            replications: u32::try_from(n("replications", 1)?)
                .map_err(|_| "replications out of range")?,
        },
        "pause" => Op::Pause { task: s("task")? },
        "resume" => Op::Resume { task: s("task")? },
        "terminate" => Op::Terminate { task: s("task")? },
        "remote_call" => Op::RemoteCall {
            caller: s("caller")?,
            call_id: n("call_id", 0)?,
        },
        "remote_return" => Op::RemoteReturn {
            call_id: n("call_id", 0)?,
        },
        "window_open" => Op::WindowOpen {
            task: s("task")?,
            window: s("window")?,
        },
        "window_send" => Op::WindowSend {
            from: s("from")?,
            to: s("to")?,
            window: s("window")?,
            words: n("words", 1)?,
        },
        "window_recv" => Op::WindowRecv {
            task: s("task")?,
            from: s("from")?,
            window: s("window")?,
        },
        "window_close" => Op::WindowClose {
            task: s("task")?,
            window: s("window")?,
        },
        "alloc" => Op::Alloc {
            cluster: u32::try_from(n("cluster", 0)?).map_err(|_| "cluster out of range")?,
            words: n("words", 0)?,
            what: s("what")?,
        },
        other => return Err(format!("unknown op `{other}`")),
    })
}

fn op_to_value(op: &Op) -> Value {
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let s = |s: &str| Value::Str(s.to_string());
    match op {
        Op::Initiate {
            task,
            cluster,
            replications,
        } => obj(vec![
            ("op", s("initiate")),
            ("task", s(task)),
            ("cluster", Value::UInt(u64::from(*cluster))),
            ("replications", Value::UInt(u64::from(*replications))),
        ]),
        Op::Pause { task } => obj(vec![("op", s("pause")), ("task", s(task))]),
        Op::Resume { task } => obj(vec![("op", s("resume")), ("task", s(task))]),
        Op::Terminate { task } => obj(vec![("op", s("terminate")), ("task", s(task))]),
        Op::Message { from, to, kind } => obj(vec![
            ("op", s("message")),
            ("from", s(from)),
            ("to", s(to)),
            ("kind", s(kind.name())),
        ]),
        Op::RemoteCall { caller, call_id } => obj(vec![
            ("op", s("remote_call")),
            ("caller", s(caller)),
            ("call_id", Value::UInt(*call_id)),
        ]),
        Op::RemoteReturn { call_id } => obj(vec![
            ("op", s("remote_return")),
            ("call_id", Value::UInt(*call_id)),
        ]),
        Op::WindowOpen { task, window } => obj(vec![
            ("op", s("window_open")),
            ("task", s(task)),
            ("window", s(window)),
        ]),
        Op::WindowSend {
            from,
            to,
            window,
            words,
        } => obj(vec![
            ("op", s("window_send")),
            ("from", s(from)),
            ("to", s(to)),
            ("window", s(window)),
            ("words", Value::UInt(*words)),
        ]),
        Op::WindowRecv { task, from, window } => obj(vec![
            ("op", s("window_recv")),
            ("task", s(task)),
            ("from", s(from)),
            ("window", s(window)),
        ]),
        Op::WindowClose { task, window } => obj(vec![
            ("op", s("window_close")),
            ("task", s(task)),
            ("window", s(window)),
        ]),
        Op::Alloc {
            cluster,
            words,
            what,
        } => obj(vec![
            ("op", s("alloc")),
            ("cluster", Value::UInt(u64::from(*cluster))),
            ("words", Value::UInt(*words)),
            ("what", s(what)),
        ]),
    }
}

impl JobSpec {
    /// Parse and resolve a submission body. Every optional field becomes
    /// its default here, so the parsed spec — and therefore its content
    /// hash — is independent of which defaults the tenant spelled out.
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let v = serde_json::parse_value(body).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_value(&v)
    }

    /// Resolve a submission from its JSON tree; see [`JobSpec::parse`].
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let kind = match field(v, "kind") {
            None => "plate".to_string(),
            Some(f) => String::from_value(f).map_err(|e| format!("field `kind`: {e}"))?,
        };
        match kind.as_str() {
            "plate" => {
                let nx = opt_u64(v, "nx", 0)? as usize;
                let ny = opt_u64(v, "ny", 0)? as usize;
                if nx < 2 || ny < 2 {
                    return Err("plate jobs need nx >= 2 and ny >= 2".into());
                }
                if nx > 4096 || ny > 4096 {
                    return Err("plate grids are capped at 4096 points per side".into());
                }
                let machine = opt_machine(v)?;
                let tasks = match opt_u64(v, "tasks", 0)? {
                    0 => machine.total_workers().max(1),
                    t => u32::try_from(t).map_err(|_| "tasks out of range")?,
                };
                let name = match field(v, "name") {
                    None | Some(Value::Null) => format!("plate {nx}x{ny}"),
                    Some(f) => String::from_value(f).map_err(|e| format!("field `name`: {e}"))?,
                };
                let max_iters = opt_u64(v, "max_iters", DEFAULT_MAX_ITERS as u64)? as usize;
                let tol = opt_f64(v, "tol", DEFAULT_TOL)?;
                if !(tol.is_finite() && tol > 0.0) {
                    return Err("tol must be a positive finite number".into());
                }
                let (budget_cycles, budget_events, budget_wall_ms) = opt_budget(v)?;
                Ok(JobSpec::Plate(PlateJob {
                    name,
                    nx,
                    ny,
                    tasks,
                    machine,
                    tol,
                    max_iters,
                    seed: opt_u64(v, "seed", 0)?,
                    allow_warnings: opt_bool(v, "allow_warnings", false)?,
                    budget_cycles,
                    budget_events,
                    budget_wall_ms,
                }))
            }
            "script" => {
                let ops_value = field(v, "ops").ok_or("script jobs need an `ops` array")?;
                let raw_ops = match ops_value {
                    Value::Arr(items) => items,
                    other => return Err(format!("`ops` must be an array, found {}", other.kind())),
                };
                if raw_ops.is_empty() {
                    return Err("`ops` must not be empty".into());
                }
                if raw_ops.len() > 10_000 {
                    return Err("script jobs are capped at 10000 ops".into());
                }
                let ops = raw_ops
                    .iter()
                    .enumerate()
                    .map(|(i, op)| op_from_value(op).map_err(|e| format!("ops[{i}]: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                let name = match field(v, "name") {
                    None | Some(Value::Null) => format!("script ({} ops)", ops.len()),
                    Some(f) => String::from_value(f).map_err(|e| format!("field `name`: {e}"))?,
                };
                Ok(JobSpec::Script(ScriptJob {
                    name,
                    ops,
                    machine: opt_machine(v)?,
                    seed: opt_u64(v, "seed", 0)?,
                    allow_warnings: opt_bool(v, "allow_warnings", false)?,
                }))
            }
            other => Err(format!("unknown job kind `{other}` (plate|script)")),
        }
    }

    /// The resolved spec as a JSON tree — the exact document the content
    /// hash covers and the registry stores.
    pub fn to_value(&self) -> Value {
        match self {
            JobSpec::Plate(p) => {
                let mut pairs = vec![
                    ("kind".into(), Value::Str("plate".into())),
                    ("name".into(), Value::Str(p.name.clone())),
                    ("nx".into(), Value::UInt(p.nx as u64)),
                    ("ny".into(), Value::UInt(p.ny as u64)),
                    ("tasks".into(), Value::UInt(u64::from(p.tasks))),
                    ("machine".into(), p.machine.to_value()),
                    ("tol".into(), Value::Float(p.tol)),
                    ("max_iters".into(), Value::UInt(p.max_iters as u64)),
                    ("seed".into(), Value::UInt(p.seed)),
                    ("allow_warnings".into(), Value::Bool(p.allow_warnings)),
                ];
                // Deterministic budget limits are part of the job's
                // identity, but the key is appended only when one is set so
                // pre-budget specs (and their content hashes) are
                // bit-identical to what rev 1 of the registry recorded.
                // `wall_ms` is operational and never serialized.
                let mut budget = Vec::new();
                if let Some(c) = p.budget_cycles {
                    budget.push(("max_sim_cycles".to_string(), Value::UInt(c)));
                }
                if let Some(e) = p.budget_events {
                    budget.push(("max_des_events".to_string(), Value::UInt(e)));
                }
                if !budget.is_empty() {
                    pairs.push(("budget".into(), Value::Obj(budget)));
                }
                Value::Obj(pairs)
            }
            JobSpec::Script(s) => Value::Obj(vec![
                ("kind".into(), Value::Str("script".into())),
                ("name".into(), Value::Str(s.name.clone())),
                (
                    "ops".into(),
                    Value::Arr(s.ops.iter().map(op_to_value).collect()),
                ),
                ("machine".into(), s.machine.to_value()),
                ("seed".into(), Value::UInt(s.seed)),
                ("allow_warnings".into(), Value::Bool(s.allow_warnings)),
            ]),
        }
    }

    /// The 16-hex-digit content hash of the resolved spec: the cache and
    /// registry key. The display `name` is deliberately excluded — two
    /// tenants naming the same work differently still share one record.
    pub fn content_hash(&self) -> String {
        let mut v = self.to_value();
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "name");
        }
        hash_hex(content_hash_value(&v))
    }

    /// Display name of the job.
    pub fn name(&self) -> &str {
        match self {
            JobSpec::Plate(p) => &p.name,
            JobSpec::Script(s) => &s.name,
        }
    }

    /// The cluster-shard count this job executes with under a server
    /// configured for `server_shards`: a spec-level `des_shards` wins
    /// (the tenant asked for a specific engine), otherwise the server's
    /// setting applies. Sharding is bitwise-invisible to results, so —
    /// like the run budget — it is an execution harness, never part of
    /// the content hash.
    pub fn effective_shards(&self, server_shards: u32) -> u32 {
        let own = match self {
            JobSpec::Plate(p) => p.machine.des_shards,
            JobSpec::Script(s) => s.machine.des_shards,
        };
        if own > 1 {
            own
        } else {
            server_shards.max(1)
        }
    }

    /// A copy of this spec whose machine runs `shards` cluster shards.
    /// Used by the server to execute admitted jobs sharded without
    /// touching the submitted spec (or its hash).
    pub fn with_exec_shards(&self, shards: u32) -> JobSpec {
        let mut spec = self.clone();
        match &mut spec {
            JobSpec::Plate(p) => p.machine.des_shards = shards,
            JobSpec::Script(s) => s.machine.des_shards = shards,
        }
        spec
    }

    /// Whether warning-severity findings are allowed through admission.
    pub fn allow_warnings(&self) -> bool {
        match self {
            JobSpec::Plate(p) => p.allow_warnings,
            JobSpec::Script(s) => s.allow_warnings,
        }
    }

    /// Run the static admission analysis for this job — the same passes
    /// `PlateScenario::run` gates on, without simulating a cycle.
    pub fn verify(&self) -> Report {
        match self {
            JobSpec::Plate(p) => p.scenario().verify(),
            JobSpec::Script(s) => {
                let mut script = ScenarioScript::new(s.name.clone());
                for op in &s.ops {
                    script.push(op.clone());
                }
                check_script(&script, &s.machine)
            }
        }
    }

    /// Sound static cost bounds for this job: what the run can consume,
    /// *at most*, before a single cycle is simulated. Plate jobs bound
    /// the full assembly → solve → stress pipeline at the CG iteration
    /// cap; script jobs bound the script itself (they never simulate, so
    /// their bound is trivially sound, but an `Unbounded` verdict still
    /// flags scripts whose cost the analyzer cannot close, e.g. remote
    /// calls).
    pub fn cost_report(&self) -> CostReport {
        match self {
            JobSpec::Plate(p) => fem2_core::verify::scenario_cost(&p.scenario()),
            JobSpec::Script(s) => {
                let mut script = ScenarioScript::new(s.name.clone());
                for op in &s.ops {
                    script.push(op.clone());
                }
                check_cost(&script, &s.machine, &CostParams::single_sweep())
            }
        }
    }

    /// Execute the admitted job and produce its outcome, ignoring any run
    /// budget. Plate jobs simulate (the caller charges this against the
    /// run counter); script jobs complete with their verification verdict.
    pub fn execute(&self) -> JobOutcome {
        match self {
            JobSpec::Plate(p) => JobOutcome {
                value: plate_outcome(&p.scenario().run_unchecked()),
            },
            JobSpec::Script(_) => self.script_outcome(),
        }
    }

    /// Execute under the job's run budget: a plate simulation that exceeds
    /// its budget winds down and returns the structured [`RunAborted`]
    /// instead of running away. Script jobs never simulate, so they are
    /// unaffected by budgets and always complete.
    pub fn execute_budgeted(&self) -> Result<JobOutcome, RunAborted> {
        match self {
            JobSpec::Plate(p) => Ok(JobOutcome {
                value: plate_outcome(&p.scenario().run_budgeted()?),
            }),
            JobSpec::Script(_) => Ok(self.script_outcome()),
        }
    }

    /// Execute under an explicit budget (the supervisor's *effective*
    /// budget — see [`PlateJob::effective_budget`]) instead of the one
    /// parsed from the submission. The budget is an execution harness, not
    /// job identity: it never feeds the content hash.
    pub fn execute_with_budget(&self, budget: RunBudget) -> Result<JobOutcome, RunAborted> {
        match self {
            JobSpec::Plate(p) => {
                let mut s = p.scenario();
                s.budget = budget;
                Ok(JobOutcome {
                    value: plate_outcome(&s.run_budgeted()?),
                })
            }
            JobSpec::Script(_) => Ok(self.script_outcome()),
        }
    }

    fn script_outcome(&self) -> JobOutcome {
        let JobSpec::Script(s) = self else {
            unreachable!("script_outcome on a script spec only");
        };
        let report = self.verify();
        JobOutcome {
            value: Value::Obj(vec![
                ("kind".into(), Value::Str("script".into())),
                ("ops".into(), Value::UInt(s.ops.len() as u64)),
                ("status".into(), Value::Str(report.status().into())),
                (
                    "warnings".into(),
                    Value::UInt(report.warning_count() as u64),
                ),
            ]),
        }
    }
}

/// The outcome document of a completed plate simulation.
fn plate_outcome(report: &fem2_core::ScenarioReport) -> Value {
    Value::Obj(vec![
        ("kind".into(), Value::Str("plate".into())),
        ("unknowns".into(), Value::UInt(report.unknowns as u64)),
        ("iterations".into(), Value::UInt(report.iterations as u64)),
        ("residual".into(), Value::Float(report.residual)),
        ("converged".into(), Value::Bool(report.converged)),
        ("sim_cycles".into(), Value::UInt(report.elapsed)),
        ("flops".into(), Value::UInt(report.total_flops)),
        ("messages".into(), Value::UInt(report.total_messages)),
        ("words_moved".into(), Value::UInt(report.total_words_moved)),
        (
            "peak_memory_words".into(),
            Value::UInt(report.peak_memory_words),
        ),
        (
            "total_memory_words".into(),
            Value::UInt(report.total_memory_words),
        ),
    ])
}

impl PlateJob {
    /// The scenario this job simulates, with any run budget armed.
    pub fn scenario(&self) -> PlateScenario {
        let mut s = PlateScenario::square(self.nx, self.machine.clone());
        s.ny = self.ny;
        s.tasks = self.tasks;
        s.tol = self.tol;
        s.max_iters = self.max_iters;
        s.allow_warnings = self.allow_warnings;
        s.budget = self.budget();
        s
    }

    /// The budget exactly as submitted (unlimited when no field is set).
    pub fn budget(&self) -> RunBudget {
        RunBudget {
            max_sim_cycles: self.budget_cycles,
            max_des_events: self.budget_events,
            wall_limit: self.budget_wall_ms.map(Duration::from_millis),
            cancel: None,
        }
    }

    /// The budget the supervisor actually arms, by the precedence rule of
    /// DESIGN.md §8.1: an explicitly submitted deterministic cap always
    /// wins; a *missing* cycle or event cap is auto-derived from the
    /// static cost bound padded by `slack_percent` (clamped to ≥ 100).
    /// Soundness makes the derived cap safe: bound ≥ actual, so a healthy
    /// run can never trip it — only a run that exceeds its own static
    /// bound (a cost-model or simulator bug) aborts. On an `Unbounded`
    /// verdict the missing caps fall back to unlimited; `wall_ms` is
    /// operational and never auto-derived.
    ///
    /// Returns the armed budget plus whether any cap was auto-derived.
    pub fn effective_budget(&self, cost: &CostReport, slack_percent: u64) -> (RunBudget, bool) {
        let mut budget = self.budget();
        let mut auto = false;
        if cost.is_bounded() {
            let slack = slack_percent.max(100);
            // Saturate *up* on overflow: a cap too large is merely loose,
            // a cap rounded below the bound would abort sound runs.
            let pad = |bound: u64| bound.checked_mul(slack).map_or(u64::MAX, |v| v / 100);
            if budget.max_sim_cycles.is_none() {
                budget.max_sim_cycles = Some(pad(cost.sim_cycles).max(1));
                auto = true;
            }
            if budget.max_des_events.is_none() {
                budget.max_des_events = Some(pad(cost.des_events).max(1));
                auto = true;
            }
        }
        (budget, auto)
    }

    /// Whether any budget limit is armed.
    pub fn has_budget(&self) -> bool {
        self.budget_cycles.is_some()
            || self.budget_events.is_some()
            || self.budget_wall_ms.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_plate_submission_resolves_defaults() {
        let spec = JobSpec::parse(r#"{"kind":"plate","nx":16,"ny":16}"#).unwrap();
        let JobSpec::Plate(p) = &spec else {
            panic!("expected plate job");
        };
        assert_eq!(p.name, "plate 16x16");
        assert_eq!(p.machine, MachineConfig::fem2_default());
        assert_eq!(p.tasks, MachineConfig::fem2_default().total_workers());
        assert_eq!(p.tol, DEFAULT_TOL);
        assert_eq!(p.max_iters, DEFAULT_MAX_ITERS);
        assert_eq!(p.seed, 0);
        assert!(!p.allow_warnings);
    }

    #[test]
    fn kind_defaults_to_plate() {
        let spec = JobSpec::parse(r#"{"nx":8,"ny":8}"#).unwrap();
        assert!(matches!(spec, JobSpec::Plate(_)));
    }

    #[test]
    fn spelled_out_defaults_hash_identically() {
        let minimal = JobSpec::parse(r#"{"kind":"plate","nx":16,"ny":16}"#).unwrap();
        let spelled = JobSpec::parse(
            r#"{"seed":0,"ny":16,"nx":16,"kind":"plate","allow_warnings":false,
                "max_iters":5000,"tol":1e-6}"#,
        )
        .unwrap();
        assert_eq!(minimal.content_hash(), spelled.content_hash());
    }

    #[test]
    fn name_does_not_partition_the_cache_but_seed_does() {
        let a = JobSpec::parse(r#"{"nx":16,"ny":16,"name":"alice's plate"}"#).unwrap();
        let b = JobSpec::parse(r#"{"nx":16,"ny":16,"name":"bob's plate"}"#).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        let c = JobSpec::parse(r#"{"nx":16,"ny":16,"seed":1}"#).unwrap();
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn machine_config_partitions_the_cache() {
        let a = JobSpec::parse(r#"{"nx":16,"ny":16}"#).unwrap();
        let b = JobSpec::parse(
            r#"{"nx":16,"ny":16,"machine":{"clusters":8,"pes_per_cluster":8,
                "memory_per_cluster":4194304,"topology":"Crossbar","link_latency":20,
                "words_per_cycle":1,"max_packet_words":256,"header_words":4,
                "cost":{"flop":4,"int_op":1,"mem_word":2,"msg_send":60,"msg_dispatch":80,
                "task_create":120,"context_switch":40},"dedicated_kernel_pe":true,
                "route_cache":true,"des_queue":"Calendar"}}"#,
        )
        .unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    /// A 16-cluster submission body with the given topology JSON spliced
    /// in — the shared scaffold for the new-topology admission tests.
    fn sixteen_cluster_body(topology_json: &str) -> String {
        format!(
            r#"{{"nx":12,"ny":12,"machine":{{"clusters":16,"pes_per_cluster":2,
                "memory_per_cluster":4194304,"topology":{topology_json},"link_latency":20,
                "words_per_cycle":1,"max_packet_words":256,"header_words":4,
                "cost":{{"flop":4,"int_op":1,"mem_word":2,"msg_send":60,"msg_dispatch":80,
                "task_create":120,"context_switch":40}},"dedicated_kernel_pe":true,
                "route_cache":true,"des_queue":"Calendar"}}}}"#
        )
    }

    #[test]
    fn torus_and_fat_tree_machines_round_trip_and_hash_stably() {
        let torus = JobSpec::parse(&sixteen_cluster_body(r#"{"Torus":{"dims":[4,4]}}"#)).unwrap();
        let fat = JobSpec::parse(&sixteen_cluster_body(r#"{"FatTree":{"radix":4}}"#)).unwrap();
        // The registry stores to_value; new topologies must survive it
        // bit-for-bit, keeping the content hash (the cache key) stable.
        for spec in [&torus, &fat] {
            let again = JobSpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(spec.to_value(), again.to_value());
            assert_eq!(spec.content_hash(), again.content_hash());
        }
        // Topology partitions the cache: same shape, different network.
        assert_ne!(torus.content_hash(), fat.content_hash());
    }

    #[test]
    fn non_factoring_topologies_carry_the_invalid_machine_prefix() {
        // Torus dims whose product misses the cluster count, and a
        // fat-tree radix that does not divide it: both are semantic
        // rejections the server maps to 422, so the error must carry
        // [`INVALID_MACHINE_PREFIX`] and name the offending field.
        let err = JobSpec::parse(&sixteen_cluster_body(r#"{"Torus":{"dims":[3,5]}}"#)).unwrap_err();
        assert!(err.starts_with(INVALID_MACHINE_PREFIX), "{err}");
        assert!(err.contains("torus dims"), "{err}");
        assert!(err.contains("do not factor"), "{err}");
        let err = JobSpec::parse(&sixteen_cluster_body(r#"{"FatTree":{"radix":5}}"#)).unwrap_err();
        assert!(err.starts_with(INVALID_MACHINE_PREFIX), "{err}");
        assert!(err.contains("fat-tree radix"), "{err}");
        // A malformed machine object is a *shape* error, not a semantic
        // one: it must NOT carry the 422 prefix.
        let err = JobSpec::parse(r#"{"nx":12,"ny":12,"machine":{"clusters":16}}"#).unwrap_err();
        assert!(!err.starts_with(INVALID_MACHINE_PREFIX), "{err}");
    }

    #[test]
    fn degenerate_submissions_rejected_at_parse() {
        assert!(JobSpec::parse("not json").is_err());
        assert!(JobSpec::parse(r#"{"kind":"plate","nx":1,"ny":16}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"plate","nx":16,"ny":16,"tol":-1.0}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"plate","nx":9999,"ny":16}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"script","ops":[]}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"wat"}"#).is_err());
        assert!(JobSpec::parse(r#"{"kind":"script","ops":[{"op":"conjure"}]}"#).is_err());
    }

    #[test]
    fn clean_plate_job_verifies_and_executes() {
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12}"#).unwrap();
        assert!(spec.verify().is_clean());
        let out = spec.execute();
        assert_eq!(
            field(&out.value, "converged").unwrap(),
            &Value::Bool(true),
            "{:?}",
            out.value
        );
    }

    #[test]
    fn script_job_round_trips_ops_and_verifies() {
        let body = r#"{"kind":"script","name":"ping","ops":[
            {"op":"initiate","task":"a","cluster":0,"replications":1},
            {"op":"initiate","task":"b","cluster":1},
            {"op":"window_open","task":"a","window":"w"},
            {"op":"window_open","task":"b","window":"w"},
            {"op":"window_send","from":"a","to":"b","window":"w","words":8},
            {"op":"window_recv","task":"b","from":"a","window":"w"},
            {"op":"window_close","task":"a","window":"w"},
            {"op":"window_close","task":"b","window":"w"},
            {"op":"terminate","task":"a"},
            {"op":"terminate","task":"b"}]}"#;
        let spec = JobSpec::parse(body).unwrap();
        let report = spec.verify();
        assert!(report.is_clean(), "{report}");
        // Ops survive the to_value round trip (the registry stores them).
        let again = JobSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(spec.content_hash(), again.content_hash());
        let out = spec.execute();
        assert_eq!(
            field(&out.value, "status").unwrap(),
            &Value::Str("CLEAN".into())
        );
    }

    #[test]
    fn unbudgeted_spec_has_no_budget_key_and_wall_ms_is_hash_neutral() {
        let plain = JobSpec::parse(r#"{"nx":16,"ny":16}"#).unwrap();
        assert!(
            field(&plain.to_value(), "budget").is_none(),
            "pre-budget specs must serialize unchanged"
        );
        // Wall-clock limits are operational, not identity.
        let with_wall = JobSpec::parse(r#"{"nx":16,"ny":16,"budget":{"wall_ms":5000}}"#).unwrap();
        assert_eq!(plain.content_hash(), with_wall.content_hash());
        assert!(field(&with_wall.to_value(), "budget").is_none());
    }

    #[test]
    fn deterministic_budget_limits_partition_the_cache_and_round_trip() {
        let plain = JobSpec::parse(r#"{"nx":16,"ny":16}"#).unwrap();
        let budgeted =
            JobSpec::parse(r#"{"nx":16,"ny":16,"budget":{"max_sim_cycles":100000}}"#).unwrap();
        assert_ne!(plain.content_hash(), budgeted.content_hash());
        let again = JobSpec::from_value(&budgeted.to_value()).unwrap();
        assert_eq!(budgeted.content_hash(), again.content_hash());
        let JobSpec::Plate(p) = &again else {
            panic!("expected plate job");
        };
        assert_eq!(p.budget_cycles, Some(100_000));
    }

    #[test]
    fn degenerate_budgets_rejected_at_parse() {
        assert!(JobSpec::parse(r#"{"nx":16,"ny":16,"budget":{"max_sim_cycles":0}}"#).is_err());
        assert!(JobSpec::parse(r#"{"nx":16,"ny":16,"budget":7}"#).is_err());
        assert!(JobSpec::parse(r#"{"nx":16,"ny":16,"budget":{"wall_ms":"soon"}}"#).is_err());
    }

    #[test]
    fn budgeted_execute_aborts_runaway_plates() {
        let spec =
            JobSpec::parse(r#"{"nx":24,"ny":24,"budget":{"max_sim_cycles":10000}}"#).unwrap();
        let first = spec.execute_budgeted().expect_err("budget must fire");
        let second = spec.execute_budgeted().expect_err("budget must fire");
        assert_eq!(first, second, "aborts repeat identically");
        assert_eq!(first.cause, fem2_machine::AbortCause::CyclesExceeded);
        // The same spec without supervision still completes.
        let unbudgeted = JobSpec::parse(r#"{"nx":24,"ny":24}"#).unwrap();
        assert!(unbudgeted.execute_budgeted().is_ok());
    }

    #[test]
    fn cost_bound_is_sound_for_the_default_plate_job() {
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12}"#).unwrap();
        let cost = spec.cost_report();
        assert!(cost.is_bounded());
        let out = spec.execute();
        let Some(Value::UInt(actual)) = field(&out.value, "sim_cycles") else {
            panic!("{:?}", out.value);
        };
        assert!(
            cost.sim_cycles >= *actual,
            "bound {} < actual {actual}",
            cost.sim_cycles
        );
    }

    #[test]
    fn effective_budget_prefers_explicit_caps_and_autofills_the_rest() {
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12,"budget":{"max_sim_cycles":777}}"#).unwrap();
        let JobSpec::Plate(p) = &spec else {
            panic!("expected plate job");
        };
        let cost = spec.cost_report();
        let (budget, auto) = p.effective_budget(&cost, 150);
        assert!(auto, "missing event cap must be auto-derived");
        // The explicit cap survives untouched; the derived one carries
        // the slack.
        assert_eq!(budget.max_sim_cycles, Some(777));
        assert_eq!(
            budget.max_des_events,
            Some(cost.des_events.checked_mul(150).unwrap() / 100)
        );
        // A fully explicit budget derives nothing.
        let spec = JobSpec::parse(
            r#"{"nx":12,"ny":12,"budget":{"max_sim_cycles":777,"max_des_events":888}}"#,
        )
        .unwrap();
        let JobSpec::Plate(p) = &spec else {
            panic!("expected plate job");
        };
        let (budget, auto) = p.effective_budget(&spec.cost_report(), 150);
        assert!(!auto);
        assert_eq!(budget.max_sim_cycles, Some(777));
        assert_eq!(budget.max_des_events, Some(888));
    }

    #[test]
    fn auto_derived_budget_never_aborts_a_sound_run() {
        let spec = JobSpec::parse(r#"{"nx":12,"ny":12}"#).unwrap();
        let JobSpec::Plate(p) = &spec else {
            panic!("expected plate job");
        };
        // Even with zero slack the bound itself is ≥ the actual run.
        let (budget, auto) = p.effective_budget(&spec.cost_report(), 100);
        assert!(auto);
        let out = spec
            .execute_with_budget(budget)
            .expect("auto budget must not fire on a healthy run");
        assert_eq!(field(&out.value, "converged").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn run_status_wire_names_round_trip() {
        for s in [RunStatus::Ok, RunStatus::Failed, RunStatus::Aborted] {
            assert_eq!(RunStatus::parse(s.name()), Some(s));
        }
        assert_eq!(RunStatus::parse("exploded"), None);
        assert!(RunStatus::Ok.is_ok());
        assert!(!RunStatus::Failed.is_ok());
    }

    #[test]
    fn deadlocking_script_is_rejected_by_admission() {
        let body = r#"{"kind":"script","name":"head-to-head","ops":[
            {"op":"initiate","task":"east"},
            {"op":"initiate","task":"west"},
            {"op":"window_open","task":"east","window":"halo"},
            {"op":"window_open","task":"west","window":"halo"},
            {"op":"window_send","from":"east","to":"west","window":"halo","words":8},
            {"op":"window_send","from":"west","to":"east","window":"halo","words":8},
            {"op":"window_recv","task":"west","from":"east","window":"halo"},
            {"op":"window_recv","task":"east","from":"west","window":"halo"},
            {"op":"window_close","task":"east","window":"halo"},
            {"op":"window_close","task":"west","window":"halo"},
            {"op":"terminate","task":"east"},
            {"op":"terminate","task":"west"}]}"#;
        let spec = JobSpec::parse(body).unwrap();
        let report = spec.verify();
        assert!(report.blocks(true), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.pass == "deadlock" && d.message.contains("'east'")));
    }
}
