//! The persistent run registry: an append-only JSONL log plus a derived
//! index, both under the server's `--data-dir`.
//!
//! Layout (schema `fem2-registry/4`, documented in DESIGN.md):
//!
//! * `runs.jsonl` — one JSON object per line, append-only, flushed after
//!   every record. Two record kinds share the log, discriminated by
//!   `"kind"`: completed job runs (`"plate"` / `"script"`) and ingested
//!   bench records (`"bench"`).
//! * `index.json` — a derived summary (counts, hashes, names, statuses)
//!   rewritten via temp-file + rename after every append. Purely a
//!   convenience for humans and the report generator; the log is the
//!   source of truth and the index is rebuilt from it on every open.
//!
//! Schema rev 2 adds a `status` field (`ok` / `failed` / `aborted`), an
//! optional `error` message, and (for aborted runs) a structured
//! `abort_cause` to run records: the registry now remembers how a run
//! *ended*, which is what poison quarantine replays from. Only
//! *deterministic* endings quarantine — see [`RunRecord::quarantines`].
//! Rev 1 records have no `status` and replay as `ok` — rev 1 only ever
//! persisted successful runs; rev 2 records written before `abort_cause`
//! existed recover the cause from the error text on load.
//!
//! Schema rev 3 adds an optional `predicted` object to plate run records
//! — the static cost bounds (`sim_cycles`, `des_events`, `messages`,
//! `peak_memory_words`) the admission pass computed for the spec — so the
//! report site can plot predicted-vs-actual tightness. Rev 1/2 records
//! load with no prediction and render without tightness lines.
//!
//! Schema rev 4 adds a `shards` field to run records — the cluster-shard
//! count the run actually executed with — so cached results note their
//! execution mode. Sharding is bitwise-invisible to outcomes, so the
//! field is informational and hash-neutral; rev 1–3 records load
//! unchanged and replay as `shards: 1` (the sequential engine).
//!
//! Crash safety: a torn final line (power loss mid-append) is truncated
//! away on open — before the append handle is created — so every earlier
//! record still loads and the next append starts on a clean line instead
//! of gluing onto the partial one. A malformed *interior* line (hand
//! edits) is skipped with a warning as before.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::json::Value;

use crate::util::{json_compact, json_pretty};

use crate::job::{JobOutcome, JobSpec, RunStatus};

/// Registry log schema identifier, stamped on every record.
pub const SCHEMA: &str = "fem2-registry/4";

/// Rev 3: `predicted` cost bounds, no per-run `shards`.
pub const SCHEMA_V3: &str = "fem2-registry/3";

/// Rev 2: run endings (`status`/`error`/`abort_cause`), no `predicted`.
pub const SCHEMA_V2: &str = "fem2-registry/2";

/// Rev 1: no `status` field; records replay as `ok`.
pub const SCHEMA_V1: &str = "fem2-registry/1";

/// A completed job run, as replayed from the log.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Total order of the record in the log.
    pub seq: u64,
    /// Content hash of the resolved spec (cache key).
    pub hash: String,
    /// Display name at first submission.
    pub name: String,
    /// `"plate"` or `"script"`.
    pub kind: String,
    /// The resolved spec document.
    pub spec: Value,
    /// The outcome document (`null` for failed / aborted runs).
    pub outcome: Value,
    /// Wall-clock execution time, nanoseconds.
    pub wall_ns: u64,
    /// How the run ended.
    pub status: RunStatus,
    /// Failure or abort detail for non-`ok` runs.
    pub error: Option<String>,
    /// Structured abort cause for `aborted` runs (`cycles_exceeded`,
    /// `events_exceeded`, `wall_deadline`, `cancelled`).
    pub abort_cause: Option<String>,
    /// Static cost bounds predicted at admission (rev 3, plate runs with
    /// a bounded verdict only): an object with `sim_cycles`,
    /// `des_events`, `messages`, and `peak_memory_words`.
    pub predicted: Option<Value>,
    /// Cluster-shard count the run executed with (rev 4); 1 — the
    /// sequential engine — for records written before the field existed.
    pub shards: u32,
}

impl RunRecord {
    /// Whether this record poisons its content hash: only *deterministic*
    /// endings quarantine. A panic or a cycle/event-budget abort is a
    /// property of the spec and will repeat identically; a wall-deadline
    /// or cancel abort is a host fact — and `wall_ms` is deliberately
    /// hash-neutral, so quarantining it would poison the unbudgeted spec
    /// for every tenant. Those re-run instead of replaying.
    pub fn quarantines(&self) -> bool {
        match self.status {
            RunStatus::Ok => false,
            RunStatus::Failed => true,
            RunStatus::Aborted => matches!(
                self.abort_cause.as_deref(),
                Some("cycles_exceeded" | "events_exceeded")
            ),
        }
    }
}

/// An ingested bench record (from `fem2-bench --json` output).
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Total order of the record in the log.
    pub seq: u64,
    /// Bench record name, e.g. `plate-conduction-32x32`.
    pub name: String,
    /// Source commit the suite ran at.
    pub commit: String,
    /// Machine-plan content hash from the suite.
    pub plan_hash: String,
    /// Flat parameter summary from the suite.
    pub params: String,
    /// Median wall time, nanoseconds.
    pub wall_ns: u64,
    /// Simulated cycles.
    pub sim_cycles: u64,
    /// DES events per wall second.
    pub events_per_sec: f64,
}

/// The registry: in-memory replay of the log plus the open append handle.
pub struct Registry {
    dir: PathBuf,
    log: File,
    runs: Vec<RunRecord>,
    benches: Vec<BenchRecord>,
    next_seq: u64,
    /// Appends attempted so far (1-based counter for fault injection).
    writes: u64,
    /// Chaos hook: append indices (1-based) that fail with a simulated
    /// IO error instead of writing. Each index fires at most once.
    fail_writes: Vec<u64>,
    /// Hashes whose *latest* record quarantines, maintained incrementally
    /// on load and append so `quarantine_size` is O(1) per probe.
    poisoned: HashSet<String>,
}

/// Truncate a torn trailing record (no final newline) left by a crash
/// mid-append, so the next append starts on a fresh line. Complete lines
/// are never touched.
fn repair_torn_tail(log_path: &Path) -> Result<(), String> {
    let bytes = fs::read(log_path).map_err(|e| format!("read {}: {e}", log_path.display()))?;
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(());
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let f = OpenOptions::new()
        .write(true)
        .open(log_path)
        .map_err(|e| format!("open {}: {e}", log_path.display()))?;
    f.set_len(keep as u64)
        .map_err(|e| format!("truncate {}: {e}", log_path.display()))?;
    eprintln!(
        "fem2-serve: truncated {} torn trailing bytes in {}",
        bytes.len() - keep,
        log_path.display()
    );
    Ok(())
}

fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn str_field(v: &Value, name: &str) -> Option<String> {
    match field(v, name) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn u64_field(v: &Value, name: &str) -> Option<u64> {
    match field(v, name) {
        Some(Value::UInt(u)) => Some(*u),
        Some(Value::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn f64_field(v: &Value, name: &str) -> Option<f64> {
    match field(v, name) {
        Some(Value::Float(f)) => Some(*f),
        Some(Value::UInt(u)) => Some(*u as f64),
        Some(Value::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

impl Registry {
    /// Open (creating if absent) the registry under `dir`, replaying the
    /// log into memory and rebuilding `index.json`.
    pub fn open(dir: &Path) -> Result<Registry, String> {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let log_path = dir.join("runs.jsonl");
        let mut runs = Vec::new();
        let mut benches = Vec::new();
        let mut next_seq = 0u64;
        if log_path.exists() {
            repair_torn_tail(&log_path)?;
            let reader = BufReader::new(
                File::open(&log_path).map_err(|e| format!("open {}: {e}", log_path.display()))?,
            );
            for (lineno, line) in reader.lines().enumerate() {
                let line = line.map_err(|e| format!("read {}: {e}", log_path.display()))?;
                if line.trim().is_empty() {
                    continue;
                }
                let v = match serde_json::parse_value(&line) {
                    Ok(v) => v,
                    Err(_) => {
                        // A torn trailing line from a crash mid-append.
                        // Everything before it is intact; keep going so a
                        // crash never bricks the registry.
                        eprintln!(
                            "fem2-serve: skipping malformed registry line {} in {}",
                            lineno + 1,
                            log_path.display()
                        );
                        continue;
                    }
                };
                match str_field(&v, "kind").as_deref() {
                    Some("bench") => {
                        let rec = BenchRecord {
                            seq: u64_field(&v, "seq").unwrap_or(next_seq),
                            name: str_field(&v, "name").unwrap_or_default(),
                            commit: str_field(&v, "commit").unwrap_or_default(),
                            plan_hash: str_field(&v, "plan_hash").unwrap_or_default(),
                            params: str_field(&v, "params").unwrap_or_default(),
                            wall_ns: u64_field(&v, "wall_ns").unwrap_or(0),
                            sim_cycles: u64_field(&v, "sim_cycles").unwrap_or(0),
                            events_per_sec: f64_field(&v, "events_per_sec").unwrap_or(0.0),
                        };
                        next_seq = next_seq.max(rec.seq + 1);
                        benches.push(rec);
                    }
                    Some(kind @ ("plate" | "script")) => {
                        let (Some(hash), Some(spec), Some(outcome)) = (
                            str_field(&v, "hash"),
                            field(&v, "spec").cloned(),
                            field(&v, "outcome").cloned(),
                        ) else {
                            eprintln!(
                                "fem2-serve: skipping incomplete run record at line {}",
                                lineno + 1
                            );
                            continue;
                        };
                        // Rev 1 records carry no status: they were only
                        // ever written for successful runs.
                        let status = str_field(&v, "status")
                            .and_then(|s| RunStatus::parse(&s))
                            .unwrap_or(RunStatus::Ok);
                        let error = str_field(&v, "error");
                        // Records written before `abort_cause` existed
                        // still carry the cause inside the error text
                        // ("run aborted (wall_deadline) at ..."); sniff it
                        // so old stores keep the same quarantine behavior.
                        let abort_cause = str_field(&v, "abort_cause").or_else(|| {
                            let err = error.as_deref()?;
                            [
                                "cycles_exceeded",
                                "events_exceeded",
                                "wall_deadline",
                                "cancelled",
                            ]
                            .into_iter()
                            .find(|c| err.contains(&format!("({c})")))
                            .map(str::to_string)
                        });
                        let rec = RunRecord {
                            seq: u64_field(&v, "seq").unwrap_or(next_seq),
                            hash,
                            name: str_field(&v, "name").unwrap_or_default(),
                            kind: kind.to_string(),
                            spec,
                            outcome,
                            wall_ns: u64_field(&v, "wall_ns").unwrap_or(0),
                            status,
                            error,
                            abort_cause,
                            predicted: field(&v, "predicted")
                                .filter(|p| matches!(p, Value::Obj(_)))
                                .cloned(),
                            // Rev 1–3 records predate the field; they
                            // only ever ran the sequential engine.
                            shards: u64_field(&v, "shards")
                                .map_or(1, |s| u32::try_from(s).unwrap_or(1).max(1)),
                        };
                        next_seq = next_seq.max(rec.seq + 1);
                        runs.push(rec);
                    }
                    _ => {
                        eprintln!(
                            "fem2-serve: skipping unknown registry record at line {}",
                            lineno + 1
                        );
                    }
                }
            }
        }
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| format!("append {}: {e}", log_path.display()))?;
        let mut poisoned = HashSet::new();
        for r in &runs {
            if r.quarantines() {
                poisoned.insert(r.hash.clone());
            } else {
                poisoned.remove(&r.hash);
            }
        }
        let reg = Registry {
            dir: dir.to_path_buf(),
            log,
            runs,
            benches,
            next_seq,
            writes: 0,
            fail_writes: Vec::new(),
            poisoned,
        };
        reg.write_index()?;
        Ok(reg)
    }

    /// The registry's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cached run for `hash`, if one was ever recorded. The *latest*
    /// record wins: a hash that failed once and was later re-run
    /// successfully (or vice versa) replays its most recent fate.
    pub fn lookup(&self, hash: &str) -> Option<&RunRecord> {
        self.runs.iter().rev().find(|r| r.hash == hash)
    }

    /// The latest *successful* run for `hash`, if any — what submission
    /// serves when the latest record overall is a non-quarantining abort
    /// (wall deadline, cancel) that a completed run already answered.
    pub fn lookup_ok(&self, hash: &str) -> Option<&RunRecord> {
        self.runs
            .iter()
            .rev()
            .find(|r| r.hash == hash && r.status.is_ok())
    }

    /// Number of quarantined specs: distinct hashes whose latest record
    /// [`quarantines`](RunRecord::quarantines). Re-submissions of these
    /// replay the recorded failure instead of burning a worker.
    pub fn quarantine_size(&self) -> usize {
        self.poisoned.len()
    }

    /// Chaos hook: make the given append attempts (1-based, counted over
    /// the registry's lifetime) fail with a simulated IO error. Used by
    /// the fault-injection harness to exercise the server's registry
    /// retry and failure paths; each listed index fires at most once.
    pub fn inject_write_errors(&mut self, appends: Vec<u64>) {
        self.fail_writes = appends;
    }

    /// All job runs, in log order.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// All ingested bench records, in log order.
    pub fn benches(&self) -> &[BenchRecord] {
        &self.benches
    }

    /// Number of job runs recorded.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of bench records ingested.
    pub fn bench_count(&self) -> usize {
        self.benches.len()
    }

    /// Record a successfully completed job run: append to the log
    /// (flushed before returning) and rewrite the index.
    pub fn record_run(
        &mut self,
        spec: &JobSpec,
        outcome: &JobOutcome,
        wall_ns: u64,
    ) -> Result<&RunRecord, String> {
        self.record_result(spec, RunStatus::Ok, Some(outcome), None, None, wall_ns, 1)
    }

    /// Record how a supervised job run ended — success, failure, or
    /// budget abort. Non-`ok` records persist with a `null` outcome and
    /// the failure detail in `error`; aborted records additionally carry
    /// the structured `abort_cause`, which decides whether poison
    /// quarantine replays them to later submitters of the same spec.
    /// `shards` is the cluster-shard count the run executed with (rev 4);
    /// pass 1 for the sequential engine.
    #[allow(clippy::too_many_arguments)]
    pub fn record_result(
        &mut self,
        spec: &JobSpec,
        status: RunStatus,
        outcome: Option<&JobOutcome>,
        error: Option<&str>,
        abort_cause: Option<&str>,
        wall_ns: u64,
        shards: u32,
    ) -> Result<&RunRecord, String> {
        let kind = match spec {
            JobSpec::Plate(_) => "plate",
            JobSpec::Script(_) => "script",
        };
        // Rev 3: stamp plate records with the static cost bounds the
        // admission pass predicted, so the report site can plot
        // predicted-vs-actual tightness. Scripts never simulate, so a
        // prediction would have nothing to be compared against.
        let predicted = match spec {
            JobSpec::Plate(_) => {
                let cost = spec.cost_report();
                cost.is_bounded().then(|| {
                    Value::Obj(vec![
                        ("sim_cycles".into(), Value::UInt(cost.sim_cycles)),
                        ("des_events".into(), Value::UInt(cost.des_events)),
                        ("messages".into(), Value::UInt(cost.messages)),
                        (
                            "peak_memory_words".into(),
                            Value::UInt(cost.peak_memory_words),
                        ),
                    ])
                })
            }
            JobSpec::Script(_) => None,
        };
        let rec = RunRecord {
            seq: self.next_seq,
            hash: spec.content_hash(),
            name: spec.name().to_string(),
            kind: kind.to_string(),
            spec: spec.to_value(),
            outcome: outcome.map_or(Value::Null, |o| o.value.clone()),
            wall_ns,
            status,
            error: error.map(str::to_string),
            abort_cause: abort_cause.map(str::to_string),
            predicted,
            shards: shards.max(1),
        };
        let mut doc = vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("kind".into(), Value::Str(rec.kind.clone())),
            ("seq".into(), Value::UInt(rec.seq)),
            ("hash".into(), Value::Str(rec.hash.clone())),
            ("name".into(), Value::Str(rec.name.clone())),
            ("spec".into(), rec.spec.clone()),
            ("outcome".into(), rec.outcome.clone()),
            ("wall_ns".into(), Value::UInt(rec.wall_ns)),
            ("status".into(), Value::Str(rec.status.name().into())),
            ("shards".into(), Value::UInt(u64::from(rec.shards))),
        ];
        if let Some(e) = &rec.error {
            doc.push(("error".into(), Value::Str(e.clone())));
        }
        if let Some(c) = &rec.abort_cause {
            doc.push(("abort_cause".into(), Value::Str(c.clone())));
        }
        if let Some(p) = &rec.predicted {
            doc.push(("predicted".into(), p.clone()));
        }
        self.append_line(&Value::Obj(doc))?;
        if rec.quarantines() {
            self.poisoned.insert(rec.hash.clone());
        } else {
            self.poisoned.remove(&rec.hash);
        }
        self.next_seq += 1;
        self.runs.push(rec);
        self.write_index()?;
        Ok(self.runs.last().expect("just pushed"))
    }

    /// Ingest one bench record (already parsed from `fem2-bench --json`).
    pub fn record_bench(&mut self, mut rec: BenchRecord) -> Result<(), String> {
        rec.seq = self.next_seq;
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("kind".into(), Value::Str("bench".into())),
            ("seq".into(), Value::UInt(rec.seq)),
            ("name".into(), Value::Str(rec.name.clone())),
            ("commit".into(), Value::Str(rec.commit.clone())),
            ("plan_hash".into(), Value::Str(rec.plan_hash.clone())),
            ("params".into(), Value::Str(rec.params.clone())),
            ("wall_ns".into(), Value::UInt(rec.wall_ns)),
            ("sim_cycles".into(), Value::UInt(rec.sim_cycles)),
            ("events_per_sec".into(), Value::Float(rec.events_per_sec)),
        ]);
        self.append_line(&doc)?;
        self.next_seq += 1;
        self.benches.push(rec);
        self.write_index()
    }

    /// Ingest every record of a `fem2-bench --json` suite document.
    /// Returns the number of records ingested.
    pub fn ingest_bench_suite(&mut self, doc: &Value) -> Result<usize, String> {
        let schema = str_field(doc, "schema").unwrap_or_default();
        if !schema.starts_with("fem2-bench/") {
            return Err(format!("not a fem2-bench document (schema `{schema}`)"));
        }
        let commit = str_field(doc, "commit").unwrap_or_else(|| "unknown".into());
        let plan_hash = str_field(doc, "plan_hash").unwrap_or_default();
        let params = str_field(doc, "params").unwrap_or_default();
        let Some(Value::Arr(records)) = field(doc, "results") else {
            return Err("bench document has no results array".into());
        };
        let mut n = 0;
        for r in records {
            let Some(name) = str_field(r, "name") else {
                continue;
            };
            self.record_bench(BenchRecord {
                seq: 0, // assigned by record_bench
                name,
                commit: commit.clone(),
                plan_hash: plan_hash.clone(),
                params: params.clone(),
                wall_ns: u64_field(r, "wall_ns_median")
                    .or(u64_field(r, "wall_ns"))
                    .unwrap_or(0),
                sim_cycles: u64_field(r, "sim_cycles").unwrap_or(0),
                events_per_sec: f64_field(r, "events_per_sec").unwrap_or(0.0),
            })?;
            n += 1;
        }
        Ok(n)
    }

    fn append_line(&mut self, doc: &Value) -> Result<(), String> {
        self.writes += 1;
        if let Some(pos) = self.fail_writes.iter().position(|&w| w == self.writes) {
            self.fail_writes.swap_remove(pos);
            return Err(format!(
                "append runs.jsonl: injected write error (append #{})",
                self.writes
            ));
        }
        let mut line = json_compact(doc);
        line.push('\n');
        self.log
            .write_all(line.as_bytes())
            .and_then(|()| self.log.flush())
            .map_err(|e| format!("append runs.jsonl: {e}"))
    }

    /// Rewrite `index.json` from the in-memory state, atomically
    /// (temp file + rename) so readers never see a torn index.
    fn write_index(&self) -> Result<(), String> {
        let runs: Vec<Value> = self
            .runs
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("seq".into(), Value::UInt(r.seq)),
                    ("hash".into(), Value::Str(r.hash.clone())),
                    ("name".into(), Value::Str(r.name.clone())),
                    ("kind".into(), Value::Str(r.kind.clone())),
                    ("status".into(), Value::Str(r.status.name().into())),
                    ("wall_ns".into(), Value::UInt(r.wall_ns)),
                ])
            })
            .collect();
        let benches: Vec<Value> = self
            .benches
            .iter()
            .map(|b| {
                Value::Obj(vec![
                    ("seq".into(), Value::UInt(b.seq)),
                    ("name".into(), Value::Str(b.name.clone())),
                    ("commit".into(), Value::Str(b.commit.clone())),
                    ("events_per_sec".into(), Value::Float(b.events_per_sec)),
                ])
            })
            .collect();
        let index = Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("run_count".into(), Value::UInt(self.runs.len() as u64)),
            ("bench_count".into(), Value::UInt(self.benches.len() as u64)),
            (
                "quarantine_size".into(),
                Value::UInt(self.quarantine_size() as u64),
            ),
            ("runs".into(), Value::Arr(runs)),
            ("benches".into(), Value::Arr(benches)),
        ]);
        let tmp = self.dir.join("index.json.tmp");
        let final_path = self.dir.join("index.json");
        let mut text = json_pretty(&index);
        text.push('\n');
        fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &final_path).map_err(|e| format!("rename index.json: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fem2-serve-registry-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_spec() -> JobSpec {
        JobSpec::parse(r#"{"nx":12,"ny":12,"name":"sample"}"#).unwrap()
    }

    #[test]
    fn records_persist_across_reopen() {
        let dir = temp_dir("reopen");
        let spec = sample_spec();
        let outcome = spec.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.run_count(), 0);
            reg.record_run(&spec, &outcome, 1234).unwrap();
            assert_eq!(reg.run_count(), 1);
        }
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.run_count(), 1);
        let rec = reg.lookup(&spec.content_hash()).expect("cached run");
        assert_eq!(rec.name, "sample");
        assert_eq!(rec.kind, "plate");
        assert_eq!(rec.wall_ns, 1234);
        // The replayed spec re-parses to the same hash.
        let replayed = JobSpec::from_value(&rec.spec).unwrap();
        assert_eq!(replayed.content_hash(), spec.content_hash());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let dir = temp_dir("torn");
        let spec = sample_spec();
        let outcome = spec.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_run(&spec, &outcome, 1).unwrap();
        }
        // Simulate a crash mid-append: a half-written JSON line.
        let log = dir.join("runs.jsonl");
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(b"{\"schema\":\"fem2-registry/1\",\"kind\":\"plate\",\"se")
            .unwrap();
        drop(f);
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.run_count(), 1, "intact record survives the tear");
        assert!(reg.lookup(&spec.content_hash()).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_is_total_and_monotone_across_kinds() {
        let dir = temp_dir("seq");
        let mut reg = Registry::open(&dir).unwrap();
        let spec = sample_spec();
        let outcome = spec.execute();
        reg.record_run(&spec, &outcome, 1).unwrap();
        reg.record_bench(BenchRecord {
            seq: 0,
            name: "b".into(),
            commit: "c".into(),
            plan_hash: "p".into(),
            params: "".into(),
            wall_ns: 10,
            sim_cycles: 20,
            events_per_sec: 1.5,
        })
        .unwrap();
        let spec2 = JobSpec::parse(r#"{"nx":14,"ny":14}"#).unwrap();
        let outcome2 = spec2.execute();
        reg.record_run(&spec2, &outcome2, 2).unwrap();
        assert_eq!(reg.runs()[0].seq, 0);
        assert_eq!(reg.benches()[0].seq, 1);
        assert_eq!(reg.runs()[1].seq, 2);
        // And reopen keeps counting from the max.
        drop(reg);
        let mut reg = Registry::open(&dir).unwrap();
        let spec3 = JobSpec::parse(r#"{"nx":10,"ny":10}"#).unwrap();
        let outcome3 = spec3.execute();
        let rec = reg.record_run(&spec3, &outcome3, 3).unwrap();
        assert_eq!(rec.seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rev3_plate_records_persist_sound_predicted_bounds() {
        let dir = temp_dir("predicted");
        let spec = sample_spec();
        let outcome = spec.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_run(&spec, &outcome, 1).unwrap();
        }
        // The prediction survives the reopen replay.
        let reg = Registry::open(&dir).unwrap();
        let rec = reg.lookup(&spec.content_hash()).unwrap();
        let pred = rec.predicted.as_ref().expect("plate runs carry bounds");
        let bound = u64_field(pred, "sim_cycles").expect("predicted cycles");
        let actual = u64_field(&rec.outcome, "sim_cycles").expect("actual cycles");
        assert!(bound >= actual, "bound {bound} < actual {actual}");
        assert!(u64_field(pred, "des_events").is_some());
        assert!(u64_field(pred, "peak_memory_words").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_rev3_records_load_without_a_prediction() {
        let dir = temp_dir("no-predicted");
        fs::create_dir_all(&dir).unwrap();
        let spec = sample_spec();
        let line = format!(
            "{{\"schema\":\"fem2-registry/2\",\"kind\":\"plate\",\"seq\":0,\
             \"hash\":\"{}\",\"name\":\"old\",\"spec\":{},\"outcome\":{{\"kind\":\"plate\"}},\
             \"wall_ns\":5,\"status\":\"ok\"}}\n",
            spec.content_hash(),
            json_compact(&spec.to_value()),
        );
        fs::write(dir.join("runs.jsonl"), line).unwrap();
        let reg = Registry::open(&dir).unwrap();
        let rec = reg.lookup(&spec.content_hash()).expect("rev2 record loads");
        assert!(rec.predicted.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rev4_records_persist_their_shard_count_and_rev3_load_as_one() {
        let dir = temp_dir("shards");
        let spec = sample_spec();
        let outcome = spec.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_result(&spec, RunStatus::Ok, Some(&outcome), None, None, 7, 4)
                .unwrap();
            assert_eq!(reg.lookup(&spec.content_hash()).unwrap().shards, 4);
        }
        // The shard count survives the reopen replay.
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.lookup(&spec.content_hash()).unwrap().shards, 4);
        drop(reg);
        fs::remove_dir_all(&dir).unwrap();
        // A rev-3 record (no `shards` field) loads unchanged and replays
        // as the sequential engine.
        let dir3 = temp_dir("shards-rev3");
        fs::create_dir_all(&dir3).unwrap();
        let line = format!(
            "{{\"schema\":\"fem2-registry/3\",\"kind\":\"plate\",\"seq\":0,\
             \"hash\":\"{}\",\"name\":\"old\",\"spec\":{},\"outcome\":{{\"kind\":\"plate\"}},\
             \"wall_ns\":5,\"status\":\"ok\"}}\n",
            spec.content_hash(),
            json_compact(&spec.to_value()),
        );
        fs::write(dir3.join("runs.jsonl"), line).unwrap();
        let reg = Registry::open(&dir3).unwrap();
        let rec = reg.lookup(&spec.content_hash()).expect("rev3 record loads");
        assert_eq!(rec.shards, 1);
        assert_eq!(rec.status, RunStatus::Ok);
        fs::remove_dir_all(&dir3).unwrap();
    }

    #[test]
    fn index_json_reflects_the_log() {
        let dir = temp_dir("index");
        let spec = sample_spec();
        let outcome = spec.execute();
        let mut reg = Registry::open(&dir).unwrap();
        reg.record_run(&spec, &outcome, 1).unwrap();
        let text = fs::read_to_string(dir.join("index.json")).unwrap();
        let v = serde_json::parse_value(&text).unwrap();
        assert_eq!(u64_field(&v, "run_count"), Some(1));
        assert_eq!(u64_field(&v, "bench_count"), Some(0));
        assert_eq!(str_field(&v, "schema").as_deref(), Some(SCHEMA));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_records_persist_and_latest_record_wins() {
        let dir = temp_dir("failrec");
        let spec = sample_spec();
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_result(
                &spec,
                RunStatus::Failed,
                None,
                Some("scenario panicked"),
                None,
                7,
                1,
            )
            .unwrap();
        }
        let mut reg = Registry::open(&dir).unwrap();
        let rec = reg.lookup(&spec.content_hash()).expect("failure cached");
        assert_eq!(rec.status, RunStatus::Failed);
        assert_eq!(rec.error.as_deref(), Some("scenario panicked"));
        assert_eq!(rec.outcome, Value::Null);
        assert_eq!(reg.quarantine_size(), 1);
        // A later successful run of the same spec supersedes the failure.
        let outcome = spec.execute();
        reg.record_run(&spec, &outcome, 9).unwrap();
        let rec = reg.lookup(&spec.content_hash()).unwrap();
        assert_eq!(rec.status, RunStatus::Ok);
        assert_eq!(reg.quarantine_size(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn operational_aborts_do_not_quarantine_but_deterministic_ones_do() {
        let dir = temp_dir("causes");
        let spec = sample_spec();
        {
            let mut reg = Registry::open(&dir).unwrap();
            // A wall-deadline abort is a host fact, not a spec fact — and
            // wall_ms is hash-neutral, so quarantining it would poison the
            // unbudgeted spec for everyone.
            reg.record_result(
                &spec,
                RunStatus::Aborted,
                None,
                Some("run aborted (wall_deadline) at 10 sim cycles, 0 DES events"),
                Some("wall_deadline"),
                5,
                1,
            )
            .unwrap();
            assert!(!reg.lookup(&spec.content_hash()).unwrap().quarantines());
            assert_eq!(reg.quarantine_size(), 0);
        }
        // Survives reload the same way.
        let mut reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.quarantine_size(), 0);
        assert!(!reg.lookup(&spec.content_hash()).unwrap().quarantines());
        // A cycle-budget abort is deterministic and does quarantine.
        reg.record_result(
            &spec,
            RunStatus::Aborted,
            None,
            Some("run aborted (cycles_exceeded) at 101 sim cycles, 7 DES events"),
            Some("cycles_exceeded"),
            5,
            4,
        )
        .unwrap();
        assert!(reg.lookup(&spec.content_hash()).unwrap().quarantines());
        assert_eq!(reg.quarantine_size(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_abort_records_recover_their_cause_from_the_error_text() {
        let dir = temp_dir("legacy-cause");
        fs::create_dir_all(&dir).unwrap();
        let spec = sample_spec();
        // A rev-2 record written before `abort_cause` existed: the cause
        // only lives inside the error text.
        let line = format!(
            "{{\"schema\":\"fem2-registry/2\",\"kind\":\"plate\",\"seq\":0,\
             \"hash\":\"{}\",\"name\":\"old\",\"spec\":{},\"outcome\":null,\
             \"wall_ns\":5,\"status\":\"aborted\",\
             \"error\":\"run aborted (wall_deadline) at 9 sim cycles, 0 DES events\"}}\n",
            spec.content_hash(),
            json_compact(&spec.to_value()),
        );
        fs::write(dir.join("runs.jsonl"), line).unwrap();
        let reg = Registry::open(&dir).unwrap();
        let rec = reg.lookup(&spec.content_hash()).expect("record loads");
        assert_eq!(rec.abort_cause.as_deref(), Some("wall_deadline"));
        assert!(!rec.quarantines(), "sniffed wall abort must not quarantine");
        assert_eq!(reg.quarantine_size(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lookup_ok_skips_trailing_aborts() {
        let dir = temp_dir("lookup-ok");
        let spec = sample_spec();
        let outcome = spec.execute();
        let mut reg = Registry::open(&dir).unwrap();
        assert!(reg.lookup_ok(&spec.content_hash()).is_none());
        reg.record_run(&spec, &outcome, 11).unwrap();
        reg.record_result(
            &spec,
            RunStatus::Aborted,
            None,
            Some("run aborted (wall_deadline) at 2 sim cycles, 0 DES events"),
            Some("wall_deadline"),
            3,
            1,
        )
        .unwrap();
        // lookup sees the latest (abort); lookup_ok still finds the run.
        assert_eq!(
            reg.lookup(&spec.content_hash()).unwrap().status,
            RunStatus::Aborted
        );
        let ok = reg.lookup_ok(&spec.content_hash()).expect("ok record kept");
        assert_eq!(ok.status, RunStatus::Ok);
        assert_eq!(ok.wall_ns, 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rev1_records_without_status_replay_as_ok() {
        let dir = temp_dir("rev1");
        fs::create_dir_all(&dir).unwrap();
        let spec = sample_spec();
        let line = format!(
            "{{\"schema\":\"fem2-registry/1\",\"kind\":\"plate\",\"seq\":0,\
             \"hash\":\"{}\",\"name\":\"old\",\"spec\":{},\"outcome\":{{\"kind\":\"plate\"}},\
             \"wall_ns\":5}}\n",
            spec.content_hash(),
            json_compact(&spec.to_value()),
        );
        fs::write(dir.join("runs.jsonl"), line).unwrap();
        let reg = Registry::open(&dir).unwrap();
        let rec = reg.lookup(&spec.content_hash()).expect("rev1 record loads");
        assert_eq!(rec.status, RunStatus::Ok);
        assert!(rec.error.is_none());
        assert_eq!(reg.quarantine_size(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_so_appends_do_not_glue() {
        let dir = temp_dir("glue");
        let spec = sample_spec();
        let outcome = spec.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            reg.record_run(&spec, &outcome, 1).unwrap();
        }
        let log = dir.join("runs.jsonl");
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(b"{\"schema\":\"fem2-registry/2\",\"kind\":\"pla")
            .unwrap();
        drop(f);
        // Reopen repairs the tail, then a fresh append lands on its own
        // line — before the fix it glued onto the partial record and both
        // were lost on the next replay.
        let spec2 = JobSpec::parse(r#"{"nx":14,"ny":14}"#).unwrap();
        let outcome2 = spec2.execute();
        {
            let mut reg = Registry::open(&dir).unwrap();
            assert_eq!(reg.run_count(), 1);
            reg.record_run(&spec2, &outcome2, 2).unwrap();
        }
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.run_count(), 2, "post-tear append survives replay");
        assert!(reg.lookup(&spec2.content_hash()).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_errors_fire_once_and_leave_the_log_clean() {
        let dir = temp_dir("inject");
        let spec = sample_spec();
        let outcome = spec.execute();
        let mut reg = Registry::open(&dir).unwrap();
        reg.inject_write_errors(vec![1]);
        let err = reg.record_run(&spec, &outcome, 1).expect_err("injected");
        assert!(err.contains("injected write error"), "{err}");
        assert_eq!(reg.run_count(), 0, "failed append records nothing");
        // The same append retried succeeds (the injection is consumed).
        reg.record_run(&spec, &outcome, 1).unwrap();
        drop(reg);
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.run_count(), 1, "log holds exactly the real append");
        fs::remove_dir_all(&dir).unwrap();
    }

    proptest::proptest! {
        /// Crash-recovery invariant: truncating the log at *any* byte
        /// offset loses at most the torn record. Every record wholly
        /// before the cut replays; no partial record is ever yielded; the
        /// rebuilt index agrees with the replay; and the repaired log
        /// accepts appends cleanly.
        #[test]
        fn torn_tail_recovery_at_any_offset(cut_back in 0usize..400, runs in 2usize..5) {
            let dir = temp_dir("prop-torn");
            let specs: Vec<JobSpec> = (0..runs)
                .map(|i| {
                    JobSpec::parse(&format!("{{\"nx\":4,\"ny\":4,\"seed\":{i}}}")).unwrap()
                })
                .collect();
            let outcome = JobOutcome { value: Value::Obj(vec![("kind".into(), Value::Str("plate".into()))]) };
            let mut line_ends = Vec::new();
            {
                let mut reg = Registry::open(&dir).unwrap();
                for spec in &specs {
                    reg.record_run(spec, &outcome, 1).unwrap();
                    line_ends.push(fs::metadata(dir.join("runs.jsonl")).unwrap().len());
                }
            }
            let log = dir.join("runs.jsonl");
            let full = fs::metadata(&log).unwrap().len();
            let cut = full.saturating_sub(cut_back as u64);
            OpenOptions::new().write(true).open(&log).unwrap().set_len(cut).unwrap();
            // Records wholly before the cut must all survive.
            let complete = line_ends.iter().filter(|&&e| e <= cut).count();
            let reg = Registry::open(&dir).unwrap();
            proptest::prop_assert_eq!(reg.run_count(), complete, "cut at {} of {}", cut, full);
            for spec in specs.iter().take(complete) {
                proptest::prop_assert!(reg.lookup(&spec.content_hash()).is_some());
            }
            // index.json agrees with the replay.
            let idx = serde_json::parse_value(&fs::read_to_string(dir.join("index.json")).unwrap()).unwrap();
            proptest::prop_assert_eq!(u64_field(&idx, "run_count"), Some(complete as u64));
            // And the repaired log accepts a fresh append that survives.
            drop(reg);
            let extra = JobSpec::parse(r#"{"nx":4,"ny":4,"seed":999}"#).unwrap();
            {
                let mut reg = Registry::open(&dir).unwrap();
                reg.record_run(&extra, &outcome, 1).unwrap();
            }
            let reg = Registry::open(&dir).unwrap();
            proptest::prop_assert_eq!(reg.run_count(), complete + 1);
            proptest::prop_assert!(reg.lookup(&extra.content_hash()).is_some());
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn bench_suite_ingest_pulls_registry_fields() {
        let dir = temp_dir("ingest");
        let mut reg = Registry::open(&dir).unwrap();
        let doc = serde_json::parse_value(
            r#"{"schema":"fem2-bench/3","commit":"abc1234","plan_hash":"deadbeef00000000",
                "params":"route_cache=on des_queue=Calendar repeat=3 threads=4",
                "results":[
                  {"name":"plate-16","wall_ns_median":100,"sim_cycles":200,"events_per_sec":5.0},
                  {"name":"plate-32","wall_ns_median":400,"sim_cycles":800,"events_per_sec":6.0}
                ]}"#,
        )
        .unwrap();
        let n = reg.ingest_bench_suite(&doc).unwrap();
        assert_eq!(n, 2);
        assert_eq!(reg.bench_count(), 2);
        let b = &reg.benches()[0];
        assert_eq!(b.commit, "abc1234");
        assert_eq!(b.plan_hash, "deadbeef00000000");
        assert!(b.params.contains("des_queue=Calendar"));
        assert_eq!(b.wall_ns, 100);
        // Non-bench documents refuse cleanly.
        let bad = serde_json::parse_value(r#"{"schema":"nope/1"}"#).unwrap();
        assert!(reg.ingest_bench_suite(&bad).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
