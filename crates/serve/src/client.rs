//! A tiny blocking HTTP client for the fem2-serve API, used by the CLI
//! subcommands (`submit`, `status`, `result`, `list`) and by tests. Same
//! zero-dependency constraint as the server: raw `TcpStream`, HTTP/1.1,
//! `Connection: close`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use serde::json::Value;

use crate::http::IO_TIMEOUT;

/// Issue one request and return `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
        .map_err(|e| format!("socket timeouts: {e}"))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed response: {raw}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Poll `/jobs/<id>` until the job completes, then return the outcome
/// document from `/jobs/<id>/result`. Errors on job failure or timeout.
pub fn wait_done(addr: SocketAddr, id: u64) -> Result<Value, String> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(format!("GET /jobs/{id} -> {status}: {body}"));
        }
        let v = serde_json::parse_value(&body).map_err(|e| format!("bad status body: {e}"))?;
        match v.get_field("status").map_err(|e| e.to_string())? {
            Value::Str(s) if s == "done" => break,
            Value::Str(s) if s == "failed" => return Err(format!("job {id} failed: {body}")),
            Value::Str(s) if s == "aborted" => return Err(format!("job {id} aborted: {body}")),
            _ => {}
        }
        if Instant::now() > deadline {
            return Err(format!("job {id} did not complete in time"));
        }
        thread::sleep(Duration::from_millis(20));
    }
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}/result"), None)?;
    if status != 200 {
        return Err(format!("GET /jobs/{id}/result -> {status}: {body}"));
    }
    let v = serde_json::parse_value(&body).map_err(|e| format!("bad result body: {e}"))?;
    v.get_field("outcome").cloned().map_err(|e| e.to_string())
}

/// Poll `/jobs/<id>` until the job settles (done, failed, or aborted) and
/// return the terminal status name. Unlike [`wait_done`], a failed or
/// aborted job is a normal answer here, not an error — the supervision
/// tests assert on exactly how jobs end.
pub fn wait_settled(addr: SocketAddr, id: u64) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(format!("GET /jobs/{id} -> {status}: {body}"));
        }
        let v = serde_json::parse_value(&body).map_err(|e| format!("bad status body: {e}"))?;
        if let Value::Str(s) = v.get_field("status").map_err(|e| e.to_string())? {
            if matches!(s.as_str(), "done" | "failed" | "aborted") {
                return Ok(s.clone());
            }
        }
        if Instant::now() > deadline {
            return Err(format!("job {id} did not settle in time"));
        }
        thread::sleep(Duration::from_millis(20));
    }
}
