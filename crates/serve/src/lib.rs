//! fem2-serve: a multi-tenant simulation service over the FEM-2 stack.
//!
//! The library behind the `fem2-serve` binary. Submissions are JSON job
//! specs ([`job::JobSpec`]); every one is:
//!
//! 1. **gated** through the fem2-verify static analyzer — scenarios that
//!    would deadlock or overflow cluster memory are rejected with a 422
//!    carrying the structured diagnostics, before any cycle is simulated;
//! 2. **content-hashed** over the fully resolved (scenario, machine,
//!    seed) document via [`fem2_core::hash`] — identical submissions,
//!    however spelled, hit the result cache instead of re-simulating;
//! 3. **scheduled** across a bounded `fem2-par` worker pool — submissions
//!    past the queue cap are shed with a 503;
//! 4. **persisted** to an append-only, crash-safe JSONL registry
//!    ([`registry`]) that survives restarts and feeds the static report
//!    site ([`report`]).
//!
//! The HTTP layer ([`http`]) is a deliberate minimum over
//! `std::net::TcpListener`: the build is offline, so there is no server
//! framework to lean on — and none needed for four endpoints.
//!
//! Job execution is **supervised** ([`server`]): panics are isolated with
//! `catch_unwind` and recorded as failures, run budgets
//! ([`fem2_machine::RunBudget`], wired through the job spec's `budget`
//! object) turn runaway simulations into structured aborts, specs whose
//! latest record failed are quarantined, and a deterministic chaos
//! harness ([`chaos`]) injects worker panics, stalls, and registry write
//! errors to prove all of it under test.

#![forbid(unsafe_code)]

pub(crate) mod util {
    //! The vendored `serde_json` signatures return `Result` even where
    //! serializing an already-built `Value` tree cannot fail; these
    //! helpers absorb that so call sites stay infallible.
    use serde::json::Value;

    pub(crate) fn json_compact(v: &Value) -> String {
        serde_json::to_string(v).unwrap_or_else(|e| format!("{{\"error\":\"serialize: {e}\"}}"))
    }

    pub(crate) fn json_pretty(v: &Value) -> String {
        serde_json::to_string_pretty(v)
            .unwrap_or_else(|e| format!("{{\"error\":\"serialize: {e}\"}}"))
    }
}

pub mod chaos;
pub mod client;
pub mod http;
pub mod job;
pub mod registry;
pub mod report;
pub mod server;

pub use chaos::{ChaosPlan, ChaosState};
pub use job::{JobOutcome, JobSpec, RunStatus};
pub use registry::{BenchRecord, Registry, RunRecord};
pub use server::{start, ServeOptions, ServerHandle};
