//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for the
//! job API: request-line + headers + `Content-Length` bodies in,
//! `Connection: close` JSON responses out. No external dependencies; the
//! build environment is offline and the API surface is four endpoints.
//!
//! Limits are deliberate: request lines and headers are capped, bodies are
//! capped at [`MAX_BODY`], sockets carry per-read timeouts, and the whole
//! request must arrive within a total deadline ([`REQUEST_DEADLINE`] by
//! default), so one slow or abusive client cannot pin a connection thread
//! forever. The per-read timeout alone is not enough: a slowloris client
//! dripping one byte per timeout window would keep every individual read
//! "making progress" indefinitely — the total deadline closes that hole.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest accepted request body, bytes. Scenario specs are small; a
/// 10k-op script is well under this.
pub const MAX_BODY: usize = 1 << 20;
/// Largest accepted header section, bytes.
const MAX_HEADER_BYTES: usize = 16 << 10;
/// Per-socket read/write timeout (one idle gap, not the whole request).
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Default total per-request deadline: request line + headers + body must
/// all arrive within this window, however steadily the bytes drip.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// A parsed request: method, path, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// Request target, e.g. `/jobs/3/result` (query strings are kept).
    pub path: String,
    /// The body (empty when there was no `Content-Length`).
    pub body: String,
}

/// A response to serialize: status code plus JSON (or text) body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body text.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (errors before a body can be formed).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Errors that end a connection with a 4xx before dispatch.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line or headers.
    Malformed(String),
    /// Body longer than [`MAX_BODY`].
    TooLarge,
    /// The client idled past a read timeout or dripped bytes past the
    /// total request deadline (answered with 408).
    Timeout,
    /// Socket error / early close.
    Io(io::Error),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Whether an IO error is a socket read timeout.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read and parse one request from `stream` under the default
/// [`REQUEST_DEADLINE`]. Returns `Ok(None)` on a clean immediate close
/// (no bytes).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, ParseError> {
    read_request_deadline(stream, REQUEST_DEADLINE)
}

/// Read and parse one request, requiring the whole request to arrive
/// within `deadline`. Each individual read also keeps the idle
/// [`IO_TIMEOUT`]; the socket read timeout is re-armed with the smaller of
/// the two before every read that reaches the socket (already-buffered
/// bytes are drained without re-arming), so neither a silent client nor a
/// byte-dripping one can hold the thread past the deadline.
pub fn read_request_deadline(
    stream: &mut TcpStream,
    deadline: Duration,
) -> Result<Option<Request>, ParseError> {
    let started = Instant::now();
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // The reader owns a clone of the socket handle; timeouts set through
    // either handle apply to the shared underlying socket.
    let mut reader = BufReader::new(stream.try_clone().map_err(ParseError::Io)?);
    let arm = |sock: &TcpStream| -> Result<(), ParseError> {
        let left = deadline
            .checked_sub(started.elapsed())
            .filter(|d| !d.is_zero())
            .ok_or(ParseError::Timeout)?;
        sock.set_read_timeout(Some(left.min(IO_TIMEOUT)))?;
        Ok(())
    };
    // `BufReader::read_line` loops over as many socket reads as it takes
    // to find `\n`, with the timeout armed only once — a byte-dripping
    // client could stretch a single line far past the deadline. Reading
    // byte-wise out of the buffer re-arms before every underlying read.
    let read_line = |reader: &mut BufReader<TcpStream>, buf: &mut String| {
        let mut bytes = Vec::new();
        loop {
            // Re-arming costs an `Instant::elapsed` plus a setsockopt
            // syscall; bytes already buffered cost neither — only arm
            // before reads that will actually hit the socket.
            if reader.buffer().is_empty() {
                arm(reader.get_ref())?;
            }
            let mut byte = [0u8; 1];
            let n = reader.read(&mut byte).map_err(|e| {
                if is_timeout(&e) {
                    ParseError::Timeout
                } else {
                    ParseError::Io(e)
                }
            })?;
            if n == 0 {
                break;
            }
            bytes.push(byte[0]);
            if byte[0] == b'\n' {
                break;
            }
            if bytes.len() > MAX_HEADER_BYTES {
                return Err(ParseError::Malformed("header line too long".into()));
            }
        }
        let n = bytes.len();
        buf.push_str(
            &String::from_utf8(bytes)
                .map_err(|_| ParseError::Malformed("header is not UTF-8".into()))?,
        );
        Ok(n)
    };
    let mut line = String::new();
    if read_line(&mut reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1") => (m.to_uppercase(), p.to_string()),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line: {}",
                line.trim_end()
            )))
        }
    };
    // Headers: we only need Content-Length.
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let mut header = String::new();
        if read_line(&mut reader, &mut header)? == 0 {
            return Err(ParseError::Malformed("eof in headers".into()));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::Malformed("header section too large".into()));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge);
    }
    // Body, in chunks so the deadline is re-checked as bytes drip in.
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if reader.buffer().is_empty() {
            arm(reader.get_ref())?;
        }
        let n = reader.read(&mut body[filled..]).map_err(|e| {
            if is_timeout(&e) {
                ParseError::Timeout
            } else {
                ParseError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(ParseError::Malformed("eof in body".into()));
        }
        filled += n;
    }
    let body =
        String::from_utf8(body).map_err(|_| ParseError::Malformed("body is not UTF-8".into()))?;
    Ok(Some(Request { method, path, body }))
}

/// Serialize `resp` onto `stream` and flush. The connection is one-shot
/// (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Push raw bytes at a socket pair and parse them server-side.
    fn parse_raw(raw: &'static [u8]) -> Result<Option<Request>, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw).unwrap();
            // Keep the socket open until the server has read everything.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"nx\":16}")
                .unwrap()
                .expect("one request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"nx\":16}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /jobs/3 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/3");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        assert!(matches!(
            parse_raw(b"nonsense\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_content_length_rejected() {
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n"),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn immediate_close_is_none() {
        assert!(parse_raw(b"").unwrap().is_none());
    }

    #[test]
    fn response_roundtrip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap().unwrap();
            assert_eq!(req.path, "/healthz");
            write_response(&mut stream, &Response::json(200, "{\"ok\":true}")).unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_codes() {
        for code in [200, 201, 400, 404, 405, 408, 409, 413, 422, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
    }

    #[test]
    fn slow_drip_client_hits_the_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Drip a byte at a time, each gap well inside any per-read
            // timeout, never finishing the request line. Only a *total*
            // deadline catches this.
            for b in b"GET /jobs HTTP/1.1\r".iter().cycle().take(200) {
                if s.write_all(&[*b]).is_err() {
                    break;
                }
                thread::sleep(Duration::from_millis(20));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        let out = read_request_deadline(&mut stream, Duration::from_millis(300));
        assert!(
            matches!(out, Err(ParseError::Timeout)),
            "expected timeout, got {out:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "deadline must bound the wait, waited {:?}",
            started.elapsed()
        );
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn silent_client_times_out_instead_of_hanging() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            // Connect and say nothing for longer than the deadline.
            thread::sleep(Duration::from_millis(600));
            drop(s);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request_deadline(&mut stream, Duration::from_millis(150));
        assert!(
            matches!(out, Err(ParseError::Timeout)),
            "expected timeout, got {out:?}"
        );
        drop(stream);
        client.join().unwrap();
    }
}
