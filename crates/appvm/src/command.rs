//! The interactive command language.
//!
//! One command per line, keywords case-insensitive, arguments
//! whitespace-separated. The grammar deliberately reads like a 1983
//! engineering console:
//!
//! ```text
//! DEFINE MODEL <name>
//! GENERATE GRID <nx> <ny> [QUAD|TRI]
//! GENERATE BAR <n> LENGTH <l>
//! MATERIAL STEEL|ALUMINUM|UNIT
//! FIX EDGE LEFT|RIGHT
//! FIX NODE <i>
//! LOADSET <name>
//! LOAD NODE <i> <fx> <fy>
//! SOLVE [WITH SKYLINE|CG|PCG|JACOBI|SOR] [LOADSET <name>]
//! STRESSES
//! DISPLAY MODEL|DISPLACEMENTS|STRESSES
//! STORE
//! RETRIEVE <name>
//! LIST
//! DELETE <name>
//! HELP
//! QUIT
//! ```

use fem2_fem::SolverChoice;
use std::fmt;

/// Grid element flavour for GENERATE GRID.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GridKind {
    /// Quad4 cells.
    Quad,
    /// CST triangle pairs.
    Tri,
}

/// Which mesh edge a FIX EDGE applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Edge {
    /// x = 0.
    Left,
    /// x = max.
    Right,
}

/// What DISPLAY should render.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DisplayWhat {
    /// Model summary.
    Model,
    /// Nodal displacement table.
    Displacements,
    /// Element stress table.
    Stresses,
}

/// What a TRACE command should do.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceAction {
    /// Start recording command events.
    On,
    /// Stop recording (the buffer is kept for a later EXPORT).
    Off,
    /// Write the recorded Chrome trace JSON to a file.
    Export(String),
}

/// A parsed command.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// Start a fresh model in the workspace.
    DefineModel(String),
    /// Generate a structured grid.
    GenerateGrid {
        /// Cells in x.
        nx: usize,
        /// Cells in y.
        ny: usize,
        /// Element flavour.
        kind: GridKind,
    },
    /// Generate a bar chain.
    GenerateBar {
        /// Number of bars.
        n: usize,
        /// Total length.
        length: f64,
    },
    /// Select a material preset.
    Material(String),
    /// Fix all nodes on an edge.
    FixEdge(Edge),
    /// Fix one node.
    FixNode(usize),
    /// Create (and select) a load set.
    LoadSet(String),
    /// Add a nodal load to the current load set.
    LoadNode {
        /// Node index.
        node: usize,
        /// Force in x.
        fx: f64,
        /// Force in y.
        fy: f64,
    },
    /// Solve the current model.
    Solve {
        /// Solver choice (default skyline).
        solver: SolverChoice,
        /// Load set name (default: the current one).
        load_set: Option<String>,
    },
    /// Solve by substructuring into N vertical strips.
    SolveSubstructured {
        /// Number of substructures.
        parts: usize,
        /// Load set name (default: the current one).
        load_set: Option<String>,
    },
    /// Recompute stresses from the last solution.
    Stresses,
    /// Renumber the mesh by RCM (bandwidth reduction).
    Renumber,
    /// Fundamental stiffness eigenvalue / vibration mode.
    Frequency,
    /// Render results or the model.
    Display(DisplayWhat),
    /// Store the workspace model in the database.
    Store,
    /// Retrieve a model from the database.
    Retrieve(String),
    /// List database contents.
    List,
    /// Delete a model from the database.
    Delete(String),
    /// Statically verify the distributed solve of the current model
    /// (protocol, deadlock, storage passes) without running it.
    Verify {
        /// Task-crew size (default: one task per worker PE).
        tasks: Option<u32>,
    },
    /// Statically bound the cost of the distributed solve of the current
    /// model (cycles, events, messages, memory) without running it.
    Cost {
        /// Task-crew size (default: one task per worker PE).
        tasks: Option<u32>,
    },
    /// Control event tracing of console commands.
    Trace(TraceAction),
    /// Show the command summary.
    Help,
    /// End the session.
    Quit,
}

/// A parse failure with a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ParseError> {
    tok.parse()
        .map_err(|_| ParseError(format!("expected {what}, got {tok:?}")))
}

/// Parse one command line. Empty lines and `#` comments yield `None`.
pub fn parse(line: &str) -> Result<Option<Command>, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let kw: Vec<String> = toks.iter().map(|t| t.to_uppercase()).collect();
    let cmd = match kw[0].as_str() {
        "DEFINE" => {
            if kw.len() == 3 && kw[1] == "MODEL" {
                Command::DefineModel(toks[2].to_string())
            } else {
                return err("usage: DEFINE MODEL <name>");
            }
        }
        "GENERATE" => match kw.get(1).map(|s| s.as_str()) {
            Some("GRID") => {
                if toks.len() < 4 {
                    return err("usage: GENERATE GRID <nx> <ny> [QUAD|TRI]");
                }
                let nx = parse_num(toks[2], "nx")?;
                let ny = parse_num(toks[3], "ny")?;
                let kind = match kw.get(4).map(|s| s.as_str()) {
                    None | Some("QUAD") => GridKind::Quad,
                    Some("TRI") => GridKind::Tri,
                    Some(other) => return err(format!("unknown grid kind {other}")),
                };
                Command::GenerateGrid { nx, ny, kind }
            }
            Some("BAR") => {
                if kw.len() == 5 && kw[3] == "LENGTH" {
                    Command::GenerateBar {
                        n: parse_num(toks[2], "bar count")?,
                        length: parse_num(toks[4], "length")?,
                    }
                } else {
                    return err("usage: GENERATE BAR <n> LENGTH <l>");
                }
            }
            _ => return err("usage: GENERATE GRID ... | GENERATE BAR ..."),
        },
        "MATERIAL" => {
            if kw.len() == 2 {
                Command::Material(kw[1].clone())
            } else {
                return err("usage: MATERIAL STEEL|ALUMINUM|UNIT");
            }
        }
        "FIX" => match kw.get(1).map(|s| s.as_str()) {
            Some("EDGE") => match kw.get(2).map(|s| s.as_str()) {
                Some("LEFT") => Command::FixEdge(Edge::Left),
                Some("RIGHT") => Command::FixEdge(Edge::Right),
                _ => return err("usage: FIX EDGE LEFT|RIGHT"),
            },
            Some("NODE") => {
                if toks.len() == 3 {
                    Command::FixNode(parse_num(toks[2], "node index")?)
                } else {
                    return err("usage: FIX NODE <i>");
                }
            }
            _ => return err("usage: FIX EDGE ... | FIX NODE ..."),
        },
        "LOADSET" => {
            if toks.len() == 2 {
                Command::LoadSet(toks[1].to_string())
            } else {
                return err("usage: LOADSET <name>");
            }
        }
        "LOAD" => {
            if kw.len() == 5 && kw[1] == "NODE" {
                Command::LoadNode {
                    node: parse_num(toks[2], "node index")?,
                    fx: parse_num(toks[3], "fx")?,
                    fy: parse_num(toks[4], "fy")?,
                }
            } else {
                return err("usage: LOAD NODE <i> <fx> <fy>");
            }
        }
        "SOLVE" if kw.get(1).map(|s| s.as_str()) == Some("SUBSTRUCTURED") => {
            if toks.len() < 3 {
                return err("usage: SOLVE SUBSTRUCTURED <parts> [LOADSET <name>]");
            }
            let parts = parse_num(toks[2], "part count")?;
            let load_set = match kw.get(3).map(|s| s.as_str()) {
                Some("LOADSET") => Some(
                    toks.get(4)
                        .ok_or_else(|| ParseError("LOADSET needs a name".into()))?
                        .to_string(),
                ),
                Some(other) => return err(format!("unexpected token {other}")),
                None => None,
            };
            Command::SolveSubstructured { parts, load_set }
        }
        "SOLVE" => {
            let mut solver = SolverChoice::Skyline;
            let mut load_set = None;
            let mut i = 1;
            while i < kw.len() {
                match kw[i].as_str() {
                    "WITH" => {
                        let name = kw
                            .get(i + 1)
                            .ok_or_else(|| ParseError("WITH needs a solver name".into()))?;
                        solver = match name.as_str() {
                            "SKYLINE" => SolverChoice::Skyline,
                            "CG" => SolverChoice::Cg { tol: 1e-8 },
                            "PCG" => SolverChoice::PreconditionedCg { tol: 1e-8 },
                            "JACOBI" => SolverChoice::Jacobi { tol: 1e-8 },
                            "SOR" => SolverChoice::Sor {
                                omega: 1.6,
                                tol: 1e-8,
                            },
                            "EBE" => SolverChoice::ElementByElement { tol: 1e-8 },
                            other => return err(format!("unknown solver {other}")),
                        };
                        i += 2;
                    }
                    "LOADSET" => {
                        load_set = Some(
                            toks.get(i + 1)
                                .ok_or_else(|| ParseError("LOADSET needs a name".into()))?
                                .to_string(),
                        );
                        i += 2;
                    }
                    other => return err(format!("unexpected token {other}")),
                }
            }
            Command::Solve { solver, load_set }
        }
        "STRESSES" => Command::Stresses,
        "RENUMBER" => Command::Renumber,
        "FREQUENCY" => Command::Frequency,
        "DISPLAY" => match kw.get(1).map(|s| s.as_str()) {
            Some("MODEL") => Command::Display(DisplayWhat::Model),
            Some("DISPLACEMENTS") => Command::Display(DisplayWhat::Displacements),
            Some("STRESSES") => Command::Display(DisplayWhat::Stresses),
            _ => return err("usage: DISPLAY MODEL|DISPLACEMENTS|STRESSES"),
        },
        "STORE" => Command::Store,
        "RETRIEVE" => {
            if toks.len() == 2 {
                Command::Retrieve(toks[1].to_string())
            } else {
                return err("usage: RETRIEVE <name>");
            }
        }
        "LIST" => Command::List,
        "DELETE" => {
            if toks.len() == 2 {
                Command::Delete(toks[1].to_string())
            } else {
                return err("usage: DELETE <name>");
            }
        }
        "VERIFY" => match kw.get(1).map(|s| s.as_str()) {
            None => Command::Verify { tasks: None },
            Some("TASKS") if toks.len() == 3 => Command::Verify {
                tasks: Some(parse_num(toks[2], "task count")?),
            },
            _ => return err("usage: VERIFY [TASKS <n>]"),
        },
        "COST" => match kw.get(1).map(|s| s.as_str()) {
            None => Command::Cost { tasks: None },
            Some("TASKS") if toks.len() == 3 => Command::Cost {
                tasks: Some(parse_num(toks[2], "task count")?),
            },
            _ => return err("usage: COST [TASKS <n>]"),
        },
        "TRACE" => match kw.get(1).map(|s| s.as_str()) {
            Some("ON") => Command::Trace(TraceAction::On),
            Some("OFF") => Command::Trace(TraceAction::Off),
            Some("EXPORT") => {
                if toks.len() == 3 {
                    Command::Trace(TraceAction::Export(toks[2].to_string()))
                } else {
                    return err("usage: TRACE EXPORT <path>");
                }
            }
            _ => return err("usage: TRACE ON|OFF|EXPORT <path>"),
        },
        "HELP" => Command::Help,
        "QUIT" | "EXIT" => Command::Quit,
        other => return err(format!("unknown command {other}")),
    };
    Ok(Some(cmd))
}

/// The HELP text.
pub const HELP_TEXT: &str = "\
DEFINE MODEL <name>                 start a new model
GENERATE GRID <nx> <ny> [QUAD|TRI]  generate a plate grid
GENERATE BAR <n> LENGTH <l>         generate a bar chain
MATERIAL STEEL|ALUMINUM|UNIT        select material
FIX EDGE LEFT|RIGHT                 clamp an edge
FIX NODE <i>                        pin a node
LOADSET <name>                      create/select a load set
LOAD NODE <i> <fx> <fy>             add a nodal force
SOLVE [WITH <solver>] [LOADSET <n>] solve (SKYLINE|CG|PCG|JACOBI|SOR|EBE)
SOLVE SUBSTRUCTURED <parts>         solve by parallel static condensation
STRESSES                            recompute element stresses
RENUMBER                            RCM bandwidth reduction
FREQUENCY                           fundamental eigenvalue / mode
DISPLAY MODEL|DISPLACEMENTS|STRESSES
STORE | RETRIEVE <name> | LIST | DELETE <name>
VERIFY [TASKS <n>]                  static checks of the distributed solve
COST [TASKS <n>]                    static cost bounds of the distributed solve
TRACE ON|OFF|EXPORT <path>          event tracing of commands
HELP | QUIT";

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> Command {
        parse(line).unwrap().unwrap()
    }

    #[test]
    fn blank_and_comment_lines() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
        assert_eq!(parse("# a comment").unwrap(), None);
    }

    #[test]
    fn define_and_generate() {
        assert_eq!(
            one("DEFINE MODEL wing"),
            Command::DefineModel("wing".into())
        );
        assert_eq!(
            one("generate grid 8 4 tri"),
            Command::GenerateGrid {
                nx: 8,
                ny: 4,
                kind: GridKind::Tri
            }
        );
        assert_eq!(
            one("GENERATE GRID 8 4"),
            Command::GenerateGrid {
                nx: 8,
                ny: 4,
                kind: GridKind::Quad
            }
        );
        assert_eq!(
            one("GENERATE BAR 10 LENGTH 2.5"),
            Command::GenerateBar { n: 10, length: 2.5 }
        );
    }

    #[test]
    fn case_insensitive_keywords_preserve_names() {
        assert_eq!(
            one("define model Wing"),
            Command::DefineModel("Wing".into())
        );
    }

    #[test]
    fn fixes_and_loads() {
        assert_eq!(one("FIX EDGE LEFT"), Command::FixEdge(Edge::Left));
        assert_eq!(one("fix edge right"), Command::FixEdge(Edge::Right));
        assert_eq!(one("FIX NODE 7"), Command::FixNode(7));
        assert_eq!(one("LOADSET gust"), Command::LoadSet("gust".into()));
        assert_eq!(
            one("LOAD NODE 3 1.5 -2e3"),
            Command::LoadNode {
                node: 3,
                fx: 1.5,
                fy: -2e3
            }
        );
    }

    #[test]
    fn solve_variants() {
        assert_eq!(
            one("SOLVE"),
            Command::Solve {
                solver: SolverChoice::Skyline,
                load_set: None
            }
        );
        assert_eq!(
            one("SOLVE WITH CG"),
            Command::Solve {
                solver: SolverChoice::Cg { tol: 1e-8 },
                load_set: None
            }
        );
        assert_eq!(
            one("SOLVE WITH SOR LOADSET gust"),
            Command::Solve {
                solver: SolverChoice::Sor {
                    omega: 1.6,
                    tol: 1e-8
                },
                load_set: Some("gust".into())
            }
        );
    }

    #[test]
    fn db_and_misc() {
        assert_eq!(one("STORE"), Command::Store);
        assert_eq!(one("RETRIEVE wing"), Command::Retrieve("wing".into()));
        assert_eq!(one("LIST"), Command::List);
        assert_eq!(one("DELETE old"), Command::Delete("old".into()));
        assert_eq!(one("HELP"), Command::Help);
        assert_eq!(one("QUIT"), Command::Quit);
        assert_eq!(one("exit"), Command::Quit);
        assert_eq!(
            one("DISPLAY STRESSES"),
            Command::Display(DisplayWhat::Stresses)
        );
    }

    #[test]
    fn renumber_frequency_and_substructured() {
        assert_eq!(one("RENUMBER"), Command::Renumber);
        assert_eq!(one("frequency"), Command::Frequency);
        assert_eq!(
            one("SOLVE WITH EBE"),
            Command::Solve {
                solver: SolverChoice::ElementByElement { tol: 1e-8 },
                load_set: None
            }
        );
        assert_eq!(
            one("SOLVE SUBSTRUCTURED 4"),
            Command::SolveSubstructured {
                parts: 4,
                load_set: None
            }
        );
        assert_eq!(
            one("SOLVE SUBSTRUCTURED 2 LOADSET gust"),
            Command::SolveSubstructured {
                parts: 2,
                load_set: Some("gust".into())
            }
        );
        assert!(parse("SOLVE SUBSTRUCTURED").is_err());
        assert!(parse("SOLVE SUBSTRUCTURED x").is_err());
    }

    #[test]
    fn verify_commands_parse() {
        assert_eq!(one("VERIFY"), Command::Verify { tasks: None });
        assert_eq!(one("verify tasks 8"), Command::Verify { tasks: Some(8) });
        assert_eq!(one("COST"), Command::Cost { tasks: None });
        assert_eq!(one("cost tasks 8"), Command::Cost { tasks: Some(8) });
        assert!(parse("COST TASKS").is_err());
        assert!(parse("VERIFY TASKS").is_err());
        assert!(parse("VERIFY NOW").is_err());
    }

    #[test]
    fn trace_commands_parse() {
        assert_eq!(one("TRACE ON"), Command::Trace(TraceAction::On));
        assert_eq!(one("trace off"), Command::Trace(TraceAction::Off));
        assert_eq!(
            one("TRACE EXPORT /tmp/Out.json"),
            Command::Trace(TraceAction::Export("/tmp/Out.json".into())),
            "export path keeps its case"
        );
        assert!(parse("TRACE").is_err());
        assert!(parse("TRACE EXPORT").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        for (line, expect) in [
            ("FROBNICATE", "unknown command"),
            ("DEFINE MODEL", "usage: DEFINE MODEL"),
            ("GENERATE GRID 2", "usage: GENERATE GRID"),
            ("GENERATE GRID a b", "expected nx"),
            ("SOLVE WITH GAUSS", "unknown solver"),
            ("FIX EDGE TOP", "usage: FIX EDGE"),
            ("LOAD NODE 1 2", "usage: LOAD NODE"),
        ] {
            let e = parse(line).unwrap_err();
            assert!(
                e.0.contains(expect),
                "{line:?}: {} should contain {expect:?}",
                e.0
            );
        }
    }

    #[test]
    fn help_text_covers_every_command_family() {
        for kw in [
            "DEFINE", "GENERATE", "MATERIAL", "FIX", "LOADSET", "LOAD", "SOLVE", "STRESSES",
            "DISPLAY", "STORE", "RETRIEVE", "LIST", "DELETE", "VERIFY", "COST", "TRACE", "QUIT",
        ] {
            assert!(HELP_TEXT.contains(kw), "HELP missing {kw}");
        }
    }
}
