//! Result display: textual tables for the interactive console.

use fem2_fem::{Analysis, StructuralModel};
use std::fmt::Write as _;

/// One-paragraph model summary.
pub fn model_summary(m: &StructuralModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model {}", m.name);
    let _ = writeln!(
        out,
        "  nodes: {}  elements: {}  dofs: {}",
        m.mesh.node_count(),
        m.mesh.element_count(),
        m.dof_count()
    );
    let _ = writeln!(
        out,
        "  material: E = {:.3e}, nu = {}, t = {}",
        m.material.e, m.material.nu, m.material.thickness
    );
    let _ = writeln!(
        out,
        "  supports: {} fixed dofs",
        m.constraints.fixed_count()
    );
    let _ = writeln!(out, "  load sets: {}", m.load_sets.len());
    for ls in &m.load_sets {
        let _ = writeln!(out, "    {} ({} loads)", ls.name, ls.len());
    }
    out
}

/// Nodal displacement table (largest `max_rows` magnitudes first).
pub fn displacement_table(m: &StructuralModel, a: &Analysis, max_rows: usize) -> String {
    let mut rows: Vec<(usize, f64, f64, f64)> = (0..m.mesh.node_count())
        .map(|n| {
            let (u, v) = a.node_displacement(n);
            (n, u, v, (u * u + v * v).sqrt())
        })
        .collect();
    rows.sort_by(|x, y| y.3.total_cmp(&x.3));
    let mut out = String::new();
    let _ = writeln!(out, "{:>6} {:>14} {:>14} {:>14}", "node", "u", "v", "|d|");
    for (n, u, v, d) in rows.into_iter().take(max_rows) {
        let _ = writeln!(out, "{n:>6} {u:>14.6e} {v:>14.6e} {d:>14.6e}");
    }
    let _ = writeln!(out, "max displacement: {:.6e}", a.max_displacement());
    out
}

/// Element stress table (largest `max_rows` von Mises first).
pub fn stress_table(a: &Analysis, max_rows: usize) -> String {
    let mut rows: Vec<(usize, f64, f64, f64, f64)> = a
        .stresses
        .iter()
        .enumerate()
        .map(|(e, s)| (e, s.sx, s.sy, s.txy, s.von_mises()))
        .collect();
    rows.sort_by(|x, y| y.4.total_cmp(&x.4));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>13} {:>13} {:>13} {:>13}",
        "elem", "sx", "sy", "txy", "von Mises"
    );
    for (e, sx, sy, txy, vm) in rows.into_iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{e:>6} {sx:>13.4e} {sy:>13.4e} {txy:>13.4e} {vm:>13.4e}"
        );
    }
    let _ = writeln!(out, "max von Mises: {:.6e}", a.max_von_mises());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_fem::{cantilever_plate, SolverChoice};

    #[test]
    fn summary_mentions_counts() {
        let m = cantilever_plate(4, 2, -1e4);
        let s = model_summary(&m);
        assert!(s.contains("nodes: 15"));
        assert!(s.contains("elements: 8"));
        assert!(s.contains("tip (1 loads)"));
    }

    #[test]
    fn tables_render_and_rank() {
        let m = cantilever_plate(6, 2, -1e4);
        let a = m.analyze(0, SolverChoice::Skyline).unwrap();
        let dt = displacement_table(&m, &a, 5);
        assert_eq!(dt.lines().count(), 7, "header + 5 rows + max line");
        assert!(dt.contains("max displacement"));
        let st = stress_table(&a, 3);
        assert!(st.contains("von Mises"));
        assert_eq!(st.lines().count(), 5);
    }

    #[test]
    fn tables_clamp_to_available_rows() {
        let m = cantilever_plate(2, 1, -1e3);
        let a = m.analyze(0, SolverChoice::Skyline).unwrap();
        let dt = displacement_table(&m, &a, 1000);
        assert_eq!(dt.lines().count(), 1 + m.mesh.node_count() + 1);
    }
}
