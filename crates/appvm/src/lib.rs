//! # fem2-appvm — the application user's virtual machine
//!
//! The top layer of the FEM-2 stack: the interactive workstation of a
//! structural engineer. From the paper:
//!
//! > "The FEM-2 user would typically be a structural engineer using the
//! > system as an interactive workstation that allows one to store the
//! > description of a structural model, to invoke applications packages to
//! > analyze the model, and to display the results."
//!
//! Its components map to modules:
//!
//! * *sequence control* — "direct interpretation of user commands":
//!   [`command`] parses the command language, [`session::Session`] executes
//!   one command at a time;
//! * *data control* — [`workspace::Workspace`] (user-local data) and
//!   [`database::Database`] (long-term, shared storage);
//! * *data objects & operations* — structure models, grids, load sets,
//!   displacements, stresses, with define/generate/solve/display/store/
//!   retrieve operations, all delegating to `fem2-fem`;
//! * *storage management* — models and results are created dynamically and
//!   move between database and workspace on STORE/RETRIEVE.
//!
//! ```
//! use fem2_appvm::{Database, Session};
//!
//! let db = Database::in_memory();
//! let mut s = Session::new(db);
//! s.exec("DEFINE MODEL wing").unwrap();
//! s.exec("GENERATE GRID 4 2 QUAD").unwrap();
//! s.exec("MATERIAL STEEL").unwrap();
//! s.exec("FIX EDGE LEFT").unwrap();
//! s.exec("LOADSET tip").unwrap();
//! s.exec("LOAD NODE 14 0 -1e4").unwrap();
//! let out = s.exec("SOLVE WITH SKYLINE").unwrap();
//! assert!(out.contains("converged"));
//! ```

pub mod command;
pub mod database;
pub mod display;
pub mod session;
pub mod workspace;

pub use command::{Command, ParseError};
pub use database::Database;
pub use session::{Session, SessionError};
pub use workspace::Workspace;
