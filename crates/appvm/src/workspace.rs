//! The user workspace: session-local data.
//!
//! "Workspace (user local data)" — the model under construction, the
//! selected load set, and the most recent analysis. Contrast with the
//! shared [`crate::database::Database`].

use fem2_fem::{Analysis, StructuralModel};

/// One user's local state.
#[derive(Default)]
pub struct Workspace {
    /// The model being built/analyzed, if any.
    pub model: Option<StructuralModel>,
    /// Index of the selected load set in the model.
    pub current_load_set: Option<usize>,
    /// The most recent analysis result.
    pub last_analysis: Option<Analysis>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a fresh model, clearing load-set selection and results.
    pub fn set_model(&mut self, m: StructuralModel) {
        self.current_load_set = if m.load_sets.is_empty() {
            None
        } else {
            Some(0)
        };
        self.model = Some(m);
        self.last_analysis = None;
    }

    /// The current model, or a uniform "no model" error.
    pub fn model(&self) -> Result<&StructuralModel, String> {
        self.model
            .as_ref()
            .ok_or_else(|| "no model in workspace (DEFINE MODEL first)".to_string())
    }

    /// Mutable access to the current model.
    pub fn model_mut(&mut self) -> Result<&mut StructuralModel, String> {
        self.model
            .as_mut()
            .ok_or_else(|| "no model in workspace (DEFINE MODEL first)".to_string())
    }

    /// The last analysis, or a uniform "not solved" error.
    pub fn analysis(&self) -> Result<&Analysis, String> {
        self.last_analysis
            .as_ref()
            .ok_or_else(|| "no results in workspace (SOLVE first)".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_fem::cantilever_plate;

    #[test]
    fn empty_workspace_errors_uniformly() {
        let ws = Workspace::new();
        assert!(ws.model().is_err());
        assert!(ws.analysis().is_err());
    }

    #[test]
    fn set_model_selects_first_load_set() {
        let mut ws = Workspace::new();
        ws.set_model(cantilever_plate(2, 2, -1.0));
        assert_eq!(ws.current_load_set, Some(0));
        assert!(ws.model().is_ok());
    }

    #[test]
    fn set_model_without_loads_has_no_selection() {
        let mut ws = Workspace::new();
        ws.set_model(StructuralModel::new("bare"));
        assert_eq!(ws.current_load_set, None);
    }

    #[test]
    fn replacing_model_clears_results() {
        let mut ws = Workspace::new();
        let m = cantilever_plate(4, 2, -1e4);
        let a = m.analyze(0, fem2_fem::SolverChoice::Skyline).unwrap();
        ws.set_model(m);
        ws.last_analysis = Some(a);
        assert!(ws.analysis().is_ok());
        ws.set_model(cantilever_plate(2, 2, -1.0));
        assert!(ws.analysis().is_err(), "stale results dropped");
    }
}
