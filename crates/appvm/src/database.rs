//! The model database: long-term, shared storage.
//!
//! "Data base (long-term storage; shared data)" — a [`Database`] handle is a
//! cheaply-cloneable reference to a shared store, so several
//! [`crate::session::Session`]s (the multi-user requirement) can store and
//! retrieve concurrently. Optionally backed by a directory of JSON files
//! (one per model) for persistence across runs.

use fem2_fem::StructuralModel;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

struct Inner {
    models: BTreeMap<String, StructuralModel>,
    dir: Option<PathBuf>,
}

/// A shared model database handle.
#[derive(Clone)]
pub struct Database {
    inner: Arc<Mutex<Inner>>,
}

impl Database {
    /// A purely in-memory database.
    pub fn in_memory() -> Self {
        Database {
            inner: Arc::new(Mutex::new(Inner {
                models: BTreeMap::new(),
                dir: None,
            })),
        }
    }

    /// A database persisted to `dir` (one `<name>.json` per model). Existing
    /// models in the directory are loaded eagerly.
    pub fn on_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut models = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                let text = std::fs::read_to_string(&path)?;
                match serde_json::from_str::<StructuralModel>(&text) {
                    Ok(m) => {
                        models.insert(m.name.clone(), m);
                    }
                    Err(e) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("corrupt model file {}: {e}", path.display()),
                        ))
                    }
                }
            }
        }
        Ok(Database {
            inner: Arc::new(Mutex::new(Inner {
                models,
                dir: Some(dir),
            })),
        })
    }

    /// Store (insert or replace) a model under its own name.
    pub fn store(&self, model: &StructuralModel) -> Result<(), String> {
        let mut g = self.inner.lock();
        if let Some(dir) = g.dir.clone() {
            let path = dir.join(format!("{}.json", model.name));
            let text = serde_json::to_string_pretty(model).map_err(|e| e.to_string())?;
            std::fs::write(&path, text).map_err(|e| e.to_string())?;
        }
        g.models.insert(model.name.clone(), model.clone());
        Ok(())
    }

    /// Retrieve a model by name.
    pub fn retrieve(&self, name: &str) -> Option<StructuralModel> {
        self.inner.lock().models.get(name).cloned()
    }

    /// Delete a model; true if it existed.
    pub fn delete(&self, name: &str) -> bool {
        let mut g = self.inner.lock();
        let existed = g.models.remove(name).is_some();
        if existed {
            if let Some(dir) = &g.dir {
                let _ = std::fs::remove_file(dir.join(format!("{name}.json")));
            }
        }
        existed
    }

    /// Stored model names, sorted.
    pub fn list(&self) -> Vec<String> {
        self.inner.lock().models.keys().cloned().collect()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.inner.lock().models.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_fem::cantilever_plate;

    #[test]
    fn store_retrieve_roundtrip() {
        let db = Database::in_memory();
        assert!(db.is_empty());
        let m = cantilever_plate(3, 2, -1.0);
        db.store(&m).unwrap();
        assert_eq!(db.len(), 1);
        let back = db.retrieve(&m.name).unwrap();
        assert_eq!(back, m);
        assert!(db.retrieve("missing").is_none());
    }

    #[test]
    fn list_and_delete() {
        let db = Database::in_memory();
        let mut a = cantilever_plate(2, 2, -1.0);
        a.name = "alpha".into();
        let mut b = cantilever_plate(2, 2, -1.0);
        b.name = "beta".into();
        db.store(&a).unwrap();
        db.store(&b).unwrap();
        assert_eq!(db.list(), vec!["alpha".to_string(), "beta".to_string()]);
        assert!(db.delete("alpha"));
        assert!(!db.delete("alpha"));
        assert_eq!(db.list(), vec!["beta".to_string()]);
    }

    #[test]
    fn handles_share_state() {
        let db = Database::in_memory();
        let db2 = db.clone();
        let m = cantilever_plate(2, 2, -1.0);
        db.store(&m).unwrap();
        assert!(db2.retrieve(&m.name).is_some(), "clone sees the store");
    }

    #[test]
    fn disk_persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fem2-dbtest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::on_disk(&dir).unwrap();
            let m = cantilever_plate(3, 2, -5.0);
            db.store(&m).unwrap();
        }
        {
            let db = Database::on_disk(&dir).unwrap();
            assert_eq!(db.len(), 1);
            let m = db.retrieve("cantilever_3x2").unwrap();
            assert_eq!(m.mesh.element_count(), 6);
            assert!(db.delete("cantilever_3x2"));
        }
        {
            let db = Database::on_disk(&dir).unwrap();
            assert!(db.is_empty(), "delete removed the file");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_replaces() {
        let db = Database::in_memory();
        let mut m = cantilever_plate(2, 2, -1.0);
        m.name = "x".into();
        db.store(&m).unwrap();
        let mut m2 = cantilever_plate(4, 2, -1.0);
        m2.name = "x".into();
        db.store(&m2).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.retrieve("x").unwrap().mesh.element_count(), 8);
    }
}
