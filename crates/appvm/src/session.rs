//! Interactive sessions: direct interpretation of user commands.
//!
//! A [`Session`] owns one [`Workspace`] and shares a [`Database`] with any
//! number of other sessions (the multi-user requirement). `exec` interprets
//! one command line and returns its console output; scripts are just
//! sequences of lines.

use crate::command::{self, Command, DisplayWhat, Edge, GridKind, TraceAction};
use crate::database::Database;
use crate::display;
use crate::workspace::Workspace;
use fem2_fem::{LoadSet, Material, Mesh, StructuralModel};
use fem2_trace::{chrome, EventKind, SharedRecorder, TraceEvent, TraceHandle, NO_CLUSTER, NO_PE};
use std::fmt;

/// Errors surfaced to the console user.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SessionError {
    /// The line did not parse.
    Parse(String),
    /// The command parsed but could not be executed.
    Exec(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(m) => write!(f, "parse error: {m}"),
            SessionError::Exec(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Events retained by the console trace ring.
const TRACE_RING_CAPACITY: usize = 1 << 16;

/// One user's interactive session.
pub struct Session {
    /// Session-local data.
    pub workspace: Workspace,
    db: Database,
    finished: bool,
    /// Console tracing: a live handle while TRACE ON, plus the recorder
    /// (kept after TRACE OFF so EXPORT still works).
    trace: Option<(TraceHandle, SharedRecorder)>,
    tracing: bool,
    cmd_seq: u32,
}

impl Session {
    /// A session over a (possibly shared) database.
    pub fn new(db: Database) -> Self {
        Session {
            workspace: Workspace::new(),
            db,
            finished: false,
            trace: None,
            tracing: false,
            cmd_seq: 0,
        }
    }

    /// True once the user has QUIT.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The shared database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Interpret one command line, returning its output text. Blank lines
    /// and comments return an empty string.
    pub fn exec(&mut self, line: &str) -> Result<String, SessionError> {
        let cmd = command::parse(line).map_err(|e| SessionError::Parse(e.0))?;
        match cmd {
            None => Ok(String::new()),
            Some(c) => self.execute(c).map_err(SessionError::Exec),
        }
    }

    /// Run a multi-line script, stopping at the first error; returns the
    /// concatenated output.
    pub fn run_script(&mut self, script: &str) -> Result<String, SessionError> {
        let mut out = String::new();
        for line in script.lines() {
            let piece = self.exec(line)?;
            if !piece.is_empty() {
                out.push_str(&piece);
                if !piece.ends_with('\n') {
                    out.push('\n');
                }
            }
            if self.finished {
                break;
            }
        }
        Ok(out)
    }

    fn execute(&mut self, cmd: Command) -> Result<String, String> {
        if self.tracing && !matches!(cmd, Command::Trace(_)) {
            if let Some((h, _)) = &self.trace {
                self.cmd_seq += 1;
                let seq = self.cmd_seq;
                h.emit(|| {
                    TraceEvent::span(
                        seq as u64,
                        1,
                        NO_CLUSTER,
                        NO_PE,
                        EventKind::AppCommand { seq },
                    )
                });
            }
        }
        match cmd {
            Command::DefineModel(name) => {
                self.workspace.set_model(StructuralModel::new(&name));
                Ok(format!("model {name} defined"))
            }
            Command::GenerateGrid { nx, ny, kind } => {
                let m = self.workspace.model_mut()?;
                m.mesh = match kind {
                    GridKind::Quad => Mesh::grid_quad(nx, ny, nx as f64, ny as f64),
                    GridKind::Tri => Mesh::grid_tri(nx, ny, nx as f64, ny as f64),
                };
                Ok(format!(
                    "grid generated: {} nodes, {} elements",
                    m.mesh.node_count(),
                    m.mesh.element_count()
                ))
            }
            Command::GenerateBar { n, length } => {
                let m = self.workspace.model_mut()?;
                m.mesh = Mesh::bar_chain(n, length);
                Ok(format!("bar chain generated: {} bars", n))
            }
            Command::Material(name) => {
                let m = self.workspace.model_mut()?;
                m.material = match name.as_str() {
                    "STEEL" => Material::steel(),
                    "ALUMINUM" => Material::aluminum(),
                    "UNIT" => Material::unit(),
                    other => return Err(format!("unknown material {other}")),
                };
                Ok(format!("material set to {}", name.to_lowercase()))
            }
            Command::FixEdge(edge) => {
                let m = self.workspace.model_mut()?;
                let nodes = match edge {
                    Edge::Left => m.mesh.left_edge_nodes(1e-9),
                    Edge::Right => m.mesh.right_edge_nodes(1e-9),
                };
                if nodes.is_empty() {
                    return Err("no nodes on that edge (generate a grid first)".into());
                }
                let count = nodes.len();
                for n in nodes {
                    m.constraints.fix_node(n);
                }
                Ok(format!("{count} nodes fixed"))
            }
            Command::FixNode(n) => {
                let m = self.workspace.model_mut()?;
                if n >= m.mesh.node_count() {
                    return Err(format!("node {n} does not exist"));
                }
                m.constraints.fix_node(n);
                Ok(format!("node {n} fixed"))
            }
            Command::LoadSet(name) => {
                let m = self.workspace.model_mut()?;
                let idx = m.add_load_set(LoadSet::new(&name));
                self.workspace.current_load_set = Some(idx);
                Ok(format!("load set {name} selected"))
            }
            Command::LoadNode { node, fx, fy } => {
                let idx = self
                    .workspace
                    .current_load_set
                    .ok_or("no load set selected (LOADSET first)")?;
                let m = self.workspace.model_mut()?;
                if node >= m.mesh.node_count() {
                    return Err(format!("node {node} does not exist"));
                }
                m.load_sets[idx].add_node(node, fx, fy);
                Ok(format!("load added to node {node}"))
            }
            Command::Solve { solver, load_set } => {
                let idx = match load_set {
                    Some(name) => {
                        let m = self.workspace.model()?;
                        m.load_sets
                            .iter()
                            .position(|ls| ls.name == name)
                            .ok_or_else(|| format!("no load set named {name}"))?
                    }
                    None => self
                        .workspace
                        .current_load_set
                        .ok_or("no load set selected (LOADSET first)")?,
                };
                let m = self.workspace.model()?;
                let a = m.analyze(idx, solver)?;
                let msg = format!(
                    "converged in {} iteration(s), residual {:.3e}, max displacement {:.6e}",
                    a.log.iterations,
                    a.log.residual,
                    a.max_displacement()
                );
                self.workspace.last_analysis = Some(a);
                Ok(msg)
            }
            Command::SolveSubstructured { parts, load_set } => {
                if parts == 0 {
                    return Err("need at least one substructure".into());
                }
                let idx = match load_set {
                    Some(name) => {
                        let m = self.workspace.model()?;
                        m.load_sets
                            .iter()
                            .position(|ls| ls.name == name)
                            .ok_or_else(|| format!("no load set named {name}"))?
                    }
                    None => self
                        .workspace
                        .current_load_set
                        .ok_or("no load set selected (LOADSET first)")?,
                };
                let m = self.workspace.model()?;
                let a = m.analyze_substructured(idx, parts, 4)?;
                let msg = format!(
                    "substructured solve ({parts} parts) residual {:.3e}, max displacement {:.6e}",
                    a.log.residual,
                    a.max_displacement()
                );
                self.workspace.last_analysis = Some(a);
                Ok(msg)
            }
            Command::Renumber => {
                let m = self.workspace.model_mut()?;
                if m.mesh.node_count() == 0 {
                    return Err("no mesh to renumber (GENERATE first)".into());
                }
                let (before, after) = m.renumber_rcm();
                self.workspace.last_analysis = None; // numbering changed
                Ok(format!(
                    "RCM renumbering: half-bandwidth {before} -> {after}"
                ))
            }
            Command::Frequency => {
                let m = self.workspace.model()?;
                let (lambda, mode) = m.fundamental_mode()?;
                let freq = lambda.sqrt() / (2.0 * std::f64::consts::PI);
                let peak = mode
                    .chunks(2)
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let ma = a[0] * a[0] + a[1] * a[1];
                        let mb = b[0] * b[0] + b[1] * b[1];
                        ma.total_cmp(&mb)
                    })
                    .map(|(n, _)| n)
                    .unwrap_or(0);
                Ok(format!(
                    "fundamental eigenvalue {lambda:.6e} (frequency {freq:.4e} with unit mass); peak mode amplitude at node {peak}"
                ))
            }
            Command::Stresses => {
                let a = self.workspace.analysis()?;
                Ok(format!(
                    "stresses computed for {} elements, max von Mises {:.6e}",
                    a.stresses.len(),
                    a.max_von_mises()
                ))
            }
            Command::Display(what) => {
                let m = self.workspace.model()?;
                match what {
                    DisplayWhat::Model => Ok(display::model_summary(m)),
                    DisplayWhat::Displacements => {
                        let a = self.workspace.analysis()?;
                        Ok(display::displacement_table(m, a, 10))
                    }
                    DisplayWhat::Stresses => {
                        let a = self.workspace.analysis()?;
                        Ok(display::stress_table(a, 10))
                    }
                }
            }
            Command::Store => {
                let m = self.workspace.model()?;
                self.db.store(m)?;
                Ok(format!("model {} stored", m.name))
            }
            Command::Retrieve(name) => {
                let m = self
                    .db
                    .retrieve(&name)
                    .ok_or_else(|| format!("no stored model named {name}"))?;
                self.workspace.set_model(m);
                Ok(format!("model {name} retrieved"))
            }
            Command::List => {
                let names = self.db.list();
                if names.is_empty() {
                    Ok("database is empty".into())
                } else {
                    Ok(names.join("\n"))
                }
            }
            Command::Delete(name) => {
                if self.db.delete(&name) {
                    Ok(format!("model {name} deleted"))
                } else {
                    Err(format!("no stored model named {name}"))
                }
            }
            Command::Verify { tasks } => {
                let m = self.workspace.model()?;
                let dofs = m.dof_count() as u64;
                if dofs == 0 {
                    return Err("no unknowns to verify (GENERATE first)".into());
                }
                let machine = fem2_machine::MachineConfig::fem2_default();
                let tasks = tasks.unwrap_or_else(|| machine.total_workers());
                let script = fem2_verify::lower::solve_script(
                    format!("{} ({dofs} unknowns, {tasks} tasks)", m.name),
                    &machine,
                    tasks,
                    fem2_verify::lower::SolveShape {
                        unknowns: dofs,
                        // CG keeps five vectors live: b, x, r, p, Ap.
                        vectors: 5,
                        // One boundary row of unknowns crosses each halo.
                        halo_words: dofs.isqrt().max(1),
                    },
                );
                let report = fem2_verify::check_script(&script, &machine);
                Ok(report.render())
            }
            Command::Cost { tasks } => {
                let m = self.workspace.model()?;
                let dofs = m.dof_count() as u64;
                if dofs == 0 {
                    return Err("no unknowns to bound (GENERATE first)".into());
                }
                let machine = fem2_machine::MachineConfig::fem2_default();
                let tasks = tasks.unwrap_or_else(|| machine.total_workers());
                let script = fem2_verify::lower::solve_script(
                    format!("{} ({dofs} unknowns, {tasks} tasks)", m.name),
                    &machine,
                    tasks,
                    fem2_verify::lower::SolveShape {
                        unknowns: dofs,
                        // CG keeps five vectors live: b, x, r, p, Ap.
                        vectors: 5,
                        // One boundary row of unknowns crosses each halo.
                        halo_words: dofs.isqrt().max(1),
                    },
                );
                let report = fem2_verify::check_cost(
                    &script,
                    &machine,
                    &fem2_verify::CostParams::single_sweep(),
                );
                Ok(report.render())
            }
            Command::Trace(action) => match action {
                TraceAction::On => {
                    if self.trace.is_none() {
                        self.trace = Some(TraceHandle::ring(TRACE_RING_CAPACITY));
                    }
                    self.tracing = true;
                    Ok("tracing on".into())
                }
                TraceAction::Off => {
                    self.tracing = false;
                    Ok("tracing off".into())
                }
                TraceAction::Export(path) => {
                    let Some((_, rec)) = &self.trace else {
                        return Err("nothing recorded (TRACE ON first)".into());
                    };
                    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
                    let json = chrome::trace_json(&rec);
                    std::fs::write(&path, &json)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    Ok(format!("trace written to {path} ({} events)", rec.len()))
                }
            },
            Command::Help => Ok(command::HELP_TEXT.to_string()),
            Command::Quit => {
                self.finished = true;
                Ok("goodbye".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(Database::in_memory())
    }

    const CANTILEVER: &str = "\
DEFINE MODEL plate
GENERATE GRID 6 2 QUAD
MATERIAL STEEL
FIX EDGE LEFT
LOADSET tip
LOAD NODE 20 0 -1e4
SOLVE WITH SKYLINE
STRESSES";

    #[test]
    fn full_pipeline_runs() {
        let mut s = session();
        let out = s.run_script(CANTILEVER).unwrap();
        assert!(out.contains("model plate defined"));
        assert!(out.contains("grid generated: 21 nodes, 12 elements"));
        assert!(out.contains("3 nodes fixed"));
        assert!(out.contains("converged"));
        assert!(out.contains("max von Mises"));
    }

    #[test]
    fn command_order_is_enforced() {
        let mut s = session();
        assert!(s.exec("GENERATE GRID 2 2").is_err(), "no model yet");
        assert!(s.exec("SOLVE").is_err());
        s.exec("DEFINE MODEL m").unwrap();
        assert!(s.exec("LOAD NODE 0 1 1").is_err(), "no load set yet");
        assert!(s.exec("DISPLAY DISPLACEMENTS").is_err(), "nothing solved");
    }

    #[test]
    fn bad_node_indices_rejected() {
        let mut s = session();
        s.exec("DEFINE MODEL m").unwrap();
        s.exec("GENERATE GRID 2 2").unwrap();
        assert!(s.exec("FIX NODE 99").is_err());
        s.exec("LOADSET l").unwrap();
        assert!(s.exec("LOAD NODE 99 0 1").is_err());
    }

    #[test]
    fn store_retrieve_between_sessions() {
        let db = Database::in_memory();
        let mut s1 = Session::new(db.clone());
        s1.run_script(
            "DEFINE MODEL shared\nGENERATE GRID 3 2\nMATERIAL ALUMINUM\nFIX EDGE LEFT\nSTORE",
        )
        .unwrap();
        // A second user retrieves and analyzes the shared model.
        let mut s2 = Session::new(db);
        s2.exec("RETRIEVE shared").unwrap();
        s2.exec("LOADSET pull").unwrap();
        s2.exec("LOAD NODE 11 1e3 0").unwrap();
        let out = s2.exec("SOLVE WITH CG").unwrap();
        assert!(out.contains("converged"));
    }

    #[test]
    fn list_and_delete_via_commands() {
        let mut s = session();
        s.run_script("DEFINE MODEL a\nGENERATE GRID 2 2\nFIX EDGE LEFT\nSTORE")
            .unwrap();
        assert_eq!(s.exec("LIST").unwrap(), "a");
        assert!(s.exec("DELETE a").unwrap().contains("deleted"));
        assert_eq!(s.exec("LIST").unwrap(), "database is empty");
        assert!(s.exec("DELETE a").is_err());
    }

    #[test]
    fn solve_with_named_load_set() {
        let mut s = session();
        s.run_script("DEFINE MODEL m\nGENERATE GRID 4 2\nMATERIAL STEEL\nFIX EDGE LEFT")
            .unwrap();
        s.exec("LOADSET dead").unwrap();
        s.exec("LOAD NODE 14 0 -1").unwrap();
        s.exec("LOADSET gust").unwrap();
        s.exec("LOAD NODE 14 500 0").unwrap();
        let out = s.exec("SOLVE LOADSET dead").unwrap();
        assert!(out.contains("converged"));
        assert!(s.exec("SOLVE LOADSET nope").is_err());
    }

    #[test]
    fn display_outputs() {
        let mut s = session();
        s.run_script(CANTILEVER).unwrap();
        let model = s.exec("DISPLAY MODEL").unwrap();
        assert!(model.contains("model plate"));
        let disp = s.exec("DISPLAY DISPLACEMENTS").unwrap();
        assert!(disp.contains("max displacement"));
        let stress = s.exec("DISPLAY STRESSES").unwrap();
        assert!(stress.contains("von Mises"));
    }

    #[test]
    fn substructured_solve_matches_direct_through_console() {
        let mut s = session();
        s.run_script(CANTILEVER).unwrap();
        let direct = s.workspace.analysis().unwrap().max_displacement();
        let out = s.exec("SOLVE SUBSTRUCTURED 3").unwrap();
        assert!(out.contains("substructured"));
        let sub = s.workspace.analysis().unwrap().max_displacement();
        assert!((direct - sub).abs() < 1e-8 * direct);
    }

    #[test]
    fn renumber_then_solve_still_works() {
        let mut s = session();
        s.run_script("DEFINE MODEL m\nGENERATE GRID 6 2 QUAD\nMATERIAL STEEL\nFIX EDGE LEFT\nLOADSET l\nLOAD NODE 20 0 -1e4")
            .unwrap();
        let out = s.exec("RENUMBER").unwrap();
        assert!(out.contains("half-bandwidth"));
        // Results invalidated by renumbering; solving again works.
        assert!(s.exec("DISPLAY DISPLACEMENTS").is_err());
        let out = s.exec("SOLVE WITH EBE").unwrap();
        assert!(out.contains("converged"));
    }

    #[test]
    fn frequency_command_reports_eigenvalue() {
        let mut s = session();
        s.run_script("DEFINE MODEL m\nGENERATE GRID 4 2 QUAD\nMATERIAL STEEL\nFIX EDGE LEFT")
            .unwrap();
        let out = s.exec("FREQUENCY").unwrap();
        assert!(out.contains("fundamental eigenvalue"));
        assert!(out.contains("peak mode amplitude"));
    }

    #[test]
    fn quit_finishes_session_and_script_stops() {
        let mut s = session();
        let out = s
            .run_script("DEFINE MODEL m\nQUIT\nDEFINE MODEL never")
            .unwrap();
        assert!(s.finished());
        assert!(out.contains("goodbye"));
        assert!(!out.contains("never"));
    }

    #[test]
    fn parse_errors_are_session_errors() {
        let mut s = session();
        match s.exec("FROBNICATE") {
            Err(SessionError::Parse(m)) => assert!(m.contains("unknown command")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_records_and_exports_commands() {
        let mut s = session();
        assert!(
            s.exec("TRACE EXPORT /tmp/x.json").is_err(),
            "nothing recorded yet"
        );
        s.exec("TRACE ON").unwrap();
        s.exec("DEFINE MODEL traced").unwrap();
        s.exec("GENERATE GRID 2 2").unwrap();
        s.exec("TRACE OFF").unwrap();
        s.exec("DEFINE MODEL untraced").unwrap();
        let path = std::env::temp_dir().join("fem2_appvm_trace_test.json");
        let out = s.exec(&format!("TRACE EXPORT {}", path.display())).unwrap();
        assert!(out.contains("2 events"), "only the traced commands: {out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("command"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn help_is_available() {
        let mut s = session();
        assert!(s.exec("HELP").unwrap().contains("DEFINE MODEL"));
    }
}
