//! fem2-console: the FEM-2 application user's workstation, interactive.
//!
//! ```console
//! $ cargo run -p fem2-appvm --bin fem2-console
//! fem2> DEFINE MODEL wing
//! model wing defined
//! fem2> HELP
//! ...
//! fem2> QUIT
//! ```
//!
//! Pass `--db <dir>` to persist the model database to a directory; pipe a
//! script on stdin for batch use. Errors never end the session (a console
//! survives typos).

use fem2_appvm::{Database, Session, SessionError};
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut db_dir: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--db" => db_dir = args.next(),
            "--help" | "-h" => {
                println!("usage: fem2-console [--db <dir>]");
                println!("Interactive FEM-2 console; type HELP at the prompt.");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let db = match db_dir {
        Some(dir) => match Database::on_disk(&dir) {
            Ok(db) => {
                eprintln!("(database: {dir}, {} models)", db.len());
                db
            }
            Err(e) => {
                eprintln!("cannot open database {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Database::in_memory(),
    };

    let mut session = Session::new(db);
    let stdin = std::io::stdin();
    let interactive = is_tty();
    if interactive {
        println!("FEM-2 interactive console — type HELP for commands, QUIT to exit.");
    }
    loop {
        if interactive {
            print!("fem2> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        if !interactive {
            // Echo script lines so transcripts read like a session.
            let trimmed = line.trim_end();
            if !trimmed.is_empty() {
                println!("fem2> {trimmed}");
            }
        }
        match session.exec(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(SessionError::Parse(m)) => println!("?parse: {m}"),
            Err(SessionError::Exec(m)) => println!("?error: {m}"),
        }
        if session.finished() {
            break;
        }
    }
}

fn is_tty() -> bool {
    // Portable-enough TTY check without extra dependencies.
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn isatty(fd: i32) -> i32;
        }
        isatty(0) == 1
    }
    #[cfg(not(unix))]
    {
        false
    }
}
