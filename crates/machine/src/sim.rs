//! A generic discrete-event engine with deterministic tie-breaking.
//!
//! [`EventQueue`] is a time-ordered priority queue: events scheduled for the
//! same cycle pop in scheduling order (FIFO), so simulations are
//! deterministic regardless of payload type. [`Simulator`] adds the standard
//! run loop: pop, advance the clock, hand the event to a handler which may
//! schedule more events.

use crate::Cycles;
use fem2_trace::{EventKind, TraceEvent, TraceHandle, NO_CLUSTER, NO_PE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: time, a monotone sequence number for FIFO ties, payload.
struct Entry<E> {
    at: Cycles,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycles,
    trace: TraceHandle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace sink: every schedule/pop emits a DES event carrying
    /// the queue depth (observation only).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current simulation time: the time of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past clamps
    /// to `now` (events cannot rewind the clock).
    pub fn schedule(&mut self, at: Cycles, ev: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
        // Read the depth inside the closure so the untraced hot path pays
        // nothing for the observation.
        let heap = &self.heap;
        self.trace.emit(|| {
            TraceEvent::instant(
                at,
                NO_CLUSTER,
                NO_PE,
                EventKind::DesSchedule {
                    queue_depth: heap.len() as u32,
                },
            )
        });
    }

    /// Schedule `ev` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, ev: E) {
        self.schedule(self.now + delay, ev);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.at;
            let heap = &self.heap;
            self.trace.emit(|| {
                TraceEvent::instant(
                    e.at,
                    NO_CLUSTER,
                    NO_PE,
                    EventKind::DesDispatch {
                        queue_depth: heap.len() as u32,
                    },
                )
            });
            (e.at, e.ev)
        })
    }

    /// Peek at the earliest pending event time without popping.
    pub fn next_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

/// An event-loop wrapper over [`EventQueue`].
pub struct Simulator<E> {
    queue: EventQueue<E>,
    events_processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// A simulator with an empty queue at time zero.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Total events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event at absolute time `at`.
    pub fn schedule(&mut self, at: Cycles, ev: E) {
        self.queue.schedule(at, ev);
    }

    /// Schedule an event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, ev: E) {
        self.queue.schedule_in(delay, ev);
    }

    /// Run until the queue is empty. The handler receives the simulator (to
    /// schedule follow-on events), the event time, and the payload.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Self, Cycles, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            self.events_processed += 1;
            handler(self, at, ev);
        }
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Returns true if the queue drained before the deadline.
    pub fn run_until<F>(&mut self, deadline: Cycles, mut handler: F) -> bool
    where
        F: FnMut(&mut Self, Cycles, E),
    {
        loop {
            match self.queue.next_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    let (at, ev) = self.queue.pop().expect("next_time returned Some");
                    self.events_processed += 1;
                    handler(self, at, ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.schedule(50, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 10);
        q.pop();
        assert_eq!(q.now(), 50);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "late");
        q.pop();
        q.schedule(5, "early"); // in the past; clamps to 100
        assert_eq!(q.pop(), Some((100, "early")));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_in(7, "second");
        assert_eq!(q.pop(), Some((17, "second")));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn simulator_run_drains_and_cascades() {
        let mut sim = Simulator::new();
        sim.schedule(0, 3u32); // event payload = remaining cascade depth
        let mut log = Vec::new();
        sim.run(|sim, at, depth| {
            log.push((at, depth));
            if depth > 0 {
                sim.schedule_in(10, depth - 1);
            }
        });
        assert_eq!(log, vec![(0, 3), (10, 2), (20, 1), (30, 0)]);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.now(), 30);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new();
        for t in [10u64, 20, 30, 40] {
            sim.schedule(t, t);
        }
        let mut seen = Vec::new();
        let drained = sim.run_until(25, |_, _, ev| seen.push(ev));
        assert!(!drained);
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(sim.now(), 20);
        // Finish the rest.
        let drained = sim.run_until(u64::MAX, |_, _, ev| seen.push(ev));
        assert!(drained);
        assert_eq!(seen, vec![10, 20, 30, 40]);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = Simulator::new();
            for i in 0..50u64 {
                sim.schedule((i * 7) % 13, i);
            }
            let mut order = Vec::new();
            sim.run(|sim, _, ev| {
                order.push(ev);
                if ev < 1000 && ev % 5 == 0 {
                    sim.schedule_in(3, ev + 1000);
                }
            });
            order
        };
        assert_eq!(run(), run());
    }
}
