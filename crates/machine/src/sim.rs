//! A generic discrete-event engine with deterministic tie-breaking.
//!
//! [`EventQueue`] is a time-ordered priority queue: events scheduled for the
//! same cycle pop in scheduling order (FIFO), so simulations are
//! deterministic regardless of payload type. [`Simulator`] adds the standard
//! run loop: pop, advance the clock, hand the event to a handler which may
//! schedule more events.
//!
//! Two interchangeable backends implement the queue (selected by
//! [`DesQueue`], see `MachineConfig::des_queue`):
//!
//! * **Calendar** (default) — a two-level bucketed calendar queue. Level 0
//!   is a ring of "day" buckets, each covering a power-of-two span of
//!   cycles; events beyond the level-0 window wait in an overflow ladder (a
//!   binary heap) and migrate into the ring as the cursor approaches their
//!   day. The day width is auto-tuned from observed inter-event gaps, so a
//!   bucket holds O(1) events and schedule/pop are O(1) amortized instead
//!   of the heap's O(log n).
//! * **Heap** — the reference `BinaryHeap` path, kept for determinism tests
//!   and the A4 ablation.
//!
//! Both backends pop in exactly `(time, sequence)` order. Every entry
//! carries a monotone sequence number stamped at schedule time, and the
//! calendar's bucket scan and overflow ladder compare full `(at, seq)`
//! keys, so same-cycle FIFO ties and cross-bucket ordering reproduce the
//! heap bit for bit — the property the oracle tests check.

use crate::budget::{BudgetMeter, RunAborted};
use crate::config::DesQueue;
use crate::Cycles;
use fem2_trace::{EventKind, TraceEvent, TraceHandle, NO_CLUSTER, NO_PE};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A pending event: time, a monotone sequence number for FIFO ties, payload.
struct Entry<E> {
    at: Cycles,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Initial day width: 2^6 = 64 cycles.
const INITIAL_WIDTH_LOG2: u32 = 6;
/// Initial level-0 ring size (buckets). Must be a power of two.
const INITIAL_DAYS: usize = 64;
/// Ring size bounds for retunes.
const MIN_DAYS: usize = 64;
const MAX_DAYS: usize = 4096;
/// Pops between tune checks: a short warmup, then long steady intervals.
const FIRST_TUNE_POPS: u32 = 64;
const TUNE_INTERVAL_POPS: u32 = 4096;

/// The two-level bucketed calendar queue backend.
///
/// Level 0 is `days`, a power-of-two ring of buckets; absolute day `d`
/// (`at >> width_log2`) lives in slot `d & (days.len() - 1)`. The cursor
/// tracks the earliest day that may still hold events; it only moves
/// forward during pops and rewinds when an insert lands on an earlier day,
/// so no pending event is ever behind it. Days at or beyond
/// `cursor_day + days.len()` sit in the `overflow` ladder and migrate into
/// the ring when the cursor reaches them.
///
/// Each bucket is kept sorted ascending by `(at, seq)`, so a pop is a
/// front-pop: window wrap-around aliases later days into the same slot, but
/// those entries have strictly larger times and therefore sort behind the
/// cursor's day. Inserts binary-search for their slot; the common cascade
/// pattern (schedule a bit ahead of now) lands at or near the back, and
/// same-cycle ties always append because sequence numbers are monotone.
struct Calendar<E> {
    /// log2 of the day width in cycles.
    width_log2: u32,
    /// The level-0 ring. Length is a power of two; buckets sorted by
    /// `(at, seq)`.
    days: Vec<VecDeque<Entry<E>>>,
    /// Absolute day index the cursor is serving.
    cursor_day: u64,
    /// Far-future events (day ≥ cursor_day + days.len() at insert time).
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Entries currently in the ring.
    level0_len: usize,
    /// Total pending entries (ring + overflow).
    len: usize,
    // --- day-width auto-tuning from observed inter-event gaps ---
    last_pop_at: Cycles,
    gap_sum: u64,
    pops_since_tune: u32,
    tune_budget: u32,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            width_log2: INITIAL_WIDTH_LOG2,
            days: (0..INITIAL_DAYS).map(|_| VecDeque::new()).collect(),
            cursor_day: 0,
            overflow: BinaryHeap::new(),
            level0_len: 0,
            len: 0,
            last_pop_at: 0,
            gap_sum: 0,
            pops_since_tune: 0,
            tune_budget: FIRST_TUNE_POPS,
        }
    }

    #[inline]
    fn day(&self, at: Cycles) -> u64 {
        at >> self.width_log2
    }

    #[inline]
    fn slot(&self, day: u64) -> usize {
        (day as usize) & (self.days.len() - 1)
    }

    /// First day beyond the level-0 window.
    #[inline]
    fn window_end(&self) -> u64 {
        self.cursor_day.saturating_add(self.days.len() as u64)
    }

    /// Sorted insert into one bucket. The search runs back to front in
    /// spirit: `partition_point` is O(log k), and the memmove it implies is
    /// empty for the dominant patterns — appends (future times, or
    /// same-cycle ties whose monotone `seq` sorts last).
    fn bucket_insert(bucket: &mut VecDeque<Entry<E>>, e: Entry<E>) {
        if bucket.back().is_none_or(|b| (b.at, b.seq) < (e.at, e.seq)) {
            bucket.push_back(e);
            return;
        }
        let pos = bucket.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
        bucket.insert(pos, e);
    }

    fn insert(&mut self, e: Entry<E>) {
        let d = self.day(e.at);
        // An insert on an earlier day than the cursor rewinds it: the
        // cursor may have advanced past `now`'s day while searching, and
        // clamped schedules can land there. Rewinding keeps the invariant
        // that no pending event is behind the cursor.
        if d < self.cursor_day {
            self.cursor_day = d;
        }
        if d < self.window_end() {
            let s = self.slot(d);
            Self::bucket_insert(&mut self.days[s], e);
            self.level0_len += 1;
        } else {
            self.overflow.push(Reverse(e));
        }
        self.len += 1;
        // Degenerate occupancy: far more events than buckets. Grow the
        // ring (deterministic: depends only on the event sequence).
        if self.len > self.days.len() * 8 && self.days.len() < MAX_DAYS {
            let days = (self.days.len() * 2).min(MAX_DAYS);
            self.rebuild(self.width_log2, days);
        }
    }

    /// Move every overflow entry whose day is inside the current level-0
    /// window into the ring.
    fn migrate_window(&mut self) {
        let end = self.window_end();
        while let Some(Reverse(top)) = self.overflow.peek() {
            if self.day(top.at) >= end {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry exists");
            let s = self.slot(self.day(e.at));
            Self::bucket_insert(&mut self.days[s], e);
            self.level0_len += 1;
        }
    }

    /// The minimum day held in the ring. Bucket fronts are bucket minima,
    /// so only fronts are scanned. Caller guarantees the ring is non-empty.
    fn min_level0_day(&self) -> u64 {
        self.days
            .iter()
            .filter_map(|b| b.front())
            .map(|e| self.day(e.at))
            .min()
            .expect("ring has entries")
    }

    /// Remove and return the earliest `(at, seq)` entry.
    fn pop_min(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        // Bounded cursor advance: after a full lap over the ring without
        // finding anything, jump straight to the earliest populated day
        // instead of stepping through a sparse stretch day by day.
        let mut empty_steps = 0usize;
        loop {
            if self.level0_len == 0 {
                // Everything pending is far-future: jump the cursor to the
                // ladder's earliest day and pull the window in.
                let Reverse(top) = self.overflow.peek().expect("len > 0 and ring empty");
                self.cursor_day = self.day(top.at);
                self.migrate_window();
                continue;
            }
            if let Some(Reverse(top)) = self.overflow.peek() {
                // The cursor caught up with days the ladder still holds;
                // fold them in before serving.
                if self.day(top.at) <= self.cursor_day {
                    self.migrate_window();
                    continue;
                }
            }
            // Serve the cursor's day. The bucket is sorted, so its front
            // is the minimum `(at, seq)`; if the front belongs to a later
            // aliased day (window wrap-around), the whole bucket does, and
            // the cursor reaches it later.
            let s = self.slot(self.cursor_day);
            let front_is_today = self.days[s]
                .front()
                .is_some_and(|e| self.day(e.at) == self.cursor_day);
            if front_is_today {
                let e = self.days[s].pop_front().expect("front checked above");
                self.level0_len -= 1;
                self.len -= 1;
                self.observe_pop(e.at);
                return Some(e);
            }
            self.cursor_day += 1;
            empty_steps += 1;
            if empty_steps >= self.days.len() {
                self.cursor_day = self.min_level0_day();
                empty_steps = 0;
            }
        }
    }

    /// Earliest pending `(at, seq)` without removing it. A non-mutating
    /// scan over bucket fronts (bucket minima), used only by peeking run
    /// loops — the pop path never calls it.
    fn peek_min_key(&self) -> Option<(Cycles, u64)> {
        if self.len == 0 {
            return None;
        }
        let ring = self
            .days
            .iter()
            .filter_map(|b| b.front())
            .map(|e| (e.at, e.seq))
            .min();
        let ladder = self.overflow.peek().map(|Reverse(e)| (e.at, e.seq));
        match (ring, ladder) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Track inter-event gaps and retune the day width when the observed
    /// scale disagrees with the current one. Deterministic: driven purely
    /// by popped event times.
    fn observe_pop(&mut self, at: Cycles) {
        self.gap_sum += at.saturating_sub(self.last_pop_at);
        self.last_pop_at = at;
        self.pops_since_tune += 1;
        if self.pops_since_tune < self.tune_budget {
            return;
        }
        // Aim for a day ≈ 4 average gaps, so a bucket holds a handful of
        // events: wide enough to amortize cursor steps, narrow enough that
        // inserts land near the back of their sorted bucket. The ×4 also
        // gives quarter-cycle resolution: deep queues see sub-cycle average
        // gaps, which should tune to 1-cycle days (w = 0) where same-cycle
        // ties append in pure seq order.
        let four_gaps = (self.gap_sum * 4 / u64::from(self.pops_since_tune)).max(1);
        let desired_w = (63 - four_gaps.leading_zeros()).min(32);
        let desired_days = self.len.next_power_of_two().clamp(MIN_DAYS, MAX_DAYS);
        let w_delta = desired_w.abs_diff(self.width_log2);
        if w_delta >= 2 || desired_days > self.days.len() * 4 {
            self.rebuild(desired_w, desired_days.max(self.days.len()));
        }
        self.gap_sum = 0;
        self.pops_since_tune = 0;
        self.tune_budget = TUNE_INTERVAL_POPS;
    }

    /// Re-bucket every pending entry under new parameters. Order is
    /// untouched: entries keep their `(at, seq)` keys, and both levels
    /// compare full keys.
    fn rebuild(&mut self, width_log2: u32, days: usize) {
        let days = days.next_power_of_two().clamp(MIN_DAYS, MAX_DAYS);
        let mut pending: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.days {
            pending.extend(bucket.drain(..));
        }
        pending.extend(self.overflow.drain().map(|Reverse(e)| e));
        self.width_log2 = width_log2;
        if days != self.days.len() {
            self.days = (0..days).map(|_| VecDeque::new()).collect();
        }
        self.level0_len = 0;
        self.len = 0;
        self.cursor_day = pending
            .iter()
            .map(|e| self.day(e.at))
            .min()
            .unwrap_or(self.day(self.last_pop_at));
        for e in pending {
            // Plain re-bucketing: growth checks cannot re-trigger here
            // because `days` was just sized from `len`.
            let d = self.day(e.at);
            if d < self.window_end() {
                let s = self.slot(d);
                Self::bucket_insert(&mut self.days[s], e);
                self.level0_len += 1;
            } else {
                self.overflow.push(Reverse(e));
            }
            self.len += 1;
        }
    }
}

/// The queue's backing store; see [`DesQueue`].
enum Backend<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(Calendar<E>),
}

impl<E> Backend<E> {
    fn len(&self) -> usize {
        match self {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }
}

/// Time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: Cycles,
    events_processed: u64,
    trace: TraceHandle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero on the default (calendar) backend.
    pub fn new() -> Self {
        Self::with_backend(DesQueue::Calendar)
    }

    /// An empty queue at time zero on the chosen backend.
    pub fn with_backend(kind: DesQueue) -> Self {
        let backend = match kind {
            DesQueue::Heap => Backend::Heap(BinaryHeap::new()),
            DesQueue::Calendar => Backend::Calendar(Calendar::new()),
        };
        EventQueue {
            backend,
            seq: 0,
            now: 0,
            events_processed: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace sink: every schedule/pop emits a DES event carrying
    /// the queue depth and the lifetime pop count (observation only).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Current simulation time: the time of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Total events popped over the queue's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// Schedule `ev` at absolute time `at`. Scheduling in the past clamps
    /// to `now` (events cannot rewind the clock).
    pub fn schedule(&mut self, at: Cycles, ev: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, ev };
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(entry)),
            Backend::Calendar(c) => c.insert(entry),
        }
        // Read the depth inside the closure so the untraced hot path pays
        // nothing for the observation.
        let backend = &self.backend;
        let events_processed = self.events_processed;
        self.trace.emit(|| {
            TraceEvent::instant(
                at,
                NO_CLUSTER,
                NO_PE,
                EventKind::DesSchedule {
                    queue_depth: backend.len() as u32,
                    events_processed,
                },
            )
        });
    }

    /// Schedule `ev` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, ev: E) {
        self.schedule(self.now + delay, ev);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse(e)| e),
            Backend::Calendar(c) => c.pop_min(),
        };
        entry.map(|e| {
            self.now = e.at;
            self.events_processed += 1;
            let backend = &self.backend;
            let events_processed = self.events_processed;
            self.trace.emit(|| {
                TraceEvent::instant(
                    e.at,
                    NO_CLUSTER,
                    NO_PE,
                    EventKind::DesDispatch {
                        queue_depth: backend.len() as u32,
                        events_processed,
                    },
                )
            });
            (e.at, e.ev)
        })
    }

    /// Peek at the earliest pending event time without popping.
    pub fn next_time(&self) -> Option<Cycles> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(e)| e.at),
            Backend::Calendar(c) => c.peek_min_key().map(|(at, _)| at),
        }
    }
}

/// An event-loop wrapper over [`EventQueue`].
pub struct Simulator<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// A simulator with an empty queue at time zero (calendar backend).
    pub fn new() -> Self {
        Self::with_backend(DesQueue::Calendar)
    }

    /// A simulator on the chosen queue backend.
    pub fn with_backend(kind: DesQueue) -> Self {
        Simulator {
            queue: EventQueue::with_backend(kind),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Total events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    /// Schedule an event at absolute time `at`.
    pub fn schedule(&mut self, at: Cycles, ev: E) {
        self.queue.schedule(at, ev);
    }

    /// Schedule an event `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, ev: E) {
        self.queue.schedule_in(delay, ev);
    }

    /// Run until the queue is empty. The handler receives the simulator (to
    /// schedule follow-on events), the event time, and the payload.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Self, Cycles, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            handler(self, at, ev);
        }
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Returns true if the queue drained before the deadline.
    pub fn run_until<F>(&mut self, deadline: Cycles, mut handler: F) -> bool
    where
        F: FnMut(&mut Self, Cycles, E),
    {
        loop {
            match self.queue.next_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    let (at, ev) = self.queue.pop().expect("next_time returned Some");
                    handler(self, at, ev);
                }
            }
        }
    }

    /// Run until the queue drains or the budget fires, checking the meter
    /// before every pop. A pending event whose time is past the cycle
    /// budget aborts *before* dispatch, so the clock never advances beyond
    /// the budget and the abort point is deterministic for the
    /// deterministic limits (cycles, events).
    pub fn run_budgeted<F>(&mut self, meter: &BudgetMeter, mut handler: F) -> Result<(), RunAborted>
    where
        F: FnMut(&mut Self, Cycles, E),
    {
        loop {
            let Some(next) = self.queue.next_time() else {
                return Ok(());
            };
            meter.check(next, self.queue.events_processed() + 1)?;
            let (at, ev) = self.queue.pop().expect("next_time returned Some");
            handler(self, at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Every behavioral test runs on both backends: the calendar queue
    /// must be indistinguishable from the reference heap.
    const BACKENDS: [DesQueue; 2] = [DesQueue::Calendar, DesQueue::Heap];

    #[test]
    fn events_pop_in_time_order() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            q.schedule(30, "c");
            q.schedule(10, "a");
            q.schedule(20, "b");
            assert_eq!(q.pop(), Some((10, "a")));
            assert_eq!(q.pop(), Some((20, "b")));
            assert_eq!(q.pop(), Some((30, "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_fifo() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            for i in 0..100 {
                q.schedule(5, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((5, i)));
            }
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            q.schedule(10, ());
            q.schedule(50, ());
            assert_eq!(q.now(), 0);
            q.pop();
            assert_eq!(q.now(), 10);
            q.pop();
            assert_eq!(q.now(), 50);
        }
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            q.schedule(100, "late");
            q.pop();
            q.schedule(5, "early"); // in the past; clamps to 100
            assert_eq!(q.pop(), Some((100, "early")));
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            q.schedule(10, "first");
            q.pop();
            q.schedule_in(7, "second");
            assert_eq!(q.pop(), Some((17, "second")));
        }
    }

    #[test]
    fn len_and_empty() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            assert!(q.is_empty());
            q.schedule(1, ());
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn far_future_events_ride_the_overflow_ladder() {
        let mut q = EventQueue::with_backend(DesQueue::Calendar);
        // Beyond the initial 64-day × 64-cycle window: lands in overflow.
        q.schedule(1 << 30, "far");
        q.schedule(10, "near");
        q.schedule((1 << 30) + 1, "farther");
        assert_eq!(q.pop(), Some((10, "near")));
        assert_eq!(q.pop(), Some((1 << 30, "far")));
        assert_eq!(q.pop(), Some(((1 << 30) + 1, "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_near_and_far_schedules_stay_ordered() {
        let mut q = EventQueue::with_backend(DesQueue::Calendar);
        // Repeatedly pop and schedule around the window edge so the cursor
        // advances, rewinds, and migrates from the ladder.
        let mut expect = Vec::new();
        for i in 0..50u64 {
            q.schedule(i * 3, ("n", i));
            q.schedule(100_000 + i * 7, ("f", i));
            expect.push((i * 3, ("n", i)));
            expect.push((100_000 + i * 7, ("f", i)));
        }
        expect.sort_by_key(|&(at, (_, i))| (at, i));
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn events_processed_counts_pops() {
        for kind in BACKENDS {
            let mut q = EventQueue::with_backend(kind);
            for t in 0..10u64 {
                q.schedule(t, t);
            }
            assert_eq!(q.events_processed(), 0);
            while q.pop().is_some() {}
            assert_eq!(q.events_processed(), 10);
        }
    }

    #[test]
    fn simulator_run_drains_and_cascades() {
        for kind in BACKENDS {
            let mut sim = Simulator::with_backend(kind);
            sim.schedule(0, 3u32); // event payload = remaining cascade depth
            let mut log = Vec::new();
            sim.run(|sim, at, depth| {
                log.push((at, depth));
                if depth > 0 {
                    sim.schedule_in(10, depth - 1);
                }
            });
            assert_eq!(log, vec![(0, 3), (10, 2), (20, 1), (30, 0)]);
            assert_eq!(sim.events_processed(), 4);
            assert_eq!(sim.now(), 30);
        }
    }

    #[test]
    fn run_until_stops_at_deadline() {
        for kind in BACKENDS {
            let mut sim = Simulator::with_backend(kind);
            for t in [10u64, 20, 30, 40] {
                sim.schedule(t, t);
            }
            let mut seen = Vec::new();
            let drained = sim.run_until(25, |_, _, ev| seen.push(ev));
            assert!(!drained);
            assert_eq!(seen, vec![10, 20]);
            assert_eq!(sim.now(), 20);
            // Finish the rest.
            let drained = sim.run_until(u64::MAX, |_, _, ev| seen.push(ev));
            assert!(drained);
            assert_eq!(seen, vec![10, 20, 30, 40]);
        }
    }

    #[test]
    fn deterministic_replay() {
        for kind in BACKENDS {
            let run = || {
                let mut sim = Simulator::with_backend(kind);
                for i in 0..50u64 {
                    sim.schedule((i * 7) % 13, i);
                }
                let mut order = Vec::new();
                sim.run(|sim, _, ev| {
                    order.push(ev);
                    if ev < 1000 && ev % 5 == 0 {
                        sim.schedule_in(3, ev + 1000);
                    }
                });
                order
            };
            assert_eq!(run(), run());
        }
    }

    #[test]
    fn retune_survives_large_volumes_in_order() {
        // Enough events to trip the warmup tune, interval tunes, and the
        // ring-growth rebuild; the pop order must match the heap oracle.
        let mut cal = EventQueue::with_backend(DesQueue::Calendar);
        let mut heap = EventQueue::with_backend(DesQueue::Heap);
        let mut x = 0x2545f4914f6cdd1du64;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = x % 1_000_000;
            cal.schedule(at, i);
            heap.schedule(at, i);
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// One scripted interleaving of schedules and pops, mirrored on both
    /// backends. `ops` drives the script; the pop streams must agree.
    fn oracle_run(ops: &[(u8, u64)]) {
        let mut cal = EventQueue::with_backend(DesQueue::Calendar);
        let mut heap = EventQueue::with_backend(DesQueue::Heap);
        let mut payload = 0u64;
        for &(op, t) in ops {
            if op % 3 == 0 {
                // Pop on both; streams must match (including clocks).
                assert_eq!(cal.pop(), heap.pop());
                assert_eq!(cal.now(), heap.now());
                assert_eq!(cal.next_time(), heap.next_time());
            } else {
                // Absolute schedule; past times exercise clamp-to-now.
                cal.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
                assert_eq!(cal.len(), heap.len());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Random schedule/pop interleavings (with heavy ties, past
        /// schedules, and far-future outliers) pop identically on the
        /// calendar and heap backends: time order, same-cycle FIFO,
        /// clamp-to-now, clock, peeks, and depths all agree.
        #[test]
        fn calendar_matches_heap_oracle(
            ops in proptest::collection::vec(
                (0u8..6, prop_oneof![
                    0u64..50,              // dense ties near the origin
                    0u64..5_000,           // in-window spread
                    1_000_000u64..1_100_000, // far future: overflow ladder
                ]),
                0..400,
            )
        ) {
            oracle_run(&ops);
        }

        /// `run_until` deadline semantics agree across backends for random
        /// workloads: same handled prefix, same return, same clock.
        #[test]
        fn run_until_matches_across_backends(
            times in proptest::collection::vec(0u64..10_000, 1..80),
            deadline in 0u64..12_000,
        ) {
            let run = |kind: DesQueue| {
                let mut sim = Simulator::with_backend(kind);
                for (i, &t) in times.iter().enumerate() {
                    sim.schedule(t, i);
                }
                let mut seen = Vec::new();
                let drained = sim.run_until(deadline, |_, at, ev| seen.push((at, ev)));
                (drained, seen, sim.now(), sim.events_processed())
            };
            prop_assert_eq!(run(DesQueue::Calendar), run(DesQueue::Heap));
        }

        /// A cycle-budgeted run aborts at the same event, clock, and pop
        /// count on every repeat and on both backends — the abort point is
        /// part of the deterministic contract.
        #[test]
        fn budgeted_run_aborts_identically(
            times in proptest::collection::vec(0u64..10_000, 1..80),
            max_cycles in 0u64..12_000,
        ) {
            let run = |kind: DesQueue| {
                let mut sim = Simulator::with_backend(kind);
                for (i, &t) in times.iter().enumerate() {
                    sim.schedule(t, i);
                }
                let meter = crate::budget::RunBudget::max_cycles(max_cycles).start();
                let mut seen = Vec::new();
                let out = sim.run_budgeted(&meter, |_, at, ev| seen.push((at, ev)));
                (out, seen, sim.now(), sim.events_processed())
            };
            let a = run(DesQueue::Calendar);
            prop_assert_eq!(&a, &run(DesQueue::Calendar), "repeat run identical");
            prop_assert_eq!(&a, &run(DesQueue::Heap), "backend-independent");
            if let Err(abort) = &a.0 {
                prop_assert_eq!(abort.cause, crate::budget::AbortCause::CyclesExceeded);
                prop_assert!(a.2 <= max_cycles, "clock never passes the budget");
            }
        }
    }

    #[test]
    fn budgeted_run_with_unlimited_budget_drains() {
        let mut sim = Simulator::<u32>::new();
        sim.schedule(10, 1);
        sim.schedule(20, 2);
        let meter = crate::budget::RunBudget::unlimited().start();
        let mut seen = Vec::new();
        sim.run_budgeted(&meter, |_, _, ev| seen.push(ev))
            .expect("unlimited budget cannot abort");
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn event_budget_bounds_the_pop_count() {
        let mut sim = Simulator::<u32>::new();
        for i in 0..10 {
            sim.schedule(u64::from(i), i);
        }
        let budget = crate::budget::RunBudget {
            max_des_events: Some(4),
            ..Default::default()
        };
        let mut seen = 0;
        let err = sim
            .run_budgeted(&budget.start(), |_, _, _| seen += 1)
            .unwrap_err();
        assert_eq!(err.cause, crate::budget::AbortCause::EventsExceeded);
        assert_eq!(seen, 4, "exactly the budgeted pops ran");
        assert_eq!(sim.events_processed(), 4);
    }
}
