//! Cluster-sharded conservative parallel DES.
//!
//! The FEM-2 machine is inherently partitioned: clusters interact only
//! through network messages, and every message needs at least one link
//! traversal — a known minimum latency. That minimum is a textbook
//! *conservative lookahead* bound: if the earliest pending event anywhere
//! is at time `t`, no cross-cluster interaction originated at or after `t`
//! can take effect before `t + lookahead`, so every cluster group may
//! advance independently to that horizon without risking a causality
//! violation.
//!
//! This module implements the barrier-epoch variant of the protocol:
//!
//! * [`ShardMap`] partitions the clusters into contiguous groups (shards),
//!   the same block mapping the navm task layer uses, so shard order is
//!   cluster order is task order;
//! * [`lookahead_horizon`] derives the horizon from the live network state
//!   ([`Network::min_delivery_latency`]): healthy links give the config's
//!   `link_latency` plus minimum occupancy per hop, degraded links widen
//!   the bound, detours around dead links widen it further, and repairs
//!   shrink it back. The caller recomputes it at every epoch boundary and
//!   caps epochs at scheduled fault times, so the bound in force is always
//!   the one the current latency graph justifies;
//! * [`ShardedSim`] advances one event queue per shard concurrently on the
//!   `fem2-par` pool, synchronizing at the horizon. Cross-shard events are
//!   buffered in per-shard outboxes and exchanged at the epoch barrier in
//!   deterministic merge order — source shard id, then timestamp, then
//!   source scheduling order — so results are byte-stable regardless of
//!   thread count, exactly like `par_sweep`'s input-order guarantee;
//! * [`ShardSection`] is the plate-scenario counterpart: a mutable view of
//!   one shard's PEs plus private counter/trace scratch, handed out by
//!   `Machine::run_sharded` so op-barrier workloads (the E1 path, which
//!   charges the machine directly instead of running an event loop) can
//!   charge all shards concurrently and merge bitwise-identically.
//!
//! The sequential calendar engine remains the oracle: a [`ShardedSim`]
//! with one shard *is* the plain `EventQueue` loop, and the proptests below
//! prove the N-shard run byte-identical to it.

use crate::budget::{AbortCause, BudgetMeter, RunAborted};
use crate::config::{DesQueue, MachineConfig};
use crate::network::Network;
use crate::pe::{CostClass, Pe, PeId};
use crate::sim::EventQueue;
use crate::stats::PhaseCounters;
use crate::{machine::trace_cost_kind, Cycles, MachineError};
use fem2_par::Pool;
use fem2_trace::{EventKind, TraceEvent};
use std::ops::Range;

/// Contiguous block mapping of clusters onto shards.
///
/// `shard_of` is monotone in the cluster index, so each shard owns a
/// contiguous cluster range and concatenating per-shard results in shard
/// order reproduces sequential cluster order. Shard counts are clamped to
/// the cluster count (a shard must own at least one cluster).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardMap {
    clusters: u32,
    shards: u32,
}

impl ShardMap {
    /// A map of `clusters` onto `shards` groups (clamped to `1..=clusters`).
    ///
    /// # Panics
    /// Panics if `clusters` is zero.
    pub fn new(clusters: u32, shards: u32) -> Self {
        assert!(clusters >= 1, "a machine has at least one cluster");
        ShardMap {
            clusters,
            shards: shards.clamp(1, clusters),
        }
    }

    /// The map a machine configuration asks for (`des_shards` clamped to
    /// the cluster count).
    pub fn for_config(cfg: &MachineConfig) -> Self {
        Self::new(cfg.clusters, cfg.des_shards)
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Number of shards (≥ 1, ≤ clusters).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Whether more than one shard exists.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The shard owning `cluster`. Monotone in `cluster`.
    pub fn shard_of(&self, cluster: u32) -> u32 {
        debug_assert!(cluster < self.clusters);
        ((u64::from(cluster) * u64::from(self.shards)) / u64::from(self.clusters)) as u32
    }

    /// The contiguous cluster range owned by `shard`. Never empty.
    pub fn clusters_of(&self, shard: u32) -> Range<u32> {
        debug_assert!(shard < self.shards);
        let n = u64::from(self.clusters);
        let s = u64::from(self.shards);
        let lo = (u64::from(shard) * n).div_ceil(s) as u32;
        let hi = ((u64::from(shard) + 1) * n).div_ceil(s) as u32;
        lo..hi
    }
}

/// Cluster count up to which [`lookahead_horizon`] runs the exact
/// pairwise scan. Beyond it the O(n²) scan would dominate epoch turnover,
/// so large machines use the analytic healthy floor instead.
const EXACT_LOOKAHEAD_SCAN_LIMIT: u32 = 64;

/// The minimum hop count between any two *distinct* clusters of a
/// topology: 1 everywhere except the fat tree, whose closest pair turns
/// around at an edge switch (2 hops).
fn min_remote_hops(topology: &crate::config::Topology) -> u32 {
    match topology {
        crate::config::Topology::FatTree { .. } => 2,
        _ => 1,
    }
}

/// The conservative lookahead horizon for `map` under the network's
/// current fault state.
///
/// On machines of up to [`EXACT_LOOKAHEAD_SCAN_LIMIT`] clusters this is
/// the minimum, over ordered cluster pairs in *different* shards, of a
/// lower bound on message delivery latency
/// ([`Network::min_delivery_latency`]). Pairs with no live route
/// contribute nothing (they cannot interact at all); if every cross-shard
/// pair is unreachable the horizon is [`Cycles::MAX`] and shards free-run
/// to the next externally imposed barrier (e.g. a scheduled fault).
///
/// Larger machines use the analytic healthy floor
/// ([`Network::healthy_latency_floor`]) over the topology's minimum
/// remote hop count, which costs O(1) instead of O(n²) pairs. The floor
/// is always ≤ the exact scan — faults only lengthen routes — and *any*
/// positive lower bound on cross-shard delay yields the same
/// bitwise-identical results (a smaller horizon only costs extra barrier
/// epochs), so the switchover is invisible to outcomes.
///
/// The result is never zero.
///
/// Validity: the bound is derived from the *current* latency graph, so it
/// holds only while link state is constant. Callers recompute it at every
/// epoch boundary and must cap the epoch at the next scheduled fault or
/// repair time.
pub fn lookahead_horizon(net: &Network, map: &ShardMap) -> Cycles {
    if !map.is_sharded() {
        // No cross-shard pair exists; free-run like the all-unreachable
        // case of the pairwise scan.
        return Cycles::MAX;
    }
    if map.clusters() > EXACT_LOOKAHEAD_SCAN_LIMIT {
        return net.healthy_latency_floor(min_remote_hops(net.topology()));
    }
    let mut min = Cycles::MAX;
    for a in 0..map.clusters() {
        for b in 0..map.clusters() {
            if a == b || map.shard_of(a) == map.shard_of(b) {
                continue;
            }
            if let Some(lat) = net.min_delivery_latency(a, b) {
                min = min.min(lat);
            }
        }
    }
    min.max(1)
}

/// A cross-shard event parked until the epoch barrier.
struct Outgoing<E> {
    at: Cycles,
    cluster: u32,
    ev: E,
}

/// One shard's lane: its event queue, caller state, and outbox.
struct Lane<E, S> {
    queue: EventQueue<E>,
    state: S,
    outbox: Vec<Outgoing<E>>,
}

/// The per-shard scheduling context handed to [`ShardedSim`] handlers.
///
/// Local events go straight into the shard's queue; cross-shard events are
/// parked in the outbox for the epoch barrier. The conservative contract —
/// a cross-shard event must not land inside the current epoch — is
/// asserted, so a handler whose delays undercut the declared horizon fails
/// loudly instead of silently diverging from the oracle.
pub struct ShardCtx<'a, E> {
    shard: u32,
    map: ShardMap,
    epoch_end: Cycles,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<Outgoing<E>>,
}

impl<E> ShardCtx<'_, E> {
    /// This shard's id.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The shard's local clock (time of its last dispatched event).
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Exclusive upper bound of the current epoch.
    pub fn epoch_end(&self) -> Cycles {
        self.epoch_end
    }

    /// Schedule `ev` for `cluster` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `cluster` belongs to another shard and `at` is inside the
    /// current epoch — that would violate the lookahead bound the epoch
    /// was derived from.
    pub fn schedule(&mut self, at: Cycles, cluster: u32, ev: E) {
        if self.map.shard_of(cluster) == self.shard {
            self.queue.schedule(at, ev);
        } else {
            assert!(
                at >= self.epoch_end,
                "cross-shard event at {at} lands inside the current epoch \
                 (end {}): the declared lookahead horizon is not a valid \
                 lower bound on cross-shard delays",
                self.epoch_end
            );
            self.outbox.push(Outgoing { at, cluster, ev });
        }
    }
}

/// A barrier-epoch conservative parallel discrete-event engine.
///
/// Events are addressed to clusters; [`ShardMap`] routes each cluster to a
/// shard with its own [`EventQueue`] (calendar or heap, per `des_queue`).
/// [`ShardedSim::run`] repeats: find the globally earliest pending event
/// time `t_min`, ask the caller for the epoch bound (typically
/// `t_min + lookahead_horizon(..)`, capped at the next scheduled fault),
/// advance every shard concurrently to that bound, then exchange outboxes
/// at the barrier in (source shard, timestamp, source order) order.
///
/// With one shard the loop degenerates to the sequential engine — the
/// oracle the proptests compare against.
pub struct ShardedSim<E, S> {
    map: ShardMap,
    lanes: Vec<Lane<E, S>>,
    epochs: u64,
}

impl<E, S> ShardedSim<E, S> {
    /// An engine over `map` with the given queue backend and one state per
    /// shard.
    ///
    /// # Panics
    /// Panics unless `states.len() == map.shards()`.
    pub fn with_states(map: ShardMap, backend: DesQueue, states: Vec<S>) -> Self {
        assert_eq!(
            states.len(),
            map.shards() as usize,
            "one state per shard required"
        );
        ShardedSim {
            map,
            lanes: states
                .into_iter()
                .map(|state| Lane {
                    queue: EventQueue::with_backend(backend),
                    state,
                    outbox: Vec::new(),
                })
                .collect(),
            epochs: 0,
        }
    }

    /// An engine with default per-shard states.
    pub fn new(map: ShardMap, backend: DesQueue) -> Self
    where
        S: Default,
    {
        let states = (0..map.shards()).map(|_| S::default()).collect();
        Self::with_states(map, backend, states)
    }

    /// The cluster-to-shard mapping.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Barrier epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total events dispatched across all shards.
    pub fn events_processed(&self) -> u64 {
        self.lanes.iter().map(|l| l.queue.events_processed()).sum()
    }

    /// The global clock: the latest time any shard has advanced to.
    pub fn now(&self) -> Cycles {
        self.lanes.iter().map(|l| l.queue.now()).max().unwrap_or(0)
    }

    /// The earliest pending event time across all shards.
    pub fn next_time(&self) -> Option<Cycles> {
        self.lanes.iter().filter_map(|l| l.queue.next_time()).min()
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// True when no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A shard's caller state.
    pub fn state(&self, shard: u32) -> &S {
        &self.lanes[shard as usize].state
    }

    /// The per-shard states, in shard order.
    pub fn into_states(self) -> Vec<S> {
        self.lanes.into_iter().map(|l| l.state).collect()
    }

    /// Seed an event for `cluster` at absolute time `at`. Seeding order is
    /// preserved within each shard, so the same seed sequence produces the
    /// same run for every shard count.
    pub fn schedule(&mut self, at: Cycles, cluster: u32, ev: E) {
        let lane = self.map.shard_of(cluster) as usize;
        self.lanes[lane].queue.schedule(at, ev);
    }

    /// Run until no events remain. `epoch_end` maps the earliest pending
    /// time to the epoch's exclusive bound — compute it from the machine
    /// config (e.g. `t + lookahead_horizon(net, map)`), never hard-code
    /// it, and cap it at the next scheduled fault time so the latency
    /// graph is constant within the epoch. With `pool` given and more than
    /// one shard, shards advance concurrently; results are identical
    /// either way.
    pub fn run<H, F>(&mut self, pool: Option<&Pool>, mut epoch_end: H, handler: F)
    where
        E: Send,
        S: Send,
        H: FnMut(Cycles) -> Cycles,
        F: Fn(&mut ShardCtx<'_, E>, &mut S, Cycles, E) + Sync,
    {
        while let Some(t_min) = self.next_time() {
            let end = epoch_end(t_min).max(t_min.saturating_add(1));
            self.advance_epoch(pool, end, &handler);
        }
    }

    /// Budgeted [`ShardedSim::run`]. Cycle budgets abort at exactly the
    /// sequential abort point: no event past the budget is ever
    /// dispatched (the epoch bound is capped at `max_sim_cycles + 1`) and
    /// the abort fires when the earliest pending event exceeds the
    /// budget. Event-count budgets are enforced at epoch granularity —
    /// deterministic for a fixed shard count, but an epoch may finish
    /// dispatching before the overrun is observed.
    pub fn run_budgeted<H, F>(
        &mut self,
        pool: Option<&Pool>,
        meter: &BudgetMeter,
        mut epoch_end: H,
        handler: F,
    ) -> Result<(), RunAborted>
    where
        E: Send,
        S: Send,
        H: FnMut(Cycles) -> Cycles,
        F: Fn(&mut ShardCtx<'_, E>, &mut S, Cycles, E) + Sync,
    {
        while let Some(t_min) = self.next_time() {
            meter.check(t_min, self.events_processed() + 1)?;
            let mut end = epoch_end(t_min).max(t_min.saturating_add(1));
            if let Some(max) = meter.budget().max_sim_cycles {
                end = end.min(max.saturating_add(1));
            }
            self.advance_epoch(pool, end, &handler);
            if let Some(max) = meter.budget().max_des_events {
                let events = self.events_processed();
                if events > max {
                    return Err(RunAborted {
                        cause: AbortCause::EventsExceeded,
                        sim_cycles: self.now(),
                        des_events: events,
                    });
                }
            }
        }
        Ok(())
    }

    /// Advance every shard to `end` (exclusive), then exchange outboxes.
    fn advance_epoch<F>(&mut self, pool: Option<&Pool>, end: Cycles, handler: &F)
    where
        E: Send,
        S: Send,
        F: Fn(&mut ShardCtx<'_, E>, &mut S, Cycles, E) + Sync,
    {
        let map = self.map;
        let advance = |shard: usize, lane: &mut Lane<E, S>| {
            while lane.queue.next_time().is_some_and(|t| t < end) {
                let (at, ev) = lane.queue.pop().expect("next_time returned Some");
                let mut ctx = ShardCtx {
                    shard: shard as u32,
                    map,
                    epoch_end: end,
                    queue: &mut lane.queue,
                    outbox: &mut lane.outbox,
                };
                handler(&mut ctx, &mut lane.state, at, ev);
            }
        };
        match pool {
            Some(pool) if self.map.is_sharded() => {
                fem2_par::each_mut(pool, &mut self.lanes, |i, lane| advance(i, lane));
            }
            _ => {
                for (i, lane) in self.lanes.iter_mut().enumerate() {
                    advance(i, lane);
                }
            }
        }
        self.epochs += 1;
        self.deliver_outboxes();
    }

    /// The epoch barrier: deliver every parked cross-shard event, in
    /// (source shard, timestamp, source scheduling order) order. The sort
    /// is stable, so same-timestamp events from one shard keep the order
    /// their senders scheduled them in — the exact analogue of the
    /// sequential engine's FIFO tie-break.
    fn deliver_outboxes(&mut self) {
        for src in 0..self.lanes.len() {
            let mut out = std::mem::take(&mut self.lanes[src].outbox);
            out.sort_by_key(|o| o.at);
            for o in out.drain(..) {
                let dest = self.map.shard_of(o.cluster) as usize;
                self.lanes[dest].queue.schedule(o.at, o.ev);
            }
            // Hand the drained buffer back so steady-state epochs allocate
            // nothing.
            self.lanes[src].outbox = out;
        }
    }
}

/// A mutable view of one shard's slice of the machine, for op-barrier
/// workloads (the plate path) that charge PEs directly instead of running
/// an event loop.
///
/// Handed out by `Machine::run_sharded`, which splits the cluster-major PE
/// array into per-shard slices. Charges mirror `Machine::charge` exactly
/// — same start/completion arithmetic, same counter increments — but land
/// in private scratch (counters, buffered trace events, event count) that
/// the machine folds back in shard order afterwards, so a sharded section
/// is bitwise-identical to the sequential one.
pub struct ShardSection<'m> {
    /// This shard's contiguous slice of the machine's per-cluster PE
    /// lanes; `None` lanes read as idle and materialize on first charge.
    lanes: &'m mut [Option<Box<[Pe]>>],
    first_cluster: u32,
    config: &'m MachineConfig,
    kernel_pe: &'m [u32],
    trace_on: bool,
    pub(crate) counters: PhaseCounters,
    pub(crate) trace_buf: Vec<TraceEvent>,
    pub(crate) events: u64,
}

impl<'m> ShardSection<'m> {
    pub(crate) fn new(
        lanes: &'m mut [Option<Box<[Pe]>>],
        first_cluster: u32,
        config: &'m MachineConfig,
        kernel_pe: &'m [u32],
        trace_on: bool,
    ) -> Self {
        ShardSection {
            lanes,
            first_cluster,
            config,
            kernel_pe,
            trace_on,
            counters: PhaseCounters::default(),
            trace_buf: Vec::new(),
            events: 0,
        }
    }

    /// First cluster this section owns.
    pub fn first_cluster(&self) -> u32 {
        self.first_cluster
    }

    /// Number of clusters this section owns.
    pub fn cluster_count(&self) -> u32 {
        self.lanes.len() as u32
    }

    fn local(&self, pe: PeId) -> Result<usize, MachineError> {
        let local = pe.cluster.wrapping_sub(self.first_cluster);
        if local >= self.cluster_count() || pe.index >= self.config.pes_per_cluster {
            return Err(MachineError::NoSuchPe(pe));
        }
        Ok(local as usize)
    }

    /// The current kernel PE of cluster `c`.
    pub fn kernel_pe(&self, c: u32) -> PeId {
        PeId::new(c, self.kernel_pe[c as usize])
    }

    /// Earliest-free eligible worker PE of cluster `c`; mirrors
    /// `Machine::pick_worker` exactly. `None` if the cluster is dead.
    ///
    /// This runs once per dispatched task, so it is a single allocation-free
    /// pass over the cluster's lane: one scan yields the alive count (which
    /// decides whether the kernel PE is excluded) and the earliest-free
    /// candidate both with and without the kernel PE. An unmaterialized
    /// lane reads as all-idle without allocating.
    pub fn pick_worker(&self, c: u32) -> Option<PeId> {
        let ppc = self.config.pes_per_cluster as usize;
        let local = c.wrapping_sub(self.first_cluster) as usize;
        let lane = self.lanes[local].as_deref();
        let kernel = self.kernel_pe[c as usize];
        let mut alive = 0u32;
        let mut best_any: Option<(Cycles, u32)> = None;
        let mut best_worker: Option<(Cycles, u32)> = None;
        for i in 0..ppc {
            let p = lane.map_or(Pe::IDLE, |l| l[i]);
            if p.failed {
                continue;
            }
            alive += 1;
            let key = (p.free_at, i as u32);
            if best_any.is_none_or(|b| key < b) {
                best_any = Some(key);
            }
            if i as u32 != kernel && best_worker.is_none_or(|b| key < b) {
                best_worker = Some(key);
            }
        }
        let dedicated = self.config.dedicated_kernel_pe && alive > 1;
        let pick = if dedicated { best_worker } else { best_any };
        pick.map(|(_, i)| PeId::new(c, i))
    }

    /// Charge `count` units of `class` to `pe`; mirrors `Machine::charge`.
    pub fn charge(
        &mut self,
        now: Cycles,
        pe: PeId,
        class: CostClass,
        count: u64,
    ) -> Result<Cycles, MachineError> {
        let local = self.local(pe)?;
        let ppc = self.config.pes_per_cluster as usize;
        let lane = self.lanes[local].get_or_insert_with(|| vec![Pe::IDLE; ppc].into_boxed_slice());
        let state = &mut lane[pe.index as usize];
        if state.failed {
            return Err(MachineError::PeFailed(pe));
        }
        match class {
            CostClass::Flop => self.counters.flops += count,
            CostClass::IntOp => self.counters.int_ops += count,
            CostClass::MemWord => self.counters.mem_words += count,
            CostClass::TaskCreate => self.counters.tasks_created += count,
            _ => {}
        }
        let start = state.free_at.max(now);
        let done = state.charge(now, class, count, &self.config.cost);
        if self.trace_on {
            self.trace_buf.push(TraceEvent::span(
                start,
                done - start,
                pe.cluster,
                pe.index,
                EventKind::PeBusy {
                    cost: trace_cost_kind(class),
                    count,
                },
            ));
        }
        self.events += 1;
        Ok(done)
    }

    /// Buffer a caller-built trace event (e.g. task lifecycle instants),
    /// preserving its position between this section's charges. The closure
    /// runs only when tracing is live, like `TraceHandle::emit`.
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.trace_on {
            self.trace_buf.push(f());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use proptest::prelude::*;

    // ---- ShardMap ----

    #[test]
    fn shard_map_clamps_and_partitions() {
        let m = ShardMap::new(4, 8);
        assert_eq!(m.shards(), 4, "clamped to cluster count");
        let m = ShardMap::new(4, 0);
        assert_eq!(m.shards(), 1, "at least one shard");
        let m = ShardMap::new(6, 4);
        let owned: Vec<u32> = (0..4).flat_map(|s| m.clusters_of(s)).collect();
        assert_eq!(owned, vec![0, 1, 2, 3, 4, 5], "contiguous full cover");
    }

    proptest! {
        /// `clusters_of` tiles the cluster range contiguously, every shard
        /// is non-empty, and `shard_of` agrees with the tiling.
        #[test]
        fn shard_map_is_a_contiguous_partition(
            clusters in 1u32..64,
            shards in 0u32..80,
        ) {
            let m = ShardMap::new(clusters, shards);
            prop_assert!(m.shards() >= 1 && m.shards() <= clusters);
            let mut next = 0u32;
            for s in 0..m.shards() {
                let r = m.clusters_of(s);
                prop_assert_eq!(r.start, next, "contiguous");
                prop_assert!(r.end > r.start, "non-empty shard");
                for c in r.clone() {
                    prop_assert_eq!(m.shard_of(c), s);
                }
                next = r.end;
            }
            prop_assert_eq!(next, clusters, "full cover");
        }
    }

    // ---- lookahead ----

    fn net(topology: Topology, clusters: u32) -> Network {
        let mut c = MachineConfig::fem2_default();
        c.topology = topology;
        c.clusters = clusters;
        Network::new(&c)
    }

    #[test]
    fn lookahead_tracks_link_state() {
        let map = ShardMap::new(4, 2);
        let mut n = net(Topology::Crossbar, 4);
        // Healthy crossbar: one hop of minimum occupancy 1 + latency 20.
        assert_eq!(lookahead_horizon(&n, &map), 21);
        // Degrading one cross-shard link does not change the min (other
        // pairs still healthy) ...
        n.degrade_link(2, 8); // link 0 -> 2
        assert_eq!(lookahead_horizon(&n, &map), 21);
        // ... but degrading is visible through the pairwise bound itself.
        assert_eq!(n.min_delivery_latency(0, 2), Some(8 + 20));
        // Killing the 0 -> 2 link forces a detour: the pair's bound grows;
        // the global min is still another healthy pair's 21.
        n.fail_link(2);
        assert!(n.min_delivery_latency(0, 2).unwrap() > 21);
        assert_eq!(lookahead_horizon(&n, &map), 21);
        // Repair snaps the pair back to the primary-path bound.
        n.recover_link(2);
        assert_eq!(n.min_delivery_latency(0, 2), Some(21));
    }

    #[test]
    fn lookahead_shrinks_and_restores_across_fault_and_repair() {
        // 2 clusters, 1 link each way: with the only cross-shard links
        // dead, the shards cannot interact and the horizon is unbounded.
        let map = ShardMap::new(2, 2);
        let mut n = net(Topology::Crossbar, 2);
        let healthy = lookahead_horizon(&n, &map);
        assert_eq!(healthy, 21);
        n.fail_link(1); // 0 -> 1
        n.fail_link(2); // 1 -> 0
        assert_eq!(lookahead_horizon(&n, &map), Cycles::MAX);
        n.recover_link(1);
        n.recover_link(2);
        assert_eq!(lookahead_horizon(&n, &map), healthy);
    }

    #[test]
    fn lookahead_counts_hops_on_multihop_topologies() {
        // Ring of 8 split in two: nearest cross-shard pair is 1 hop; the
        // bound is per-hop latency + min occupancy.
        let map = ShardMap::new(8, 2);
        let n = net(Topology::Ring, 8);
        assert_eq!(lookahead_horizon(&n, &map), 21);
        // 8 shards of 1: same nearest-neighbour bound.
        let map = ShardMap::new(8, 8);
        assert_eq!(lookahead_horizon(&n, &map), 21);
    }

    // ---- generic engine: oracle equivalence ----

    /// Workload constants. Times embed the (globally unique) event id in
    /// their low bits so every event time is distinct — the discipline
    /// that makes the global dispatch order of the sequential oracle
    /// directly comparable to the merged shard logs. (Real machine
    /// workloads get their determinism from the richer plate/kernel
    /// contracts; the engine test isolates the protocol itself.)
    const STRIDE: u64 = 1 << 20;
    const HORIZON: u64 = 3 * STRIDE + 123;
    const ID_OFFSET: u64 = 100_000;

    /// A sharded sim whose events are `(cluster, id)` pairs and whose
    /// per-shard state is a dispatch log.
    type LogSim = ShardedSim<(u32, u64), Vec<(Cycles, u32, u64)>>;
    const MAX_GENERATIONS: u64 = 5;

    /// Deterministic cascade rule shared by the oracle and the shards:
    /// event `id` at `at` on `cluster` spawns one child on a derived
    /// cluster at a time ≥ `at + HORIZON` (so cross-shard sends always
    /// clear any epoch bound), with the child's unique id in the low bits.
    fn cascade(nclusters: u32, at: Cycles, id: u64) -> Option<(Cycles, u32, u64)> {
        if id >= MAX_GENERATIONS * ID_OFFSET {
            return None;
        }
        let child = id + ID_OFFSET;
        let cluster = (child % u64::from(nclusters)) as u32;
        let base = (at + HORIZON).div_ceil(STRIDE) * STRIDE;
        Some((base + child % STRIDE, cluster, child))
    }

    /// Seeds: (slot, id) pairs; the workload schedules id at
    /// `slot * STRIDE + id` on cluster `id % nclusters`.
    fn run_oracle(nclusters: u32, seeds: &[(u64, u64)]) -> (Vec<(Cycles, u32, u64)>, u64, Cycles) {
        let mut q: EventQueue<(u32, u64)> = EventQueue::new();
        for &(slot, id) in seeds {
            let cluster = (id % u64::from(nclusters)) as u32;
            q.schedule(slot * STRIDE + id % STRIDE, (cluster, id));
        }
        let mut log = Vec::new();
        while let Some((at, (cluster, id))) = q.pop() {
            log.push((at, cluster, id));
            if let Some((cat, cc, cid)) = cascade(nclusters, at, id) {
                q.schedule(cat, (cc, cid));
            }
        }
        (log, q.events_processed(), q.now())
    }

    fn run_sharded(
        nclusters: u32,
        shards: u32,
        backend: DesQueue,
        pool: Option<&Pool>,
        seeds: &[(u64, u64)],
    ) -> (Vec<(Cycles, u32, u64)>, u64, Cycles) {
        let map = ShardMap::new(nclusters, shards);
        let mut sim: LogSim = ShardedSim::new(map, backend);
        for &(slot, id) in seeds {
            let cluster = (id % u64::from(nclusters)) as u32;
            sim.schedule(slot * STRIDE + id % STRIDE, cluster, (cluster, id));
        }
        sim.run(
            pool,
            |t| t.saturating_add(HORIZON),
            |ctx, log, at, (cluster, id)| {
                log.push((at, cluster, id));
                if let Some((cat, cc, cid)) = cascade(nclusters, at, id) {
                    ctx.schedule(cat, cc, (cc, cid));
                }
            },
        );
        let events = sim.events_processed();
        let now = sim.now();
        let mut log: Vec<(Cycles, u32, u64)> = sim.into_states().into_iter().flatten().collect();
        log.sort_by_key(|&(at, _, _)| at);
        (log, events, now)
    }

    proptest! {
        /// The sharded engine is identical to the sequential oracle for
        /// every shard count and both queue backends: same dispatched
        /// (time, cluster, id) stream, same event count, same final clock.
        #[test]
        fn sharded_matches_sequential_oracle(
            nclusters in 1u32..9,
            seeds in proptest::collection::vec((0u64..8, 0u64..ID_OFFSET), 1..40),
        ) {
            let expected = run_oracle(nclusters, &seeds);
            for shards in [1, 2, 3, 4, 8] {
                for backend in [DesQueue::Calendar, DesQueue::Heap] {
                    let got = run_sharded(nclusters, shards, backend, None, &seeds);
                    prop_assert_eq!(&got, &expected, "shards={} backend={:?}", shards, backend);
                }
            }
        }

        /// A cycle-budgeted sharded run aborts at exactly the sequential
        /// abort point: same cause, same clock, same dispatched prefix.
        #[test]
        fn sharded_budget_abort_matches_sequential(
            nclusters in 1u32..9,
            seeds in proptest::collection::vec((0u64..8, 0u64..ID_OFFSET), 1..24),
            budget_slots in 0u64..40,
        ) {
            let max_cycles = budget_slots * STRIDE / 2;
            let run = |shards: u32| {
                let map = ShardMap::new(nclusters, shards);
                let mut sim: LogSim =
                    ShardedSim::new(map, DesQueue::Calendar);
                for &(slot, id) in &seeds {
                    let cluster = (id % u64::from(nclusters)) as u32;
                    sim.schedule(slot * STRIDE + id % STRIDE, cluster, (cluster, id));
                }
                let meter = crate::budget::RunBudget::max_cycles(max_cycles).start();
                let out = sim.run_budgeted(
                    None,
                    &meter,
                    |t| t.saturating_add(HORIZON),
                    |ctx, log: &mut Vec<(Cycles, u32, u64)>, at, (cluster, id)| {
                        log.push((at, cluster, id));
                        if let Some((cat, cc, cid)) = cascade(nclusters, at, id) {
                            ctx.schedule(cat, cc, (cc, cid));
                        }
                    },
                );
                let events = sim.events_processed();
                let now = sim.now();
                let mut log: Vec<(Cycles, u32, u64)> =
                    sim.into_states().into_iter().flatten().collect();
                log.sort_by_key(|&(at, _, _)| at);
                (out, log, events, now)
            };
            let sequential = run(1);
            for shards in [2, 4] {
                prop_assert_eq!(&run(shards), &sequential, "shards={}", shards);
            }
            if let Err(abort) = &sequential.0 {
                prop_assert_eq!(abort.cause, AbortCause::CyclesExceeded);
                prop_assert!(sequential.3 <= max_cycles, "clock never passes the budget");
            }
        }
    }

    /// Pool-driven epoch advance is byte-stable across thread counts and
    /// identical to the unpooled run.
    #[test]
    fn pooled_runs_match_across_thread_counts() {
        let seeds: Vec<(u64, u64)> = (0..32).map(|i| (i % 7, i * 31 % ID_OFFSET)).collect();
        let reference = run_sharded(8, 4, DesQueue::Calendar, None, &seeds);
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let got = run_sharded(8, 4, DesQueue::Calendar, Some(&pool), &seeds);
            assert_eq!(got, reference, "threads={threads}");
        }
        assert_eq!(reference, run_oracle(8, &seeds));
    }

    /// A mid-run link fault mutates the latency graph; the epoch-bound
    /// closure recomputes the horizon and caps epochs at the fault time,
    /// and results stay identical to the 1-shard oracle throughout the
    /// death and the repair.
    #[test]
    fn horizon_recomputed_across_link_death_and_repair() {
        let nclusters = 4u32;
        let seeds: Vec<(u64, u64)> = (0..24).map(|i| (i % 5, i * 17 % ID_OFFSET)).collect();
        let fail_at = 6 * STRIDE;
        let recover_at = 12 * STRIDE;
        let run = |shards: u32| {
            let map = ShardMap::new(nclusters, shards);
            let mut network = net(Topology::Crossbar, nclusters);
            let mut sim: LogSim = ShardedSim::new(map, DesQueue::Calendar);
            for &(slot, id) in &seeds {
                let cluster = (id % u64::from(nclusters)) as u32;
                sim.schedule(slot * STRIDE + id % STRIDE, cluster, (cluster, id));
            }
            sim.run(
                None,
                |t| {
                    // Apply scheduled faults once the clock reaches them,
                    // then bound the epoch by the *current* lookahead and
                    // the next pending transition.
                    if t >= fail_at {
                        network.degrade_link(1, 16);
                    }
                    if t >= recover_at {
                        network.recover_link(1);
                    }
                    let horizon = lookahead_horizon(&network, &map);
                    let end = t.saturating_add(horizon.max(HORIZON));
                    let next_fault = [fail_at, recover_at]
                        .into_iter()
                        .find(|&f| f > t)
                        .unwrap_or(Cycles::MAX);
                    end.min(next_fault.max(t + 1))
                },
                |ctx, log, at, (cluster, id)| {
                    log.push((at, cluster, id));
                    if let Some((cat, cc, cid)) = cascade(nclusters, at, id) {
                        ctx.schedule(cat, cc, (cc, cid));
                    }
                },
            );
            let events = sim.events_processed();
            let mut log: Vec<(Cycles, u32, u64)> =
                sim.into_states().into_iter().flatten().collect();
            log.sort_by_key(|&(at, _, _)| at);
            (log, events)
        };
        let one = run(1);
        assert!(!one.0.is_empty());
        for shards in [2, 4] {
            assert_eq!(run(shards), one, "shards={shards}");
        }
    }

    /// The conservative contract is enforced: a cross-shard event inside
    /// the epoch panics instead of silently corrupting causality.
    #[test]
    #[should_panic(expected = "lookahead horizon")]
    fn undershooting_cross_shard_delay_panics() {
        let map = ShardMap::new(2, 2);
        let mut sim: ShardedSim<u64, ()> =
            ShardedSim::with_states(map, DesQueue::Calendar, vec![(), ()]);
        sim.schedule(0, 0, 1);
        sim.run(
            None,
            |t| t.saturating_add(1000),
            |ctx, (), at, _| {
                // Cluster 1 is the other shard; `at + 1` is inside the
                // epoch.
                ctx.schedule(at + 1, 1, 99);
            },
        );
    }

    /// Epochs actually happen: a two-shard ping-pong takes one barrier per
    /// horizon-separated exchange rather than free-running.
    #[test]
    fn epoch_counter_advances_with_barriers() {
        let map = ShardMap::new(2, 2);
        let mut sim: ShardedSim<u64, ()> =
            ShardedSim::with_states(map, DesQueue::Calendar, vec![(), ()]);
        sim.schedule(0, 0, 0);
        sim.run(
            None,
            |t| t.saturating_add(100),
            |ctx, (), at, hop| {
                if hop < 6 {
                    // Bounce to the other shard, one horizon later.
                    let dest = 1 - (hop % 2) as u32;
                    ctx.schedule(at + 100, dest, hop + 1);
                }
            },
        );
        assert_eq!(sim.events_processed(), 7);
        assert!(sim.epochs() >= 7, "each hop needs its own epoch");
    }
}
