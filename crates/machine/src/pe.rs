//! Processing elements.
//!
//! A PE is an abstract processor with a coarse instruction cost model. The
//! simulator does not interpret instructions; callers charge work to a PE in
//! units of [`CostClass`], and the PE tracks when it becomes free and how
//! many cycles it has been busy (its utilization).

use crate::config::CostModel;
use crate::Cycles;
use std::fmt;

/// Address of a processing element: cluster index plus index within the
/// cluster. PE 0 of each cluster is the kernel PE when the configuration
/// dedicates one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId {
    /// Cluster index.
    pub cluster: u32,
    /// PE index within the cluster.
    pub index: u32,
}

impl PeId {
    /// Construct a PE address.
    pub fn new(cluster: u32, index: u32) -> Self {
        PeId { cluster, index }
    }
}

impl fmt::Debug for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}.{}", self.cluster, self.index)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE({},{})", self.cluster, self.index)
    }
}

/// Classes of chargeable work, mapped to cycle costs by the
/// [`CostModel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostClass {
    /// Floating-point operations.
    Flop,
    /// Integer / control operations.
    IntOp,
    /// Shared-memory word accesses (same cluster).
    MemWord,
    /// Format-and-send of one message.
    MsgSend,
    /// Decode-and-dispatch of one message.
    MsgDispatch,
    /// Creation of one task activation record.
    TaskCreate,
    /// One context switch.
    ContextSwitch,
}

impl CostClass {
    /// The cycle cost of one unit of this class under `model`.
    pub fn cycles(self, model: &CostModel) -> Cycles {
        match self {
            CostClass::Flop => model.flop,
            CostClass::IntOp => model.int_op,
            CostClass::MemWord => model.mem_word,
            CostClass::MsgSend => model.msg_send,
            CostClass::MsgDispatch => model.msg_dispatch,
            CostClass::TaskCreate => model.task_create,
            CostClass::ContextSwitch => model.context_switch,
        }
    }
}

/// State of one processing element.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pe {
    /// Simulation time at which the PE finishes its current work.
    pub free_at: Cycles,
    /// Total cycles of charged work (for utilization).
    pub busy_cycles: Cycles,
    /// Whether the PE has been isolated by fault reconfiguration.
    pub failed: bool,
}

impl Pe {
    /// The state of a PE that has never been touched: free, idle, healthy.
    /// Sparse machine state reads untouched PEs as this value.
    pub const IDLE: Pe = Pe {
        free_at: 0,
        busy_cycles: 0,
        failed: false,
    };

    /// True if the PE can accept work at time `now` (free and not failed).
    pub fn available(&self, now: Cycles) -> bool {
        !self.failed && self.free_at <= now
    }

    /// Charge `count` units of `class` starting no earlier than `now`.
    /// Returns the completion time. Work on a busy PE queues behind the
    /// current work (the PE is serial).
    pub fn charge(
        &mut self,
        now: Cycles,
        class: CostClass,
        count: u64,
        model: &CostModel,
    ) -> Cycles {
        debug_assert!(!self.failed, "charging a failed PE");
        let start = self.free_at.max(now);
        let dur = class.cycles(model).saturating_mul(count);
        self.free_at = start + dur;
        self.busy_cycles += dur;
        self.free_at
    }

    /// Utilization over `[0, horizon]`: busy cycles divided by the horizon.
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_formats() {
        let id = PeId::new(2, 5);
        assert_eq!(format!("{id:?}"), "pe2.5");
        assert_eq!(format!("{id}"), "PE(2,5)");
    }

    #[test]
    fn fresh_pe_is_available() {
        let pe = Pe::default();
        assert!(pe.available(0));
        assert!(pe.available(100));
    }

    #[test]
    fn charging_makes_pe_busy_until_completion() {
        let model = CostModel::default();
        let mut pe = Pe::default();
        let done = pe.charge(10, CostClass::Flop, 5, &model);
        assert_eq!(done, 10 + 5 * model.flop);
        assert!(!pe.available(done - 1));
        assert!(pe.available(done));
    }

    #[test]
    fn work_queues_serially() {
        let model = CostModel::default();
        let mut pe = Pe::default();
        let d1 = pe.charge(0, CostClass::Flop, 10, &model);
        // Second charge at an earlier `now` still starts after d1.
        let d2 = pe.charge(0, CostClass::IntOp, 3, &model);
        assert_eq!(d2, d1 + 3 * model.int_op);
    }

    #[test]
    fn charge_after_idle_starts_at_now() {
        let model = CostModel::default();
        let mut pe = Pe::default();
        pe.charge(0, CostClass::IntOp, 1, &model);
        let done = pe.charge(1000, CostClass::IntOp, 1, &model);
        assert_eq!(done, 1000 + model.int_op);
    }

    #[test]
    fn failed_pe_is_unavailable() {
        let pe = Pe {
            failed: true,
            ..Pe::default()
        };
        assert!(!pe.available(0));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let model = CostModel::default();
        let mut pe = Pe::default();
        pe.charge(0, CostClass::Flop, 25, &model); // 100 cycles at flop=4
        assert!((pe.utilization(200) - 0.5).abs() < 1e-12);
        assert_eq!(pe.utilization(0), 0.0);
    }

    #[test]
    fn all_cost_classes_map_to_model_fields() {
        let model = CostModel::default();
        assert_eq!(CostClass::Flop.cycles(&model), model.flop);
        assert_eq!(CostClass::IntOp.cycles(&model), model.int_op);
        assert_eq!(CostClass::MemWord.cycles(&model), model.mem_word);
        assert_eq!(CostClass::MsgSend.cycles(&model), model.msg_send);
        assert_eq!(CostClass::MsgDispatch.cycles(&model), model.msg_dispatch);
        assert_eq!(CostClass::TaskCreate.cycles(&model), model.task_create);
        assert_eq!(
            CostClass::ContextSwitch.cycles(&model),
            model.context_switch
        );
    }
}
