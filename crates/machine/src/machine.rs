//! The assembled machine: PEs, cluster memories, network, stats, and fault
//! handling behind one facade.

use crate::config::MachineConfig;
use crate::memory::{ClusterMemory, OutOfMemory};
use crate::network::Network;
use crate::pe::{CostClass, Pe, PeId};
use crate::stats::Stats;
use crate::{Cycles, Words};
use fem2_trace::{EventKind, TraceEvent, TraceHandle, NO_CLUSTER, NO_PE};
use std::fmt;

/// The trace-vocabulary equivalent of a [`CostClass`].
pub fn trace_cost_kind(class: CostClass) -> fem2_trace::CostKind {
    use fem2_trace::CostKind as K;
    match class {
        CostClass::Flop => K::Flop,
        CostClass::IntOp => K::IntOp,
        CostClass::MemWord => K::MemWord,
        CostClass::MsgSend => K::MsgSend,
        CostClass::MsgDispatch => K::MsgDispatch,
        CostClass::TaskCreate => K::TaskCreate,
        CostClass::ContextSwitch => K::ContextSwitch,
    }
}

/// Errors surfaced by machine operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MachineError {
    /// A cluster's shared memory was exhausted.
    OutOfMemory(OutOfMemory),
    /// A PE address does not exist in this configuration.
    NoSuchPe(PeId),
    /// Work was assigned to an isolated (failed) PE.
    PeFailed(PeId),
    /// Every PE in the cluster has failed; the cluster is dead.
    ClusterDead(u32),
    /// Dead links leave no live route between the two clusters.
    ClusterUnreachable {
        /// Source cluster.
        from: u32,
        /// Destination cluster.
        to: u32,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfMemory(e) => write!(f, "{e}"),
            MachineError::NoSuchPe(pe) => write!(f, "no such PE {pe}"),
            MachineError::PeFailed(pe) => write!(f, "PE {pe} is isolated"),
            MachineError::ClusterDead(c) => write!(f, "cluster {c} has no surviving PEs"),
            MachineError::ClusterUnreachable { from, to } => {
                write!(f, "no live route from cluster {from} to cluster {to}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<OutOfMemory> for MachineError {
    fn from(e: OutOfMemory) -> Self {
        MachineError::OutOfMemory(e)
    }
}

/// The simulated FEM-2 machine.
///
/// Owns every hardware resource; the kernel layer (`fem2-kernel`) drives it
/// through an event loop. All operations are deterministic.
pub struct Machine {
    /// The configuration the machine was built from.
    pub config: MachineConfig,
    /// Per-cluster PE state, allocated on first touch (charge or fault).
    /// `None` reads as a cluster of [`Pe::IDLE`]: on large machines only
    /// the clusters that actually run work pay for PE records.
    lanes: Vec<Option<Box<[Pe]>>>,
    memories: Vec<ClusterMemory>,
    /// The inter-cluster network.
    pub network: Network,
    /// Measurement counters.
    pub stats: Stats,
    /// Current kernel PE index per cluster (normally 0; changes on
    /// reconfiguration).
    kernel_pe: Vec<u32>,
    /// Number of fault-isolation reconfigurations performed.
    pub reconfigurations: u64,
    /// Monotone count of machine-level events: every successful charge and
    /// every remote transfer. The engine-throughput counter benches report
    /// as events/sec for plate scenarios (kernel scenarios additionally
    /// count DES dispatches).
    pub events: u64,
    /// Event tracing. Disabled by default: instrumentation is observation
    /// only and costs a single branch when off.
    pub trace: TraceHandle,
}

impl Machine {
    /// Build a machine from a validated configuration.
    ///
    /// # Panics
    /// Panics if `config.validate()` fails — configurations are meant to be
    /// validated (or produced by presets) before construction.
    pub fn new(config: MachineConfig) -> Self {
        config.validate().expect("invalid machine configuration");
        let lanes = vec![None; config.clusters as usize];
        let memories = (0..config.clusters)
            .map(|c| ClusterMemory::new(c, config.memory_per_cluster))
            .collect();
        let network = Network::new(&config);
        let kernel_pe = vec![0; config.clusters as usize];
        Machine {
            config,
            lanes,
            memories,
            network,
            stats: Stats::new(),
            kernel_pe,
            reconfigurations: 0,
            events: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace sink. All machine-level events (PE busy spans, link
    /// transfers, memory traffic) flow to it; pass
    /// [`TraceHandle::disabled`] to detach.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Enter a named measurement phase at simulated time `at`: switches the
    /// stats phase and informs the trace sink.
    pub fn phase(&mut self, name: &str, at: Cycles) {
        self.stats.phase(name);
        self.trace.begin_phase(name, at);
    }

    fn check(&self, pe: PeId) -> Result<(), MachineError> {
        if pe.cluster >= self.config.clusters || pe.index >= self.config.pes_per_cluster {
            return Err(MachineError::NoSuchPe(pe));
        }
        Ok(())
    }

    /// Current state of an in-range PE, by value. Untouched clusters read
    /// as [`Pe::IDLE`] without allocating their lane.
    fn pe_state(&self, pe: PeId) -> Pe {
        self.lanes[pe.cluster as usize]
            .as_ref()
            .map_or(Pe::IDLE, |lane| lane[pe.index as usize])
    }

    /// Mutable access to an in-range PE, allocating the cluster's lane on
    /// first touch.
    fn pe_state_mut(&mut self, pe: PeId) -> &mut Pe {
        let ppc = self.config.pes_per_cluster as usize;
        let lane = self.lanes[pe.cluster as usize]
            .get_or_insert_with(|| vec![Pe::IDLE; ppc].into_boxed_slice());
        &mut lane[pe.index as usize]
    }

    /// Read access to a PE.
    pub fn pe(&self, pe: PeId) -> Result<&Pe, MachineError> {
        self.check(pe)?;
        Ok(self.lanes[pe.cluster as usize]
            .as_ref()
            .map_or(&Pe::IDLE, |lane| &lane[pe.index as usize]))
    }

    /// Number of clusters whose PE lane has been allocated (touched by a
    /// charge or a fault) — the cluster-side O(active) memory proxy.
    pub fn allocated_cluster_records(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }

    /// All PE ids in cluster `c`.
    pub fn cluster_pes(&self, c: u32) -> impl Iterator<Item = PeId> + '_ {
        (0..self.config.pes_per_cluster).map(move |i| PeId::new(c, i))
    }

    /// The current kernel PE of cluster `c`.
    pub fn kernel_pe(&self, c: u32) -> PeId {
        PeId::new(c, self.kernel_pe[c as usize])
    }

    /// PEs of cluster `c` eligible for user work at any time: alive, and not
    /// the kernel PE when the configuration dedicates one.
    pub fn worker_pes(&self, c: u32) -> Vec<PeId> {
        let dedicated = self.config.dedicated_kernel_pe && self.alive_count(c) > 1;
        self.cluster_pes(c)
            .filter(|&pe| {
                if self.pe_state(pe).failed {
                    return false;
                }
                if dedicated && pe.index == self.kernel_pe[c as usize] {
                    return false;
                }
                true
            })
            .collect()
    }

    /// Number of surviving PEs in cluster `c`.
    pub fn alive_count(&self, c: u32) -> u32 {
        match &self.lanes[c as usize] {
            None => self.config.pes_per_cluster,
            Some(lane) => lane.iter().filter(|p| !p.failed).count() as u32,
        }
    }

    /// Earliest-free eligible worker PE of cluster `c` ("assigns available
    /// PE's to process them"). `None` if the cluster is dead.
    pub fn pick_worker(&self, c: u32) -> Option<PeId> {
        self.worker_pes(c)
            .into_iter()
            .min_by_key(|&pe| (self.pe_state(pe).free_at, pe.index))
    }

    /// Charge `count` units of `class` to `pe`, starting no earlier than
    /// `now`; returns the completion time. Also records the work in stats.
    pub fn charge(
        &mut self,
        now: Cycles,
        pe: PeId,
        class: CostClass,
        count: u64,
    ) -> Result<Cycles, MachineError> {
        self.check(pe)?;
        if self.pe_state(pe).failed {
            return Err(MachineError::PeFailed(pe));
        }
        match class {
            CostClass::Flop => self.stats.flops(count),
            CostClass::IntOp => self.stats.int_ops(count),
            CostClass::MemWord => self.stats.mem_words(count),
            CostClass::TaskCreate => {
                for _ in 0..count {
                    self.stats.task_created();
                }
            }
            _ => {}
        }
        let cost = self.config.cost;
        let state = self.pe_state_mut(pe);
        let start = state.free_at.max(now);
        let done = state.charge(now, class, count, &cost);
        self.trace.emit(|| {
            TraceEvent::span(
                start,
                done - start,
                pe.cluster,
                pe.index,
                EventKind::PeBusy {
                    cost: trace_cost_kind(class),
                    count,
                },
            )
        });
        self.events += 1;
        Ok(done)
    }

    /// Allocate `words` in cluster `c`'s shared memory.
    pub fn alloc(&mut self, c: u32, words: Words) -> Result<(), MachineError> {
        self.alloc_at(0, c, words)
    }

    /// Like [`Machine::alloc`], stamping the trace event with simulated time
    /// `now` (callers that know the clock should prefer this).
    pub fn alloc_at(&mut self, now: Cycles, c: u32, words: Words) -> Result<(), MachineError> {
        self.memories[c as usize].alloc(words)?;
        let in_use = self.memories[c as usize].used();
        self.trace
            .emit(|| TraceEvent::instant(now, c, NO_PE, EventKind::Alloc { words, in_use }));
        Ok(())
    }

    /// Free `words` in cluster `c`'s shared memory.
    pub fn free(&mut self, c: u32, words: Words) {
        self.free_at(0, c, words);
    }

    /// Like [`Machine::free`], stamping the trace event with simulated time
    /// `now`.
    pub fn free_at(&mut self, now: Cycles, c: u32, words: Words) {
        self.memories[c as usize].free(words);
        let in_use = self.memories[c as usize].used();
        self.trace
            .emit(|| TraceEvent::instant(now, c, NO_PE, EventKind::Free { words, in_use }));
    }

    /// Read access to a cluster memory.
    pub fn memory(&self, c: u32) -> &ClusterMemory {
        &self.memories[c as usize]
    }

    /// Transmit a message and record it in stats. Returns arrival time.
    ///
    /// # Panics
    /// Panics if dead links leave no route; reliability-aware callers use
    /// [`Machine::try_transmit`].
    pub fn transmit(&mut self, now: Cycles, from: u32, to: u32, words: Words) -> Cycles {
        self.try_transmit(now, from, to, words)
            .expect("no live route between clusters")
    }

    /// Fallible [`Machine::transmit`]: charges nothing and returns
    /// [`MachineError::ClusterUnreachable`] when no live route exists.
    pub fn try_transmit(
        &mut self,
        now: Cycles,
        from: u32,
        to: u32,
        words: Words,
    ) -> Result<Cycles, MachineError> {
        let packets_before = self.network.packets;
        let t = self
            .network
            .try_transmit(now, from, to, words)
            .ok_or(MachineError::ClusterUnreachable { from, to })?;
        if from != to {
            self.stats.message(words);
            let packets = (self.network.packets - packets_before) as u32;
            self.trace.emit(|| {
                TraceEvent::span(
                    now,
                    t - now,
                    from,
                    NO_PE,
                    EventKind::LinkTransfer {
                        to_cluster: to,
                        words,
                        packets,
                    },
                )
            });
            self.events += 1;
        }
        Ok(t)
    }

    /// Run `f` over per-shard mutable sections of this machine's PEs,
    /// merging results back deterministically.
    ///
    /// The PE array is cluster-major, and [`ShardMap`] shards are
    /// contiguous cluster ranges, so each [`ShardSection`] is a disjoint
    /// subslice — `f` may advance all of them concurrently (e.g. via
    /// [`fem2_par::each_mut`]). Afterwards the sections' scratch state is
    /// folded back in shard order: counters into the current stats phase,
    /// buffered trace events in shard order (ascending cluster order — the
    /// order the sequential path emits), and the event counter summed.
    /// Since all merges are order-fixed, the outcome is byte-identical for
    /// every thread count.
    ///
    /// The network, memories, and fault state are *not* exposed to
    /// sections: cross-cluster traffic and reconfiguration stay in
    /// sequential code between sections, which is exactly the epoch-barrier
    /// discipline of the sharded DES backend.
    ///
    /// # Panics
    /// Panics if `map` was built for a different cluster count.
    pub fn run_sharded<R>(
        &mut self,
        map: &crate::shard::ShardMap,
        f: impl FnOnce(&mut [crate::shard::ShardSection<'_>]) -> R,
    ) -> R {
        assert_eq!(
            map.clusters(),
            self.config.clusters,
            "shard map does not match this machine"
        );
        let trace_on = self.trace.is_enabled();
        let mut sections = Vec::with_capacity(map.shards() as usize);
        let mut rest: &mut [Option<Box<[Pe]>>] = &mut self.lanes;
        for shard in 0..map.shards() {
            let range = map.clusters_of(shard);
            let count = (range.end - range.start) as usize;
            let (head, tail) = rest.split_at_mut(count);
            rest = tail;
            sections.push(crate::shard::ShardSection::new(
                head,
                range.start,
                &self.config,
                &self.kernel_pe,
                trace_on,
            ));
        }
        let out = f(&mut sections);
        for section in sections {
            self.stats.absorb(&section.counters);
            self.events += section.events;
            for ev in section.trace_buf {
                self.trace.emit(move || ev);
            }
        }
        out
    }

    /// Peak memory usage across clusters, in words.
    pub fn peak_memory(&self) -> Words {
        self.memories
            .iter()
            .map(|m| m.high_water())
            .max()
            .unwrap_or(0)
    }

    /// Total memory high-water summed over clusters, in words.
    pub fn total_memory_high_water(&self) -> Words {
        self.memories.iter().map(|m| m.high_water()).sum()
    }

    /// Isolate a failed PE. If it was the cluster's kernel PE, promote the
    /// lowest-indexed survivor. Returns [`MachineError::ClusterDead`] if no
    /// PE survives.
    pub fn fail_pe(&mut self, pe: PeId) -> Result<(), MachineError> {
        self.check(pe)?;
        if self.pe_state(pe).failed {
            return Ok(()); // already isolated
        }
        self.pe_state_mut(pe).failed = true;
        self.reconfigurations += 1;
        let c = pe.cluster;
        if self.alive_count(c) == 0 {
            return Err(MachineError::ClusterDead(c));
        }
        if self.kernel_pe[c as usize] == pe.index {
            // Promote the lowest-indexed surviving PE to kernel duty.
            let successor = self
                .cluster_pes(c)
                .find(|&p| !self.pe_state(p).failed)
                .expect("alive_count > 0");
            self.kernel_pe[c as usize] = successor.index;
        }
        Ok(())
    }

    /// A transiently failed PE recovers at time `at`: it rejoins the free
    /// pool but does **not** reclaim kernel duty it was promoted away from
    /// (unless the cluster has no live kernel PE, i.e. it was dead).
    pub fn recover_pe(&mut self, at: Cycles, pe: PeId) -> Result<(), MachineError> {
        self.check(pe)?;
        if !self.pe_state(pe).failed {
            return Ok(()); // never failed, or already recovered
        }
        let state = self.pe_state_mut(pe);
        state.failed = false;
        state.free_at = state.free_at.max(at);
        self.reconfigurations += 1;
        let c = pe.cluster as usize;
        let kp = PeId::new(pe.cluster, self.kernel_pe[c]);
        if self.pe_state(kp).failed {
            self.kernel_pe[c] = pe.index;
        }
        self.trace
            .emit(|| TraceEvent::instant(at, pe.cluster, pe.index, EventKind::PeRecover));
        Ok(())
    }

    /// Kill a network link at time `at`.
    pub fn fail_link(&mut self, at: Cycles, link: usize) {
        self.network.fail_link(link);
        self.reconfigurations += 1;
        self.trace.emit(|| {
            TraceEvent::instant(
                at,
                NO_CLUSTER,
                NO_PE,
                EventKind::LinkFault {
                    link: link as u32,
                    degrade: 0,
                },
            )
        });
    }

    /// Degrade a network link at time `at`: occupancy multiplied by
    /// `factor`.
    pub fn degrade_link(&mut self, at: Cycles, link: usize, factor: u32) {
        self.network.degrade_link(link, factor);
        self.reconfigurations += 1;
        self.trace.emit(|| {
            TraceEvent::instant(
                at,
                NO_CLUSTER,
                NO_PE,
                EventKind::LinkFault {
                    link: link as u32,
                    degrade: factor.max(1),
                },
            )
        });
    }

    /// Restore a network link to full health at time `at`: a dead link is
    /// revived and any degradation cleared, so detoured routes snap back
    /// to the primary path.
    pub fn recover_link(&mut self, at: Cycles, link: usize) {
        self.network.recover_link(link);
        self.reconfigurations += 1;
        self.trace.emit(|| {
            TraceEvent::instant(
                at,
                NO_CLUSTER,
                NO_PE,
                EventKind::LinkRecover { link: link as u32 },
            )
        });
    }

    /// A memory bank of `words` capacity fails in cluster `c` at time `at`.
    /// Returns the words of live allocations that no longer fit; the caller
    /// (the kernel) must invalidate victims to bring usage back within
    /// capacity.
    pub fn fail_memory_bank(&mut self, at: Cycles, c: u32, words: Words) -> Words {
        let lost = self.memories[c as usize].fail_bank(words);
        self.reconfigurations += 1;
        self.trace
            .emit(|| TraceEvent::instant(at, c, NO_PE, EventKind::MemFault { words, lost }));
        lost
    }

    /// Aggregate busy cycles over all PEs (for machine utilization).
    /// Untouched clusters contribute zero and are skipped.
    pub fn total_busy_cycles(&self) -> Cycles {
        self.lanes
            .iter()
            .flatten()
            .flat_map(|lane| lane.iter())
            .map(|p| p.busy_cycles)
            .sum()
    }

    /// The latest `free_at` across all PEs: when the machine finishes all
    /// charged work. Untouched clusters are free at time 0.
    pub fn makespan(&self) -> Cycles {
        self.lanes
            .iter()
            .flatten()
            .flat_map(|lane| lane.iter())
            .map(|p| p.free_at)
            .max()
            .unwrap_or(0)
    }

    /// Machine utilization over `[0, horizon]`: mean PE busy fraction,
    /// counting only surviving PEs. PEs in untouched clusters are alive
    /// and idle, so they dilute the mean exactly as dense state did.
    pub fn utilization(&self, horizon: Cycles) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let mut failed = 0u64;
        let mut sum = 0.0;
        for lane in self.lanes.iter().flatten() {
            for p in lane.iter() {
                if p.failed {
                    failed += 1;
                } else {
                    sum += p.utilization(horizon);
                }
            }
        }
        let alive = u64::from(self.config.total_pes()) - failed;
        if alive == 0 {
            return 0.0;
        }
        sum / alive as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;

    fn machine() -> Machine {
        Machine::new(MachineConfig::clustered(2, 4, Topology::Crossbar))
    }

    #[test]
    fn construction_shapes_resources() {
        let m = machine();
        assert_eq!(m.cluster_pes(0).count(), 4);
        assert_eq!(m.memory(0).capacity(), m.config.memory_per_cluster);
        assert_eq!(m.kernel_pe(0), PeId::new(0, 0));
        assert_eq!(m.kernel_pe(1), PeId::new(1, 0));
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn invalid_config_panics() {
        let mut c = MachineConfig::fem2_default();
        c.clusters = 0;
        Machine::new(c);
    }

    #[test]
    fn worker_pes_exclude_kernel_pe() {
        let m = machine();
        let workers = m.worker_pes(0);
        assert_eq!(workers.len(), 3);
        assert!(!workers.contains(&PeId::new(0, 0)));
    }

    #[test]
    fn single_pe_cluster_kernel_also_works() {
        let m = Machine::new(MachineConfig::fem1_style(4));
        let workers = m.worker_pes(0);
        assert_eq!(workers, vec![PeId::new(0, 0)]);
    }

    #[test]
    fn charge_records_stats_and_advances_pe() {
        let mut m = machine();
        let pe = PeId::new(0, 1);
        let done = m.charge(0, pe, CostClass::Flop, 10).unwrap();
        assert_eq!(done, 10 * m.config.cost.flop);
        assert_eq!(m.stats.total().flops, 10);
        assert_eq!(m.pe(pe).unwrap().busy_cycles, done);
    }

    #[test]
    fn charge_unknown_pe_errors() {
        let mut m = machine();
        assert!(matches!(
            m.charge(0, PeId::new(9, 0), CostClass::Flop, 1),
            Err(MachineError::NoSuchPe(_))
        ));
        assert!(matches!(
            m.charge(0, PeId::new(0, 9), CostClass::Flop, 1),
            Err(MachineError::NoSuchPe(_))
        ));
    }

    #[test]
    fn pick_worker_prefers_earliest_free() {
        let mut m = machine();
        // Busy up PE 1 and 2; PE 3 is free.
        m.charge(0, PeId::new(0, 1), CostClass::Flop, 100).unwrap();
        m.charge(0, PeId::new(0, 2), CostClass::Flop, 50).unwrap();
        assert_eq!(m.pick_worker(0), Some(PeId::new(0, 3)));
    }

    #[test]
    fn pick_worker_tie_breaks_by_index() {
        let m = machine();
        assert_eq!(m.pick_worker(0), Some(PeId::new(0, 1)));
    }

    #[test]
    fn transmit_counts_remote_only() {
        let mut m = machine();
        m.transmit(0, 0, 1, 16);
        m.transmit(0, 1, 1, 16);
        assert_eq!(m.stats.total().messages, 1);
        assert_eq!(m.stats.total().msg_words, 16);
        assert_eq!(m.network.messages, 1);
    }

    #[test]
    fn memory_alloc_free_via_machine() {
        let mut m = machine();
        m.alloc(0, 1000).unwrap();
        m.alloc(1, 500).unwrap();
        m.free(0, 400);
        assert_eq!(m.memory(0).used(), 600);
        assert_eq!(m.peak_memory(), 1000);
        assert_eq!(m.total_memory_high_water(), 1500);
        let cap = m.memory(0).capacity();
        assert!(matches!(m.alloc(0, cap), Err(MachineError::OutOfMemory(_))));
    }

    #[test]
    fn fail_pe_isolates_and_charging_fails() {
        let mut m = machine();
        let pe = PeId::new(0, 2);
        m.fail_pe(pe).unwrap();
        assert_eq!(m.alive_count(0), 3);
        assert!(matches!(
            m.charge(0, pe, CostClass::Flop, 1),
            Err(MachineError::PeFailed(_))
        ));
        assert!(!m.worker_pes(0).contains(&pe));
        assert_eq!(m.reconfigurations, 1);
        // Idempotent.
        m.fail_pe(pe).unwrap();
        assert_eq!(m.reconfigurations, 1);
    }

    #[test]
    fn kernel_pe_failure_promotes_successor() {
        let mut m = machine();
        m.fail_pe(PeId::new(0, 0)).unwrap();
        assert_eq!(m.kernel_pe(0), PeId::new(0, 1));
        // Now PE 1 is the kernel PE; workers are 2 and 3.
        let workers = m.worker_pes(0);
        assert_eq!(workers, vec![PeId::new(0, 2), PeId::new(0, 3)]);
    }

    #[test]
    fn last_pe_failure_kills_cluster() {
        let mut m = Machine::new(MachineConfig::clustered(1, 2, Topology::Bus));
        m.fail_pe(PeId::new(0, 0)).unwrap();
        let err = m.fail_pe(PeId::new(0, 1)).unwrap_err();
        assert_eq!(err, MachineError::ClusterDead(0));
        assert_eq!(m.pick_worker(0), None);
    }

    #[test]
    fn makespan_and_utilization() {
        let mut m = machine();
        m.charge(0, PeId::new(0, 1), CostClass::Flop, 25).unwrap(); // 100 cycles
        assert_eq!(m.makespan(), 100);
        assert_eq!(m.total_busy_cycles(), 100);
        // 1 of 8 PEs busy half of a 200-cycle horizon.
        let u = m.utilization(200);
        assert!((u - 0.5 / 8.0).abs() < 1e-12, "u = {u}");
        assert_eq!(m.utilization(0), 0.0);
    }

    #[test]
    fn recovered_pe_rejoins_but_does_not_reclaim_kernel_duty() {
        let mut m = machine();
        m.fail_pe(PeId::new(0, 0)).unwrap();
        assert_eq!(m.kernel_pe(0), PeId::new(0, 1));
        m.recover_pe(5_000, PeId::new(0, 0)).unwrap();
        // Back in the worker pool, not back on kernel duty.
        assert_eq!(m.kernel_pe(0), PeId::new(0, 1));
        assert!(m.worker_pes(0).contains(&PeId::new(0, 0)));
        assert!(m.pe(PeId::new(0, 0)).unwrap().free_at >= 5_000);
        assert_eq!(m.reconfigurations, 2);
        // Recovering a healthy PE is a no-op.
        m.recover_pe(6_000, PeId::new(0, 0)).unwrap();
        assert_eq!(m.reconfigurations, 2);
    }

    #[test]
    fn recovery_revives_a_dead_cluster() {
        let mut m = Machine::new(MachineConfig::clustered(1, 2, Topology::Bus));
        m.fail_pe(PeId::new(0, 0)).unwrap();
        m.fail_pe(PeId::new(0, 1)).unwrap_err();
        m.recover_pe(1_000, PeId::new(0, 1)).unwrap();
        // The recovered PE takes kernel duty: the previous kernel PE is dead.
        assert_eq!(m.kernel_pe(0), PeId::new(0, 1));
        assert_eq!(m.pick_worker(0), Some(PeId::new(0, 1)));
    }

    #[test]
    fn dead_link_makes_transmit_fallible() {
        let mut m = machine();
        // 2-cluster crossbar: direct link 0 -> 1 is id 1; no intermediate
        // cluster exists, so the pair is unreachable.
        m.fail_link(100, 1);
        assert_eq!(
            m.try_transmit(100, 0, 1, 16),
            Err(MachineError::ClusterUnreachable { from: 0, to: 1 })
        );
        // The reverse link is untouched.
        assert!(m.try_transmit(100, 1, 0, 16).is_ok());
        assert_eq!(m.reconfigurations, 1);
    }

    #[test]
    fn memory_bank_fault_reports_invalidated_words() {
        let mut m = machine();
        let cap = m.memory(0).capacity();
        m.alloc(0, cap - 100).unwrap();
        let lost = m.fail_memory_bank(500, 0, 200);
        assert_eq!(lost, 100);
        assert_eq!(m.memory(0).capacity(), cap - 200);
        assert_eq!(m.reconfigurations, 1);
    }

    /// One deterministic charge script, three executions — sequential
    /// facade, sharded sections advanced in-order, sharded sections
    /// advanced concurrently on a pool — must agree bitwise: same PE
    /// states, same stats, same recorded trace, same event count.
    #[test]
    fn run_sharded_matches_sequential_charging() {
        use crate::shard::ShardMap;
        use fem2_trace::{RingRecorder, TraceHandle};
        use std::sync::{Arc, Mutex};

        let clusters = 6u32;
        // Per-cluster scripts, processed cluster-ascending like the plate
        // path's task order: (now, class, count) per step.
        let script: Vec<Vec<(Cycles, CostClass, u64)>> = (0..clusters)
            .map(|c| {
                (0..10u64)
                    .map(|i| {
                        let class = match (c as u64 + i) % 4 {
                            0 => CostClass::Flop,
                            1 => CostClass::IntOp,
                            2 => CostClass::MemWord,
                            _ => CostClass::TaskCreate,
                        };
                        (i * 13 + c as u64 * 7, class, 1 + (i + c as u64) % 5)
                    })
                    .collect()
            })
            .collect();

        let build = || {
            let mut m = Machine::new(MachineConfig::clustered(clusters, 4, Topology::Crossbar));
            let rec = Arc::new(Mutex::new(RingRecorder::new(4096)));
            m.set_trace(TraceHandle::new(rec.clone()));
            m.stats.phase("plate");
            (m, rec)
        };
        let snapshot = |m: &Machine, rec: &Arc<Mutex<RingRecorder>>| {
            let pes: Vec<Pe> = (0..clusters)
                .flat_map(|c| m.cluster_pes(c))
                .map(|pe| *m.pe(pe).unwrap())
                .collect();
            let events: Vec<fem2_trace::TraceEvent> =
                rec.lock().unwrap().events().copied().collect();
            (pes, m.stats.total(), events, m.events, m.makespan())
        };

        // Sequential reference.
        let (mut seq, seq_rec) = build();
        for (c, steps) in script.iter().enumerate() {
            for &(now, class, count) in steps {
                let pe = seq.pick_worker(c as u32).unwrap();
                seq.charge(now, pe, class, count).unwrap();
            }
        }
        let expected = snapshot(&seq, &seq_rec);
        assert!(expected.3 > 0, "events counter advanced");
        assert!(!expected.2.is_empty(), "trace recorded");

        for shards in [1u32, 2, 3, 6] {
            let map = ShardMap::new(clusters, shards);
            // In-order sections.
            let (mut m, rec) = build();
            m.run_sharded(&map, |sections| {
                for sec in sections.iter_mut() {
                    for c in sec.first_cluster()..sec.first_cluster() + sec.cluster_count() {
                        for &(now, class, count) in &script[c as usize] {
                            let pe = sec.pick_worker(c).unwrap();
                            sec.charge(now, pe, class, count).unwrap();
                        }
                    }
                }
            });
            assert_eq!(snapshot(&m, &rec), expected, "in-order, shards={shards}");

            // Pool-concurrent sections.
            let (mut m, rec) = build();
            let pool = fem2_par::Pool::new(4);
            m.run_sharded(&map, |sections| {
                fem2_par::each_mut(&pool, sections, |_, sec| {
                    for c in sec.first_cluster()..sec.first_cluster() + sec.cluster_count() {
                        for &(now, class, count) in &script[c as usize] {
                            let pe = sec.pick_worker(c).unwrap();
                            sec.charge(now, pe, class, count).unwrap();
                        }
                    }
                });
            });
            assert_eq!(snapshot(&m, &rec), expected, "pooled, shards={shards}");
        }
    }

    #[test]
    fn sharded_sections_mirror_worker_policy() {
        use crate::shard::ShardMap;
        let mut m = machine(); // 2 clusters x 4 PEs, dedicated kernel PE
        let map = ShardMap::new(2, 2);
        m.run_sharded(&map, |sections| {
            // Kernel PE excluded, earliest-free wins, index tie-break —
            // the exact Machine::pick_worker policy.
            assert_eq!(sections[0].pick_worker(0), Some(PeId::new(0, 1)));
            assert_eq!(sections[1].pick_worker(1), Some(PeId::new(1, 1)));
            assert_eq!(sections[0].kernel_pe(0), PeId::new(0, 0));
            sections[0]
                .charge(0, PeId::new(0, 1), CostClass::Flop, 100)
                .unwrap();
            assert_eq!(sections[0].pick_worker(0), Some(PeId::new(0, 2)));
            // Out-of-section PEs are rejected, not silently charged.
            assert!(matches!(
                sections[0].charge(0, PeId::new(1, 0), CostClass::Flop, 1),
                Err(MachineError::NoSuchPe(_))
            ));
        });
        assert_eq!(m.stats.total().flops, 100);
        assert_eq!(m.events, 1);
    }

    #[test]
    fn machine_events_counts_charges_and_remote_transfers() {
        let mut m = machine();
        assert_eq!(m.events, 0);
        m.charge(0, PeId::new(0, 1), CostClass::Flop, 10).unwrap();
        m.transmit(0, 0, 1, 16); // remote: counts
        m.transmit(0, 1, 1, 16); // local: does not
        let _ = m.charge(0, PeId::new(9, 0), CostClass::Flop, 1); // error: does not
        assert_eq!(m.events, 2);
    }

    /// Cluster PE lanes allocate on first touch only; untouched clusters
    /// read as idle without materializing records.
    #[test]
    fn cluster_pe_lanes_allocate_lazily() {
        let mut m = Machine::new(MachineConfig::clustered(64, 8, Topology::Crossbar));
        assert_eq!(m.allocated_cluster_records(), 0);
        assert_eq!(m.pe(PeId::new(63, 7)).unwrap(), &Pe::IDLE);
        assert_eq!(m.pick_worker(63), Some(PeId::new(63, 1)));
        assert_eq!(m.alive_count(63), 8);
        assert_eq!(m.allocated_cluster_records(), 0, "reads do not allocate");
        m.charge(0, PeId::new(3, 1), CostClass::Flop, 10).unwrap();
        m.charge(0, PeId::new(3, 2), CostClass::Flop, 10).unwrap();
        m.fail_pe(PeId::new(9, 0)).unwrap();
        assert_eq!(
            m.allocated_cluster_records(),
            2,
            "one lane per touched cluster"
        );
        assert_eq!(m.makespan(), 40);
        assert_eq!(m.total_busy_cycles(), 80);
    }

    #[test]
    fn error_display() {
        let e = MachineError::NoSuchPe(PeId::new(1, 2));
        assert!(e.to_string().contains("PE(1,2)"));
        assert!(MachineError::ClusterDead(3)
            .to_string()
            .contains("cluster 3"));
    }
}
