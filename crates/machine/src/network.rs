//! The common communication network between clusters.
//!
//! Six topologies ([`Topology`]) with per-link contention and
//! store-and-forward packet transmission. Large messages are segmented into
//! packets of at most `max_packet_words` payload, each charged a header —
//! this is how the simulator honours the "large messages" requirement while
//! still modeling finite link buffers. Packets of one message pipeline
//! across the path (a later link can carry packet *k* while an earlier link
//! carries packet *k+1*), which matters for the E5 message-size sweeps.
//!
//! All state is deterministic: links are FIFO resources with a `free_at`
//! time, and arrival times depend only on the sequence of `transmit` calls.
//!
//! Link state is *sparse*: the topology defines a link-id space (up to
//! `n²` ids for a crossbar), but per-link records (reservation time, busy
//! cycles, fault state) live in a slab allocated on first touch, so memory
//! scales with the links that actually carry traffic or carry a fault —
//! not with the topology size. Links without a record behave as healthy
//! and idle. Slab order never influences results: every behavior is keyed
//! by link id, and the aggregate reports (max/total busy) are
//! order-independent, so allocation history is invisible to outcomes.
//!
//! Route selection is cached: the route for a `(from, to)` pair is computed
//! once and reused until the link-fault state changes
//! ([`Network::fail_link`], [`Network::degrade_link`], and
//! [`Network::recover_link`] clear the table wholesale). The cache is a
//! map over *touched* pairs, not an `n²` table. The hot paths —
//! [`Network::try_transmit`] per packet and [`Network::estimate`] per
//! retransmission-timeout computation — then serve routes out of the cache
//! instead of re-deriving and re-allocating the path per message. Cached
//! and uncached runs are bitwise identical: the cache stores exactly what
//! [`Network::compute_route`] would return.

use crate::config::{MachineConfig, Topology};
use crate::{Cycles, Words};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Per-link hot state, allocated on first touch (traffic or fault).
///
/// Structure-of-arrays over slab slots: the transmit inner loop walks
/// `free`/`busy`/`degrade` by slot index after one id→slot resolution per
/// route, so packet contention never pays a map lookup.
#[derive(Clone, Debug, Default)]
struct LinkSlab {
    /// Link id → slot index. A `BTreeMap` keeps iteration deterministic
    /// (the determinism lint bans hashed collections in the engine).
    index: BTreeMap<usize, usize>,
    /// Next-free time per slot.
    free: Vec<Cycles>,
    /// Cumulative busy cycles per slot (for utilization reports).
    busy: Vec<Cycles>,
    /// Dead links (packets cannot traverse; routes detour where possible).
    dead: Vec<bool>,
    /// Per-link occupancy multiplier (1 = healthy).
    degrade: Vec<u32>,
}

impl LinkSlab {
    /// Slot for `link`, allocating a healthy idle record on first touch.
    fn ensure(&mut self, link: usize) -> usize {
        if let Some(&slot) = self.index.get(&link) {
            return slot;
        }
        let slot = self.free.len();
        self.index.insert(link, slot);
        self.free.push(0);
        self.busy.push(0);
        self.dead.push(false);
        self.degrade.push(1);
        slot
    }

    /// Read-only probes: untouched links are healthy and idle.
    fn is_dead(&self, link: usize) -> bool {
        self.index.get(&link).is_some_and(|&s| self.dead[s])
    }

    fn degrade_of(&self, link: usize) -> u32 {
        self.index.get(&link).map_or(1, |&s| self.degrade[s])
    }

    /// Number of allocated link records (the O(active) memory proxy).
    fn len(&self) -> usize {
        self.free.len()
    }
}

/// The inter-cluster network: topology, per-link reservation times, and
/// traffic counters.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    clusters: u32,
    link_latency: Cycles,
    words_per_cycle: u32,
    max_packet_words: Words,
    header_words: Words,
    /// Size of the topology's link-id space (not the allocated records).
    links: usize,
    /// Sparse per-link state, allocated on first touch.
    slab: LinkSlab,
    /// Whether route lookups memoize (config `route_cache`; off = the
    /// reference path that recomputes every route, for determinism tests).
    cache_enabled: bool,
    /// Memoized routes for touched `(from, to)` pairs, keyed
    /// `from << 32 | to`; `None` = no live route under the current fault
    /// state. Cleared wholesale on fault transitions. Interior-mutable so
    /// `&self` estimators can fill it.
    #[allow(clippy::type_complexity)]
    cache: RefCell<BTreeMap<u64, Option<(Vec<usize>, bool)>>>,
    /// Reusable path buffer for the transmit/estimate loops.
    scratch: RefCell<Vec<usize>>,
    /// Reusable route-slot buffer for the transmit contention loop.
    scratch_slots: Vec<usize>,
    /// Remote messages transmitted.
    pub messages: u64,
    /// Packets transmitted (after segmentation).
    pub packets: u64,
    /// Packets that took a detour around a dead link.
    pub rerouted_packets: u64,
    /// Payload words moved between clusters.
    pub payload_words: u64,
    /// Header words moved (overhead).
    pub header_words_moved: u64,
}

/// Size of the link-id space for `topology` over `n` clusters.
pub(crate) fn link_id_space(topology: &Topology, n: usize) -> usize {
    match topology {
        Topology::Bus => 1,
        Topology::Ring => 2 * n,
        Topology::Mesh2D { .. } => 4 * n,
        Topology::Crossbar => n * n,
        Topology::Torus { dims } => n * 2 * dims.len(),
        Topology::FatTree { .. } => 4 * n,
    }
}

impl Network {
    /// Build the network for a machine configuration. Allocation is
    /// O(1) in the cluster count: link records and route-cache entries
    /// appear only as traffic (or faults) touch them.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.clusters as usize;
        Network {
            topology: cfg.topology.clone(),
            clusters: cfg.clusters,
            link_latency: cfg.link_latency,
            words_per_cycle: cfg.words_per_cycle,
            max_packet_words: cfg.max_packet_words,
            header_words: cfg.header_words,
            links: link_id_space(&cfg.topology, n),
            slab: LinkSlab::default(),
            cache_enabled: cfg.route_cache,
            cache: RefCell::new(BTreeMap::new()),
            scratch: RefCell::new(Vec::new()),
            scratch_slots: Vec::new(),
            messages: 0,
            packets: 0,
            rerouted_packets: 0,
            payload_words: 0,
            header_words_moved: 0,
        }
    }

    /// Kill a link: packets can no longer traverse it; routes that used it
    /// detour where the topology allows.
    pub fn fail_link(&mut self, link: usize) {
        assert!(link < self.links, "link out of range");
        let slot = self.slab.ensure(link);
        self.slab.dead[slot] = true;
        self.invalidate_routes();
    }

    /// Degrade a link: its occupancy is multiplied by `factor` (≥ 1).
    pub fn degrade_link(&mut self, link: usize, factor: u32) {
        assert!(link < self.links, "link out of range");
        let slot = self.slab.ensure(link);
        self.slab.degrade[slot] = factor.max(1);
        self.invalidate_routes();
    }

    /// Restore a link to full health: revive it if dead and clear any
    /// degradation. Routes that detoured around it snap back to the
    /// primary path.
    pub fn recover_link(&mut self, link: usize) {
        assert!(link < self.links, "link out of range");
        let slot = self.slab.ensure(link);
        self.slab.dead[slot] = false;
        self.slab.degrade[slot] = 1;
        self.invalidate_routes();
    }

    /// Invalidate every cached route at once (fault-state change).
    fn invalidate_routes(&mut self) {
        self.cache.get_mut().clear();
    }

    /// Whether `link` is dead.
    pub fn link_is_dead(&self, link: usize) -> bool {
        self.slab.is_dead(link)
    }

    fn path_alive(&self, path: &[usize]) -> bool {
        path.iter().all(|&l| !self.slab.is_dead(l))
    }

    /// Number of links in the topology (the id space, not the allocated
    /// records — see [`Network::allocated_link_records`] for those).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Number of link records actually allocated: links that have carried
    /// traffic or held a fault. The regression guard for the sparse-state
    /// refactor and the weak-scaling study's RSS proxy.
    pub fn allocated_link_records(&self) -> usize {
        self.slab.len()
    }

    /// Hop count between two clusters (0 when equal).
    pub fn hops(&self, from: u32, to: u32) -> u32 {
        if from == to {
            return 0;
        }
        match &self.topology {
            Topology::Bus => 1,
            Topology::Crossbar => 1,
            Topology::Ring => {
                let n = self.clusters;
                let fwd = (to + n - from) % n;
                let bwd = (from + n - to) % n;
                fwd.min(bwd)
            }
            Topology::Mesh2D { width } => {
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                fx.abs_diff(tx) + fy.abs_diff(ty)
            }
            Topology::Torus { dims } => {
                let f = torus_coords(dims, from);
                let t = torus_coords(dims, to);
                dims.iter()
                    .enumerate()
                    .map(|(d, &dim)| {
                        let fwd = (t[d] + dim - f[d]) % dim;
                        let bwd = (f[d] + dim - t[d]) % dim;
                        fwd.min(bwd)
                    })
                    .sum()
            }
            Topology::FatTree { radix } => {
                if from / radix == to / radix {
                    2 // up to the edge switch, down to the sibling leaf
                } else {
                    4 // leaf-up, edge-up, core-down, leaf-down
                }
            }
        }
    }

    /// Forward ring path from `from` to `to` (link out of `cur` has id
    /// `cur`); backward uses ids `n + cur`.
    fn ring_path(&self, from: u32, to: u32, forward: bool) -> Vec<usize> {
        let nc = self.clusters;
        let n = nc as usize;
        let mut path = Vec::new();
        let mut cur = from;
        if forward {
            while cur != to {
                path.push(cur as usize);
                cur = (cur + 1) % nc;
            }
        } else {
            while cur != to {
                path.push(n + cur as usize);
                cur = (cur + nc - 1) % nc;
            }
        }
        path
    }

    /// Mesh path with dimension order: x-then-y (XY routing) or y-then-x.
    /// Link ids: node*4 + {0:+x, 1:-x, 2:+y, 3:-y}.
    fn mesh_path(&self, width: u32, from: u32, to: u32, x_first: bool) -> Vec<usize> {
        let mut path = Vec::new();
        let (mut cx, mut cy) = (from % width, from / width);
        let (tx, ty) = (to % width, to / width);
        let step_x = |path: &mut Vec<usize>, cx: &mut u32, cy: u32| {
            while *cx != tx {
                let node = (cy * width + *cx) as usize;
                if *cx < tx {
                    path.push(node * 4);
                    *cx += 1;
                } else {
                    path.push(node * 4 + 1);
                    *cx -= 1;
                }
            }
        };
        let step_y = |path: &mut Vec<usize>, cx: u32, cy: &mut u32| {
            while *cy != ty {
                let node = (*cy * width + cx) as usize;
                if *cy < ty {
                    path.push(node * 4 + 2);
                    *cy += 1;
                } else {
                    path.push(node * 4 + 3);
                    *cy -= 1;
                }
            }
        };
        if x_first {
            step_x(&mut path, &mut cx, cy);
            step_y(&mut path, cx, &mut cy);
        } else {
            step_y(&mut path, cx, &mut cy);
            step_x(&mut path, &mut cx, cy);
        }
        path
    }

    /// Torus path with dimension-order routing. Link ids:
    /// `node * 2·ndims + 2·d + {0:+, 1:-}` in dimension `d`. `rev` reverses
    /// the dimension order; `anti` takes the long way around each
    /// dimension. The primary route is `(rev: false, anti: false)`: lowest
    /// dimension first, shorter wrap direction (ties go forward), which is
    /// hop-minimal.
    fn torus_path(&self, dims: &[u32], from: u32, to: u32, rev: bool, anti: bool) -> Vec<usize> {
        let nd = dims.len();
        let mut cur = torus_coords(dims, from);
        let tgt = torus_coords(dims, to);
        let mut path = Vec::new();
        for i in 0..nd {
            let d = if rev { nd - 1 - i } else { i };
            let dim = dims[d];
            let fwd = (tgt[d] + dim - cur[d]) % dim;
            if fwd == 0 {
                continue;
            }
            let bwd = dim - fwd;
            let forward = (fwd <= bwd) != anti;
            let steps = if forward { fwd } else { bwd };
            for _ in 0..steps {
                let node = torus_index(dims, &cur) as usize;
                path.push(node * 2 * nd + 2 * d + usize::from(!forward));
                cur[d] = if forward {
                    (cur[d] + 1) % dim
                } else {
                    (cur[d] + dim - 1) % dim
                };
            }
        }
        path
    }

    /// Fat-tree up/down path through core switch `core` (ignored for
    /// same-pod pairs, which turn around at the edge switch). Link ids for
    /// `n` leaves, radix `r`, `p = n/r` pods: leaf-up = `node`, leaf-down =
    /// `n + node`, edge-up(pod, core) = `2n + pod·r + core`, core-down(core,
    /// pod) = `2n + p·r + pod·r + core`.
    fn fat_tree_path(&self, radix: u32, from: u32, to: u32, core: u32) -> Vec<usize> {
        let n = self.clusters as usize;
        let r = radix as usize;
        let (pod_a, pod_b) = ((from / radix) as usize, (to / radix) as usize);
        let up = from as usize;
        let down = n + to as usize;
        if pod_a == pod_b {
            return vec![up, down];
        }
        let pods = n / r;
        let edge_up = 2 * n + pod_a * r + core as usize;
        let core_down = 2 * n + pods * r + pod_b * r + core as usize;
        vec![up, edge_up, core_down, down]
    }

    /// The healthy-path route (ignores link faults).
    fn primary_route(&self, from: u32, to: u32) -> Vec<usize> {
        if from == to {
            return Vec::new();
        }
        let n = self.clusters as usize;
        match &self.topology {
            Topology::Bus => vec![0],
            Topology::Crossbar => vec![from as usize * n + to as usize],
            Topology::Ring => {
                let nc = self.clusters;
                let fwd = (to + nc - from) % nc;
                let bwd = (from + nc - to) % nc;
                self.ring_path(from, to, fwd <= bwd)
            }
            Topology::Mesh2D { width } => self.mesh_path(*width, from, to, true),
            Topology::Torus { dims } => self.torus_path(dims, from, to, false, false),
            Topology::FatTree { radix } => self.fat_tree_path(*radix, from, to, to % radix),
        }
    }

    /// Pick a live route: the primary path when intact, otherwise the
    /// topology's deterministic detour. Returns the path and whether it is
    /// a detour; `None` when every candidate crosses a dead link. This is
    /// the uncached reference computation; hot paths go through
    /// [`Network::route_into`] which memoizes its result per fault epoch.
    ///
    /// Detour candidates are checked whole (`path_alive`), in a fixed
    /// order, so a chosen detour never crosses — and never revisits — a
    /// dead link, and the choice depends only on the fault state.
    fn compute_route(&self, from: u32, to: u32) -> Option<(Vec<usize>, bool)> {
        let primary = self.primary_route(from, to);
        if self.path_alive(&primary) {
            return Some((primary, false));
        }
        let n = self.clusters as usize;
        let alt = match &self.topology {
            Topology::Bus => None,
            Topology::Crossbar => {
                // Two-hop detour via the lowest-indexed live intermediate.
                (0..self.clusters)
                    .filter(|&k| k != from && k != to)
                    .map(|k| vec![from as usize * n + k as usize, k as usize * n + to as usize])
                    .find(|p| self.path_alive(p))
            }
            Topology::Ring => {
                let nc = self.clusters;
                let fwd = (to + nc - from) % nc;
                let bwd = (from + nc - to) % nc;
                // The non-preferred direction.
                let other = self.ring_path(from, to, fwd > bwd);
                self.path_alive(&other).then_some(other)
            }
            Topology::Mesh2D { width } => {
                let yx = self.mesh_path(*width, from, to, false);
                self.path_alive(&yx).then_some(yx)
            }
            Topology::Torus { dims } => {
                // Reverse the dimension order first (hop-minimal, like the
                // mesh's YX fallback), then the long-way-around variants.
                [(true, false), (false, true), (true, true)]
                    .into_iter()
                    .map(|(rev, anti)| self.torus_path(dims, from, to, rev, anti))
                    .find(|p| self.path_alive(p))
            }
            Topology::FatTree { radix } => {
                // Same hop count through any core: try them in ascending
                // order. Same-pod pairs have a unique up/down path (no
                // detour exists past a dead leaf link).
                let radix = *radix;
                (0..radix)
                    .filter(|&c| c != to % radix)
                    .map(|c| self.fat_tree_path(radix, from, to, c))
                    .find(|p| self.path_alive(p))
            }
        };
        alt.map(|p| (p, true))
    }

    /// Copy the current route for `(from, to)` into `buf`, computing and
    /// caching it if this epoch has not seen the pair yet. Returns whether
    /// the route is a detour, or `None` when no live route exists (also
    /// cached, so repeated unreachable probes stay cheap).
    fn route_into(&self, from: u32, to: u32, buf: &mut Vec<usize>) -> Option<bool> {
        buf.clear();
        if !self.cache_enabled {
            let (path, rerouted) = self.compute_route(from, to)?;
            buf.extend_from_slice(&path);
            return Some(rerouted);
        }
        let mut cache = self.cache.borrow_mut();
        let key = (u64::from(from) << 32) | u64::from(to);
        let slot = cache
            .entry(key)
            .or_insert_with(|| self.compute_route(from, to));
        let (path, rerouted) = slot.as_ref()?;
        buf.extend_from_slice(path);
        Some(*rerouted)
    }

    /// The link ids a message from `from` to `to` would traverse right now,
    /// or `None` when no live route exists (reliable layers use this both
    /// to detect unreachable clusters and to loss-check in-flight packets).
    pub fn route_links(&self, from: u32, to: u32) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut buf = Vec::new();
        self.route_into(from, to, &mut buf)?;
        Some(buf)
    }

    /// Transmit `words` of payload from cluster `from` to cluster `to`,
    /// starting no earlier than `now`. Returns the arrival time of the last
    /// packet at `to`.
    ///
    /// Intra-cluster transfers (`from == to`) move through the shared
    /// memory: they cost one memory pass (`words / words_per_cycle`) and use
    /// no links, and are *not* counted as network messages.
    pub fn transmit(&mut self, now: Cycles, from: u32, to: u32, words: Words) -> Cycles {
        self.try_transmit(now, from, to, words)
            .expect("no live route between clusters")
    }

    /// Fallible [`Network::transmit`]: returns `None` (charging nothing)
    /// when dead links leave no route from `from` to `to`.
    pub fn try_transmit(
        &mut self,
        now: Cycles,
        from: u32,
        to: u32,
        words: Words,
    ) -> Option<Cycles> {
        assert!(
            from < self.clusters && to < self.clusters,
            "cluster out of range"
        );
        if from == to {
            return Some(now + words.div_ceil(self.words_per_cycle as Words).max(1));
        }
        // Borrow the reusable path buffer out of its cell so the contention
        // loop below can mutate link state without aliasing it.
        let mut route = self.scratch.take();
        let Some(rerouted) = self.route_into(from, to, &mut route) else {
            self.scratch.replace(route);
            return None;
        };
        self.messages += 1;
        self.payload_words += words;
        // Resolve link ids to slab slots once per call; the per-packet
        // contention loop below then indexes the slab vectors directly.
        let mut slots = std::mem::take(&mut self.scratch_slots);
        slots.clear();
        slots.extend(route.iter().map(|&l| self.slab.ensure(l)));
        let mut remaining = words;
        let mut arrival = now;
        // Segment; a zero-word message still sends one header-only packet.
        let mut first = true;
        // Time at which the next packet may enter the first link (FIFO
        // injection at the source).
        let mut inject_at = now;
        while remaining > 0 || first {
            first = false;
            let chunk = remaining.min(self.max_packet_words);
            remaining -= chunk;
            let packet_words = chunk + self.header_words;
            self.packets += 1;
            if rerouted {
                self.rerouted_packets += 1;
            }
            self.header_words_moved += self.header_words;
            let occ = packet_words.div_ceil(self.words_per_cycle as Words).max(1);
            // Store-and-forward over the route with per-link FIFO contention.
            let mut t = inject_at;
            for (hop, slot) in slots.iter().enumerate() {
                let link_occ = occ * self.slab.degrade[*slot] as Cycles;
                let start = t.max(self.slab.free[*slot]);
                self.slab.free[*slot] = start + link_occ;
                self.slab.busy[*slot] += link_occ;
                t = start + link_occ + self.link_latency;
                if hop == 0 {
                    // The next packet can be injected once the first link
                    // frees up.
                    inject_at = start + link_occ;
                }
            }
            arrival = arrival.max(t);
        }
        self.scratch_slots = slots;
        self.scratch.replace(route);
        Some(arrival)
    }

    /// Contention-free latency estimate for `words` from `from` to `to`
    /// under the current route and degradation factors — the reliable
    /// layer's basis for retransmission timeouts. Ignores queueing; when no
    /// live route exists the healthy-path shape is used (the timeout will
    /// fire and the message dead-letter).
    pub fn estimate(&self, from: u32, to: u32, words: Words) -> Cycles {
        if from == to {
            return words.div_ceil(self.words_per_cycle as Words).max(1);
        }
        let mut path = self.scratch.take();
        if self.route_into(from, to, &mut path).is_none() {
            path = self.primary_route(from, to);
        }
        let mut remaining = words;
        let mut first = true;
        let mut inject_at = 0;
        let mut arrival = 0;
        while remaining > 0 || first {
            first = false;
            let chunk = remaining.min(self.max_packet_words);
            remaining -= chunk;
            let packet_words = chunk + self.header_words;
            let occ = packet_words.div_ceil(self.words_per_cycle as Words).max(1);
            let mut t = inject_at;
            for (hop, link) in path.iter().enumerate() {
                let link_occ = occ * self.slab.degrade_of(*link) as Cycles;
                t += link_occ + self.link_latency;
                if hop == 0 {
                    inject_at += link_occ;
                }
            }
            arrival = arrival.max(t);
        }
        self.scratch.replace(path);
        arrival
    }

    /// A lower bound on the delivery latency of *any* message from `from`
    /// to `to` under the current route and link state, or `None` when no
    /// live route exists.
    ///
    /// Every packet occupies each link of its route for at least one cycle
    /// (scaled by the link's degradation factor) and then pays the link
    /// latency, so the bound is `Σ (degrade + link_latency)` over the
    /// current route — independent of message size, contention, and
    /// injection time. This is the conservative lookahead the sharded DES
    /// backend derives its epoch horizon from; it is only valid until the
    /// next fault-state change, which recomputes routes.
    pub fn min_delivery_latency(&self, from: u32, to: u32) -> Option<Cycles> {
        if from == to {
            // Local transfers cost at least one memory-pass cycle.
            return Some(1);
        }
        let mut path = self.scratch.take();
        if self.route_into(from, to, &mut path).is_none() {
            self.scratch.replace(path);
            return None;
        }
        let mut bound: Cycles = 0;
        for &link in path.iter() {
            bound += self.slab.degrade_of(link) as Cycles + self.link_latency;
        }
        self.scratch.replace(path);
        Some(bound.max(1))
    }

    /// A machine-wide lower bound on remote delivery latency under a
    /// *healthy* network: the cheapest possible cross-cluster hop costs at
    /// least `hops × (1 + link_latency)` cycles. Faults only lengthen
    /// routes (detours add links, degradation scales occupancy), so the
    /// bound stays conservative without inspecting per-pair fault state —
    /// which is what lets the sharded lookahead avoid the O(n²) pair scan
    /// on large machines.
    pub fn healthy_latency_floor(&self, min_hops: u32) -> Cycles {
        (Cycles::from(min_hops) * (1 + self.link_latency)).max(1)
    }

    /// Highest per-link busy-cycle count (the bottleneck link).
    pub fn max_link_busy(&self) -> Cycles {
        self.slab.busy.iter().copied().max().unwrap_or(0)
    }

    /// Total busy cycles across all links.
    pub fn total_link_busy(&self) -> Cycles {
        self.slab.busy.iter().sum()
    }

    /// Total words moved including headers.
    pub fn total_words_moved(&self) -> u64 {
        self.payload_words + self.header_words_moved
    }

    /// Reset traffic counters and link reservations (new experiment phase).
    /// Link fault state (dead/degraded) is hardware, not traffic, and is
    /// preserved.
    pub fn reset(&mut self) {
        self.slab.free.fill(0);
        self.slab.busy.fill(0);
        self.messages = 0;
        self.packets = 0;
        self.rerouted_packets = 0;
        self.payload_words = 0;
        self.header_words_moved = 0;
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

/// Row-major coordinates of `node` in a torus of the given extents
/// (dimension 0 has the lowest stride). Padded to the 4-D maximum.
fn torus_coords(dims: &[u32], node: u32) -> [u32; 4] {
    debug_assert!(dims.len() <= 4);
    let mut c = [0u32; 4];
    let mut rest = node;
    for (d, &dim) in dims.iter().enumerate() {
        c[d] = rest % dim;
        rest /= dim;
    }
    c
}

/// Inverse of [`torus_coords`].
fn torus_index(dims: &[u32], coords: &[u32; 4]) -> u32 {
    let mut idx = 0;
    let mut stride = 1;
    for (d, &dim) in dims.iter().enumerate() {
        idx += coords[d] * stride;
        stride *= dim;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn cfg(topology: Topology, clusters: u32) -> MachineConfig {
        let mut c = MachineConfig::fem2_default();
        c.topology = topology;
        c.clusters = clusters;
        c
    }

    #[test]
    fn hop_counts_per_topology() {
        let bus = Network::new(&cfg(Topology::Bus, 8));
        assert_eq!(bus.hops(0, 7), 1);
        assert_eq!(bus.hops(3, 3), 0);

        let xbar = Network::new(&cfg(Topology::Crossbar, 8));
        assert_eq!(xbar.hops(0, 7), 1);

        let ring = Network::new(&cfg(Topology::Ring, 8));
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 4), 4);
        assert_eq!(ring.hops(0, 7), 1); // wraps backward
        assert_eq!(ring.hops(6, 2), 4);

        let mesh = Network::new(&cfg(Topology::Mesh2D { width: 4 }, 16));
        assert_eq!(mesh.hops(0, 3), 3); // same row
        assert_eq!(mesh.hops(0, 15), 6); // 3 x + 3 y
        assert_eq!(mesh.hops(5, 5), 0);
    }

    #[test]
    fn link_counts() {
        assert_eq!(Network::new(&cfg(Topology::Bus, 8)).link_count(), 1);
        assert_eq!(Network::new(&cfg(Topology::Ring, 8)).link_count(), 16);
        assert_eq!(
            Network::new(&cfg(Topology::Mesh2D { width: 4 }, 16)).link_count(),
            64
        );
        assert_eq!(Network::new(&cfg(Topology::Crossbar, 8)).link_count(), 64);
    }

    #[test]
    fn local_transfer_uses_no_links() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        let t = n.transmit(100, 2, 2, 64);
        assert_eq!(t, 100 + 64);
        assert_eq!(n.messages, 0);
        assert_eq!(n.packets, 0);
        assert_eq!(n.total_link_busy(), 0);
    }

    #[test]
    fn single_packet_arrival_time() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.link_latency = 10;
        c.words_per_cycle = 1;
        c.max_packet_words = 256;
        c.header_words = 4;
        let mut n = Network::new(&c);
        // 32 payload + 4 header = 36 cycles occupancy + 10 latency.
        let t = n.transmit(0, 0, 1, 32);
        assert_eq!(t, 36 + 10);
        assert_eq!(n.messages, 1);
        assert_eq!(n.packets, 1);
        assert_eq!(n.payload_words, 32);
        assert_eq!(n.header_words_moved, 4);
    }

    #[test]
    fn zero_word_message_sends_header_packet() {
        let mut n = Network::new(&cfg(Topology::Crossbar, 4));
        let t0 = n.transmit(0, 0, 1, 0);
        assert!(t0 > 0);
        assert_eq!(n.packets, 1);
        assert_eq!(n.payload_words, 0);
        assert!(n.header_words_moved > 0);
    }

    #[test]
    fn segmentation_counts_packets() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.max_packet_words = 100;
        let mut n = Network::new(&c);
        n.transmit(0, 0, 1, 250); // 100 + 100 + 50
        assert_eq!(n.packets, 3);
        assert_eq!(n.header_words_moved, 3 * c.header_words);
    }

    #[test]
    fn bus_serializes_concurrent_transfers() {
        let mut c = cfg(Topology::Bus, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 2, 3, 100); // different pair, same bus
        assert_eq!(t1, 100);
        assert_eq!(t2, 200, "bus transfers serialize");
    }

    #[test]
    fn crossbar_parallel_transfers_do_not_contend() {
        let mut c = cfg(Topology::Crossbar, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 2, 3, 100);
        assert_eq!(t1, 100);
        assert_eq!(t2, 100, "disjoint crossbar paths run in parallel");
    }

    #[test]
    fn same_pair_crossbar_transfers_serialize() {
        let mut c = cfg(Topology::Crossbar, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 0, 1, 100);
        assert_eq!(t1, 100);
        assert_eq!(t2, 200);
    }

    #[test]
    fn ring_multi_hop_latency_accumulates() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 5;
        c.header_words = 0;
        c.words_per_cycle = 1;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        // 0 -> 2 is 2 hops forward: occupancy 10 per link, store-and-forward.
        let t = n.transmit(0, 0, 2, 10);
        assert_eq!(t, (10 + 5) * 2);
    }

    #[test]
    fn packets_pipeline_across_hops() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.words_per_cycle = 1;
        c.max_packet_words = 10;
        let mut n = Network::new(&c);
        // 2 hops, 3 packets of 10 words. Without pipelining: 3 * 20 = 60.
        // With pipelining the last packet enters link 0 at t=20, arrives 40.
        let t = n.transmit(0, 0, 2, 30);
        assert_eq!(t, 40);
    }

    #[test]
    fn mesh_xy_route_respects_dimension_order() {
        let c = cfg(Topology::Mesh2D { width: 4 }, 16);
        let n = Network::new(&c);
        // 0 (0,0) -> 15 (3,3): route through x then y, 6 links.
        let r = n.route_links(0, 15).unwrap();
        assert_eq!(r.len(), 6);
        // First three are +x links of nodes 0,1,2.
        assert_eq!(&r[..3], &[0, 4, 8]);
    }

    #[test]
    fn reset_clears_counters_and_reservations() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.transmit(0, 0, 1, 100);
        assert!(n.messages > 0);
        n.reset();
        assert_eq!(n.messages, 0);
        assert_eq!(n.packets, 0);
        assert_eq!(n.total_link_busy(), 0);
        // After reset, transfers start from a clean bus.
        let t = n.transmit(0, 0, 1, 10);
        let occ = (10u64 + 4).div_ceil(1);
        assert_eq!(t, occ + n.link_latency);
    }

    #[test]
    fn total_words_moved_includes_headers() {
        let mut n = Network::new(&cfg(Topology::Crossbar, 4));
        n.transmit(0, 0, 1, 10);
        assert_eq!(n.total_words_moved(), 10 + 4);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn out_of_range_cluster_panics() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.transmit(0, 0, 9, 10);
    }

    #[test]
    fn dead_crossbar_link_takes_two_hop_detour() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        n.fail_link(1); // 0 -> 1 direct
        assert!(n.link_is_dead(1));
        // Detour via cluster 2 (lowest live intermediate): 2 hops.
        assert_eq!(n.route_links(0, 1), Some(vec![2, 2 * 4 + 1]));
        let t = n.transmit(0, 0, 1, 100);
        assert_eq!(t, 200, "two store-and-forward hops");
        assert_eq!(n.rerouted_packets, 1);
    }

    #[test]
    fn dead_bus_is_unreachable() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.fail_link(0);
        assert_eq!(n.route_links(0, 1), None);
        assert_eq!(n.try_transmit(0, 0, 1, 10), None);
        assert_eq!(n.messages, 0, "unreachable transfers charge nothing");
    }

    #[test]
    fn dead_ring_link_reroutes_the_long_way() {
        let mut c = cfg(Topology::Ring, 4);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        // 0 -> 1 prefers forward link 0; kill it.
        n.fail_link(0);
        // Backward: 0 -> 3 -> 2 -> 1 over links n+0, n+3, n+2.
        assert_eq!(n.route_links(0, 1), Some(vec![4, 7, 6]));
        let t = n.transmit(0, 0, 1, 10);
        assert_eq!(t, 30, "three hops instead of one");
        // Both directions severed between 0 and 1 -> unreachable.
        n.fail_link(6);
        assert_eq!(n.route_links(0, 1), None);
    }

    #[test]
    fn dead_mesh_link_falls_back_to_yx() {
        let c = cfg(Topology::Mesh2D { width: 2 }, 4);
        let mut n = Network::new(&c);
        // 0 (0,0) -> 3 (1,1): XY route is +x at node 0 (link 0), +y at
        // node 1 (link 6).
        assert_eq!(n.route_links(0, 3), Some(vec![0, 6]));
        n.fail_link(0);
        // YX: +y at node 0 (link 2), +x at node 2 (link 8).
        assert_eq!(n.route_links(0, 3), Some(vec![2, 8]));
        n.fail_link(2);
        assert_eq!(n.route_links(0, 3), None);
    }

    #[test]
    fn degraded_link_slows_but_does_not_reroute() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        n.degrade_link(1, 4);
        let t = n.transmit(0, 0, 1, 100);
        assert_eq!(t, 400, "4x occupancy on the degraded link");
        assert_eq!(n.rerouted_packets, 0);
    }

    #[test]
    fn estimate_matches_contention_free_transmit() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 5;
        let mut n = Network::new(&c);
        let est = n.estimate(0, 2, 30);
        let t = n.transmit(0, 0, 2, 30);
        assert_eq!(est, t, "estimate equals transmit on an idle network");
        assert_eq!(n.estimate(3, 3, 64), 64);
    }

    #[test]
    fn recover_link_restores_primary_route_and_clears_degrade() {
        let mut c = cfg(Topology::Mesh2D { width: 2 }, 4);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        assert_eq!(n.route_links(0, 3), Some(vec![0, 6]));
        n.fail_link(0);
        assert_eq!(n.route_links(0, 3), Some(vec![2, 8]), "YX detour");
        n.degrade_link(2, 8);
        n.recover_link(0);
        n.recover_link(2);
        assert!(!n.link_is_dead(0));
        assert_eq!(n.route_links(0, 3), Some(vec![0, 6]), "primary is back");
        let t = n.transmit(0, 0, 3, 100);
        assert_eq!(t, 200, "no residual degradation after repair");
    }

    #[test]
    fn route_cache_serves_repeated_lookups_and_invalidates_on_faults() {
        let c = cfg(Topology::Crossbar, 8);
        let mut n = Network::new(&c);
        // Same pair twice: second lookup is served from the cache and must
        // equal the first.
        let first = n.route_links(2, 5);
        assert_eq!(n.route_links(2, 5), first);
        // Kill the direct link: the cached entry must not survive.
        let direct = first.unwrap()[0];
        n.fail_link(direct);
        let detour = n.route_links(2, 5).unwrap();
        assert_eq!(detour.len(), 2, "two-hop detour after invalidation");
        n.recover_link(direct);
        assert_eq!(n.route_links(2, 5), Some(vec![direct]));
    }

    /// Cached and uncached networks must produce bitwise-identical arrival
    /// times and traffic counters over an arbitrary transmit sequence that
    /// spans a link failure and its repair.
    #[test]
    fn cached_matches_uncached_across_fail_and_recovery() {
        let run = |route_cache: bool| {
            let mut c = cfg(Topology::Ring, 8);
            c.route_cache = route_cache;
            let mut n = Network::new(&c);
            let mut log = Vec::new();
            let mut t = 0;
            for step in 0..200u64 {
                if step == 60 {
                    n.fail_link(0);
                }
                if step == 140 {
                    n.recover_link(0);
                }
                let from = (step * 3) % 8;
                let to = (step * 5 + 1) % 8;
                if let Some(arr) = n.try_transmit(t, from as u32, to as u32, 16 + step % 64) {
                    log.push(arr);
                    t = t.max(arr / 2);
                }
                log.push(n.estimate(to as u32, from as u32, 32));
            }
            (
                log,
                n.messages,
                n.packets,
                n.rerouted_packets,
                n.total_link_busy(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn max_link_busy_tracks_bottleneck() {
        let mut c = cfg(Topology::Ring, 4);
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        n.transmit(0, 0, 1, 50);
        n.transmit(0, 0, 1, 50);
        assert_eq!(n.max_link_busy(), 100);
        assert_eq!(n.total_link_busy(), 100);
    }

    fn torus(dims: &[u32]) -> MachineConfig {
        let clusters = dims.iter().product();
        let mut c = cfg(
            Topology::Torus {
                dims: dims.to_vec(),
            },
            clusters,
        );
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        c
    }

    #[test]
    fn torus_and_fat_tree_link_id_spaces() {
        assert_eq!(Network::new(&torus(&[4, 4])).link_count(), 64);
        assert_eq!(Network::new(&torus(&[4, 4, 4])).link_count(), 64 * 6);
        assert_eq!(
            Network::new(&cfg(Topology::FatTree { radix: 4 }, 8)).link_count(),
            32
        );
    }

    #[test]
    fn torus_hops_take_the_shorter_wrap_per_dimension() {
        let n = Network::new(&torus(&[4, 4]));
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 3), 1, "wraps backward in dim 0");
        assert_eq!(n.hops(0, 5), 2);
        assert_eq!(n.hops(0, 15), 2, "wraps in both dimensions");
        let n = Network::new(&torus(&[4, 4, 4]));
        assert_eq!(n.hops(0, 63), 3, "one backward wrap per dimension");
    }

    #[test]
    fn torus_route_respects_dimension_order_and_wrap() {
        let n = Network::new(&torus(&[4, 4]));
        // 0 (0,0) -> 5 (1,1): +dim0 at node 0 (link 0), +dim1 at node 1
        // (link 1*4+2 = 6).
        assert_eq!(n.route_links(0, 5), Some(vec![0, 6]));
        // 0 -> 3: backward wrap (1 hop, link 0*4+1) beats 3 forward hops.
        assert_eq!(n.route_links(0, 3), Some(vec![1]));
    }

    #[test]
    fn dead_torus_link_detours_in_reverse_dimension_order() {
        let mut n = Network::new(&torus(&[4, 4]));
        n.fail_link(0); // node 0's +dim0 link
                        // dim1 first: +dim1 at node 0 (link 2), +dim0 at node 4 (link 16).
        let detour = n.route_links(0, 5).unwrap();
        assert_eq!(detour, vec![2, 16]);
        assert_eq!(detour.len() as u32, n.hops(0, 5), "detour stays minimal");
        assert!(detour.iter().all(|&l| !n.link_is_dead(l)));
        // Kill the reverse-order path too: the long-way-around fallback
        // still avoids every dead link.
        n.fail_link(2);
        let long_way = n.route_links(0, 5).unwrap();
        assert!(long_way.iter().all(|&l| !n.link_is_dead(l)));
        assert_eq!(long_way.len(), 6, "3 backward hops per dimension");
        let t = n.transmit(0, 0, 5, 10);
        assert_eq!(t, 60, "six store-and-forward hops");
        assert_eq!(n.rerouted_packets, 1);
    }

    #[test]
    fn fat_tree_routes_up_and_down() {
        let mut c = cfg(Topology::FatTree { radix: 4 }, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        // Same pod: leaf-up 0, leaf-down 8+1.
        assert_eq!(n.route_links(0, 1), Some(vec![0, 9]));
        assert_eq!(n.hops(0, 1), 2);
        // Cross pod via core 5 % 4 = 1: leaf-up 0, edge-up 16+1,
        // core-down 16+8+4+1, leaf-down 8+5.
        assert_eq!(n.route_links(0, 5), Some(vec![0, 17, 29, 13]));
        assert_eq!(n.hops(0, 5), 4);
        let t = n.transmit(0, 0, 5, 10);
        assert_eq!(t, 40, "four store-and-forward hops");
    }

    #[test]
    fn dead_fat_tree_uplink_detours_through_another_core() {
        let mut c = cfg(Topology::FatTree { radix: 4 }, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        n.fail_link(17); // pod 0's edge-up to core 1 (primary for dst 5)
                         // Core 0 is the lowest live alternative; hop count is unchanged.
        assert_eq!(n.route_links(0, 5), Some(vec![0, 16, 28, 13]));
        let t = n.transmit(0, 0, 5, 10);
        assert_eq!(t, 40);
        assert_eq!(n.rerouted_packets, 1);
        // A dead leaf uplink has no alternative: the leaf is cut off.
        n.fail_link(0);
        assert_eq!(n.route_links(0, 5), None);
        assert_eq!(n.route_links(0, 1), None);
    }

    /// The sparse-state regression guard: a big crossbar allocates link
    /// records only for links that carry traffic or hold a fault — never
    /// the n² id space.
    #[test]
    fn link_records_allocated_lazily() {
        let mut n = Network::new(&cfg(Topology::Crossbar, 64));
        assert_eq!(n.link_count(), 64 * 64);
        assert_eq!(n.allocated_link_records(), 0, "no traffic, no records");
        n.transmit(0, 0, 1, 100);
        n.transmit(0, 0, 1, 100); // same pair reuses the record
        n.transmit(0, 5, 9, 100);
        assert_eq!(n.allocated_link_records(), 2, "one record per used link");
        n.fail_link(63); // faults pin a record too
        assert_eq!(n.allocated_link_records(), 3);
        n.reset();
        assert_eq!(n.total_link_busy(), 0);
        assert!(n.link_is_dead(63), "reset keeps fault state");
        assert_eq!(n.allocated_link_records(), 3, "reset keeps the slab");
    }

    #[test]
    #[should_panic(expected = "link out of range")]
    fn out_of_range_link_fault_panics() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.fail_link(1);
    }

    #[test]
    fn healthy_latency_floor_is_conservative() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 20;
        let mut n = Network::new(&c);
        // Degrade and kill links arbitrarily: no pair's actual minimum
        // delivery latency may dip below the healthy single-hop floor.
        n.degrade_link(0, 7);
        n.fail_link(3);
        let floor = n.healthy_latency_floor(1);
        for from in 0..8 {
            for to in 0..8 {
                if from == to {
                    continue;
                }
                if let Some(b) = n.min_delivery_latency(from, to) {
                    assert!(b >= floor, "{from}->{to}: {b} < {floor}");
                }
            }
        }
    }
}
