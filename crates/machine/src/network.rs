//! The common communication network between clusters.
//!
//! Four topologies ([`Topology`]) with per-link contention and
//! store-and-forward packet transmission. Large messages are segmented into
//! packets of at most `max_packet_words` payload, each charged a header —
//! this is how the simulator honours the "large messages" requirement while
//! still modeling finite link buffers. Packets of one message pipeline
//! across the path (a later link can carry packet *k* while an earlier link
//! carries packet *k+1*), which matters for the E5 message-size sweeps.
//!
//! All state is deterministic: links are FIFO resources with a `free_at`
//! time, and arrival times depend only on the sequence of `transmit` calls.

use crate::config::{MachineConfig, Topology};
use crate::{Cycles, Words};

/// The inter-cluster network: topology, per-link reservation times, and
/// traffic counters.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    clusters: u32,
    link_latency: Cycles,
    words_per_cycle: u32,
    max_packet_words: Words,
    header_words: Words,
    /// Next-free time per link.
    link_free: Vec<Cycles>,
    /// Cumulative busy cycles per link (for utilization reports).
    link_busy: Vec<Cycles>,
    /// Remote messages transmitted.
    pub messages: u64,
    /// Packets transmitted (after segmentation).
    pub packets: u64,
    /// Payload words moved between clusters.
    pub payload_words: u64,
    /// Header words moved (overhead).
    pub header_words_moved: u64,
}

impl Network {
    /// Build the network for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let n = cfg.clusters as usize;
        let links = match cfg.topology {
            Topology::Bus => 1,
            Topology::Ring => 2 * n,
            Topology::Mesh2D { .. } => 4 * n,
            Topology::Crossbar => n * n,
        };
        Network {
            topology: cfg.topology,
            clusters: cfg.clusters,
            link_latency: cfg.link_latency,
            words_per_cycle: cfg.words_per_cycle,
            max_packet_words: cfg.max_packet_words,
            header_words: cfg.header_words,
            link_free: vec![0; links],
            link_busy: vec![0; links],
            messages: 0,
            packets: 0,
            payload_words: 0,
            header_words_moved: 0,
        }
    }

    /// Number of links in the topology.
    pub fn link_count(&self) -> usize {
        self.link_free.len()
    }

    /// Hop count between two clusters (0 when equal).
    pub fn hops(&self, from: u32, to: u32) -> u32 {
        if from == to {
            return 0;
        }
        match self.topology {
            Topology::Bus => 1,
            Topology::Crossbar => 1,
            Topology::Ring => {
                let n = self.clusters;
                let fwd = (to + n - from) % n;
                let bwd = (from + n - to) % n;
                fwd.min(bwd)
            }
            Topology::Mesh2D { width } => {
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                fx.abs_diff(tx) + fy.abs_diff(ty)
            }
        }
    }

    /// The sequence of link ids a packet from `from` to `to` traverses.
    fn route(&self, from: u32, to: u32) -> Vec<usize> {
        if from == to {
            return Vec::new();
        }
        let n = self.clusters as usize;
        match self.topology {
            Topology::Bus => vec![0],
            Topology::Crossbar => vec![from as usize * n + to as usize],
            Topology::Ring => {
                let nc = self.clusters;
                let fwd = (to + nc - from) % nc;
                let bwd = (from + nc - to) % nc;
                let mut path = Vec::new();
                let mut cur = from;
                if fwd <= bwd {
                    while cur != to {
                        // forward link out of `cur` has id `cur`
                        path.push(cur as usize);
                        cur = (cur + 1) % nc;
                    }
                } else {
                    while cur != to {
                        // backward link out of `cur` has id `n + cur`
                        path.push(n + cur as usize);
                        cur = (cur + nc - 1) % nc;
                    }
                }
                path
            }
            Topology::Mesh2D { width } => {
                // XY routing: move in x first, then y.
                // Link ids: node*4 + {0:+x, 1:-x, 2:+y, 3:-y}.
                let mut path = Vec::new();
                let (mut cx, mut cy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                while cx != tx {
                    let node = (cy * width + cx) as usize;
                    if cx < tx {
                        path.push(node * 4);
                        cx += 1;
                    } else {
                        path.push(node * 4 + 1);
                        cx -= 1;
                    }
                }
                while cy != ty {
                    let node = (cy * width + cx) as usize;
                    if cy < ty {
                        path.push(node * 4 + 2);
                        cy += 1;
                    } else {
                        path.push(node * 4 + 3);
                        cy -= 1;
                    }
                }
                path
            }
        }
    }

    /// Transmit `words` of payload from cluster `from` to cluster `to`,
    /// starting no earlier than `now`. Returns the arrival time of the last
    /// packet at `to`.
    ///
    /// Intra-cluster transfers (`from == to`) move through the shared
    /// memory: they cost one memory pass (`words / words_per_cycle`) and use
    /// no links, and are *not* counted as network messages.
    pub fn transmit(&mut self, now: Cycles, from: u32, to: u32, words: Words) -> Cycles {
        assert!(
            from < self.clusters && to < self.clusters,
            "cluster out of range"
        );
        if from == to {
            return now + words.div_ceil(self.words_per_cycle as Words).max(1);
        }
        self.messages += 1;
        self.payload_words += words;
        let mut remaining = words;
        let mut arrival = now;
        // Segment; a zero-word message still sends one header-only packet.
        let mut first = true;
        // Time at which the next packet may enter the first link (FIFO
        // injection at the source).
        let mut inject_at = now;
        while remaining > 0 || first {
            first = false;
            let chunk = remaining.min(self.max_packet_words);
            remaining -= chunk;
            let packet_words = chunk + self.header_words;
            self.packets += 1;
            self.header_words_moved += self.header_words;
            let occ = packet_words.div_ceil(self.words_per_cycle as Words).max(1);
            // Store-and-forward over the route with per-link FIFO contention.
            let mut t = inject_at;
            let route = self.route(from, to);
            for (hop, link) in route.iter().enumerate() {
                let start = t.max(self.link_free[*link]);
                self.link_free[*link] = start + occ;
                self.link_busy[*link] += occ;
                t = start + occ + self.link_latency;
                if hop == 0 {
                    // The next packet can be injected once the first link
                    // frees up.
                    inject_at = start + occ;
                }
            }
            arrival = arrival.max(t);
        }
        arrival
    }

    /// Highest per-link busy-cycle count (the bottleneck link).
    pub fn max_link_busy(&self) -> Cycles {
        self.link_busy.iter().copied().max().unwrap_or(0)
    }

    /// Total busy cycles across all links.
    pub fn total_link_busy(&self) -> Cycles {
        self.link_busy.iter().sum()
    }

    /// Total words moved including headers.
    pub fn total_words_moved(&self) -> u64 {
        self.payload_words + self.header_words_moved
    }

    /// Reset traffic counters and link reservations (new experiment phase).
    pub fn reset(&mut self) {
        self.link_free.fill(0);
        self.link_busy.fill(0);
        self.messages = 0;
        self.packets = 0;
        self.payload_words = 0;
        self.header_words_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn cfg(topology: Topology, clusters: u32) -> MachineConfig {
        let mut c = MachineConfig::fem2_default();
        c.topology = topology;
        c.clusters = clusters;
        c
    }

    #[test]
    fn hop_counts_per_topology() {
        let bus = Network::new(&cfg(Topology::Bus, 8));
        assert_eq!(bus.hops(0, 7), 1);
        assert_eq!(bus.hops(3, 3), 0);

        let xbar = Network::new(&cfg(Topology::Crossbar, 8));
        assert_eq!(xbar.hops(0, 7), 1);

        let ring = Network::new(&cfg(Topology::Ring, 8));
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 4), 4);
        assert_eq!(ring.hops(0, 7), 1); // wraps backward
        assert_eq!(ring.hops(6, 2), 4);

        let mesh = Network::new(&cfg(Topology::Mesh2D { width: 4 }, 16));
        assert_eq!(mesh.hops(0, 3), 3); // same row
        assert_eq!(mesh.hops(0, 15), 6); // 3 x + 3 y
        assert_eq!(mesh.hops(5, 5), 0);
    }

    #[test]
    fn link_counts() {
        assert_eq!(Network::new(&cfg(Topology::Bus, 8)).link_count(), 1);
        assert_eq!(Network::new(&cfg(Topology::Ring, 8)).link_count(), 16);
        assert_eq!(
            Network::new(&cfg(Topology::Mesh2D { width: 4 }, 16)).link_count(),
            64
        );
        assert_eq!(Network::new(&cfg(Topology::Crossbar, 8)).link_count(), 64);
    }

    #[test]
    fn local_transfer_uses_no_links() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        let t = n.transmit(100, 2, 2, 64);
        assert_eq!(t, 100 + 64);
        assert_eq!(n.messages, 0);
        assert_eq!(n.packets, 0);
        assert_eq!(n.total_link_busy(), 0);
    }

    #[test]
    fn single_packet_arrival_time() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.link_latency = 10;
        c.words_per_cycle = 1;
        c.max_packet_words = 256;
        c.header_words = 4;
        let mut n = Network::new(&c);
        // 32 payload + 4 header = 36 cycles occupancy + 10 latency.
        let t = n.transmit(0, 0, 1, 32);
        assert_eq!(t, 36 + 10);
        assert_eq!(n.messages, 1);
        assert_eq!(n.packets, 1);
        assert_eq!(n.payload_words, 32);
        assert_eq!(n.header_words_moved, 4);
    }

    #[test]
    fn zero_word_message_sends_header_packet() {
        let mut n = Network::new(&cfg(Topology::Crossbar, 4));
        let t0 = n.transmit(0, 0, 1, 0);
        assert!(t0 > 0);
        assert_eq!(n.packets, 1);
        assert_eq!(n.payload_words, 0);
        assert!(n.header_words_moved > 0);
    }

    #[test]
    fn segmentation_counts_packets() {
        let mut c = cfg(Topology::Crossbar, 4);
        c.max_packet_words = 100;
        let mut n = Network::new(&c);
        n.transmit(0, 0, 1, 250); // 100 + 100 + 50
        assert_eq!(n.packets, 3);
        assert_eq!(n.header_words_moved, 3 * c.header_words);
    }

    #[test]
    fn bus_serializes_concurrent_transfers() {
        let mut c = cfg(Topology::Bus, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 2, 3, 100); // different pair, same bus
        assert_eq!(t1, 100);
        assert_eq!(t2, 200, "bus transfers serialize");
    }

    #[test]
    fn crossbar_parallel_transfers_do_not_contend() {
        let mut c = cfg(Topology::Crossbar, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 2, 3, 100);
        assert_eq!(t1, 100);
        assert_eq!(t2, 100, "disjoint crossbar paths run in parallel");
    }

    #[test]
    fn same_pair_crossbar_transfers_serialize() {
        let mut c = cfg(Topology::Crossbar, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        let t1 = n.transmit(0, 0, 1, 100);
        let t2 = n.transmit(0, 0, 1, 100);
        assert_eq!(t1, 100);
        assert_eq!(t2, 200);
    }

    #[test]
    fn ring_multi_hop_latency_accumulates() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 5;
        c.header_words = 0;
        c.words_per_cycle = 1;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        // 0 -> 2 is 2 hops forward: occupancy 10 per link, store-and-forward.
        let t = n.transmit(0, 0, 2, 10);
        assert_eq!(t, (10 + 5) * 2);
    }

    #[test]
    fn packets_pipeline_across_hops() {
        let mut c = cfg(Topology::Ring, 8);
        c.link_latency = 0;
        c.header_words = 0;
        c.words_per_cycle = 1;
        c.max_packet_words = 10;
        let mut n = Network::new(&c);
        // 2 hops, 3 packets of 10 words. Without pipelining: 3 * 20 = 60.
        // With pipelining the last packet enters link 0 at t=20, arrives 40.
        let t = n.transmit(0, 0, 2, 30);
        assert_eq!(t, 40);
    }

    #[test]
    fn mesh_xy_route_respects_dimension_order() {
        let c = cfg(Topology::Mesh2D { width: 4 }, 16);
        let n = Network::new(&c);
        // 0 (0,0) -> 15 (3,3): route through x then y, 6 links.
        let r = n.route(0, 15);
        assert_eq!(r.len(), 6);
        // First three are +x links of nodes 0,1,2.
        assert_eq!(&r[..3], &[0, 4, 8]);
    }

    #[test]
    fn reset_clears_counters_and_reservations() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.transmit(0, 0, 1, 100);
        assert!(n.messages > 0);
        n.reset();
        assert_eq!(n.messages, 0);
        assert_eq!(n.packets, 0);
        assert_eq!(n.total_link_busy(), 0);
        // After reset, transfers start from a clean bus.
        let t = n.transmit(0, 0, 1, 10);
        let occ = (10u64 + 4).div_ceil(1);
        assert_eq!(t, occ + n.link_latency);
    }

    #[test]
    fn total_words_moved_includes_headers() {
        let mut n = Network::new(&cfg(Topology::Crossbar, 4));
        n.transmit(0, 0, 1, 10);
        assert_eq!(n.total_words_moved(), 10 + 4);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn out_of_range_cluster_panics() {
        let mut n = Network::new(&cfg(Topology::Bus, 4));
        n.transmit(0, 0, 9, 10);
    }

    #[test]
    fn max_link_busy_tracks_bottleneck() {
        let mut c = cfg(Topology::Ring, 4);
        c.header_words = 0;
        c.max_packet_words = 1000;
        let mut n = Network::new(&c);
        n.transmit(0, 0, 1, 50);
        n.transmit(0, 0, 1, 50);
        assert_eq!(n.max_link_busy(), 100);
        assert_eq!(n.total_link_busy(), 100);
    }
}
