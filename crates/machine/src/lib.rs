//! # fem2-machine — the FEM-2 hardware, simulated
//!
//! A deterministic discrete-event simulator of the hardware organization the
//! FEM-2 design method arrived at:
//!
//! > "an architecture … configured as clusters of processing elements
//! > organized around a shared memory. Sets of clusters communicate through
//! > a common communication network. Within each cluster, one PE runs the
//! > operating system kernel, which fields incoming messages and assigns
//! > available PE's to process them. Messages arriving in the input queue of
//! > any cluster can be processed by any available PE."
//!
//! The crate models:
//!
//! * [`config`] — machine configurations (cluster count, PEs per cluster,
//!   memory, network topology, instruction cost model), including the
//!   clustered FEM-2 default and a flat FEM-1-style array baseline;
//! * [`pe`] — processing elements with an abstract instruction cost model;
//! * [`memory`] — per-cluster shared memories with capacity accounting and
//!   high-water tracking;
//! * [`network`] — the common communication network: bus, ring, 2-D mesh and
//!   crossbar topologies with per-link contention and large-message
//!   segmentation;
//! * [`sim`] — a generic discrete-event engine with deterministic
//!   tie-breaking;
//! * [`shard`] — a cluster-sharded conservative parallel DES backend:
//!   per-cluster-group calendar queues advanced concurrently on the
//!   `fem2-par` pool, synchronized at a lookahead horizon derived from the
//!   network's link latencies, bitwise-identical to the sequential engine;
//! * [`fault`] — PE fault injection and isolation ("reconfigurability to
//!   isolate faulty hardware components");
//! * [`stats`] — cycle/flop/message/byte/storage counters, grouped into
//!   named phases, which feed the design method's processing / storage /
//!   communication requirement tables.
//!
//! Everything is cycle-denominated and deterministic: no wall clock, no OS
//! scheduling, no randomness. Two runs over the same inputs produce the same
//! event trace (property-tested in `tests/`).

#![forbid(unsafe_code)]

pub mod budget;
pub mod config;
pub mod fault;
pub mod memory;
pub mod network;
pub mod pe;
pub mod shard;
pub mod sim;
pub mod stats;

mod machine;

pub use budget::{AbortCause, BudgetMeter, RunAborted, RunBudget};
pub use config::{CostModel, DesQueue, MachineConfig, Topology};
pub use machine::{trace_cost_kind, Machine, MachineError};
pub use memory::ClusterMemory;
pub use network::Network;
pub use pe::{CostClass, Pe, PeId};
pub use shard::{lookahead_horizon, ShardCtx, ShardMap, ShardSection, ShardedSim};
pub use sim::{EventQueue, Simulator};
pub use stats::{PhaseCounters, Stats};

/// Simulation time, in PE clock cycles.
pub type Cycles = u64;

/// Storage quantities, in 64-bit words (the machine's allocation unit).
pub type Words = u64;
