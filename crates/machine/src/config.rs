//! Machine configurations: the design parameters the top-down method
//! iterates over.
//!
//! A [`MachineConfig`] fixes the organization (clusters × PEs per cluster),
//! the per-cluster shared memory capacity, the network [`Topology`], and the
//! abstract [`CostModel`]. The design-iteration experiments (E10) sweep this
//! space; two presets matter throughout:
//!
//! * [`MachineConfig::fem2_default`] — the clustered organization the paper
//!   arrives at;
//! * [`MachineConfig::fem1_style`] — a flat array of single-PE nodes on a
//!   global bus, approximating the original Finite Element Machine's
//!   bottom-up organization, used as the baseline.

use crate::{Cycles, Words};
use serde::{Deserialize, Serialize};

/// Interconnection topology of the common communication network.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Topology {
    /// Single shared medium: every transfer serializes on one resource.
    Bus,
    /// Bidirectional ring of clusters; hops = shortest ring distance.
    Ring,
    /// 2-D mesh, row-major over clusters; XY routing.
    Mesh2D {
        /// Mesh width in clusters. Height is derived from the cluster count.
        width: u32,
    },
    /// Full crossbar: dedicated path per (src, dst) pair, one hop.
    Crossbar,
    /// Multi-dimensional torus (2-D/3-D/4-D), row-major over clusters;
    /// dimension-order routing with per-dimension shortest wrap direction.
    Torus {
        /// Extent of each dimension, lowest-stride first. The product must
        /// equal the cluster count and each extent must be >= 2.
        dims: Vec<u32>,
    },
    /// Two-level fat tree: `radix`-wide edge pods of leaves under a rank
    /// of `radix` core switches; deterministic up/down routing.
    FatTree {
        /// Leaves per edge pod (and core switch count). Must divide the
        /// cluster count and be >= 2.
        radix: u32,
    },
}

impl Topology {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Bus => "bus",
            Topology::Ring => "ring",
            Topology::Mesh2D { .. } => "mesh2d",
            Topology::Crossbar => "crossbar",
            Topology::Torus { .. } => "torus",
            Topology::FatTree { .. } => "fattree",
        }
    }
}

/// Which backing store the discrete-event engine uses.
///
/// Both backends pop events in exactly the same `(time, scheduling
/// order)` sequence, so the choice is invisible to results — it only
/// moves wall time. The calendar queue is the default; the binary heap
/// is kept as the reference path for determinism tests and the A4
/// ablation, mirroring the `route_cache` toggle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum DesQueue {
    /// Two-level bucketed calendar queue with an overflow ladder.
    #[default]
    Calendar,
    /// The reference `BinaryHeap` path.
    Heap,
}

impl DesQueue {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DesQueue::Calendar => "calendar",
            DesQueue::Heap => "heap",
        }
    }
}

/// Abstract instruction costs, in cycles, for the PE model.
///
/// These are deliberately coarse (the 1983 design method worked with
/// order-of-magnitude estimates); what matters for the experiments is the
/// *ratios* between computation, memory traffic, and message handling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// One floating-point operation.
    pub flop: Cycles,
    /// One integer/control operation.
    pub int_op: Cycles,
    /// One shared-memory word access from a PE in the same cluster.
    pub mem_word: Cycles,
    /// Fixed kernel overhead to format-and-send one message.
    pub msg_send: Cycles,
    /// Fixed kernel overhead to decode-and-dispatch one received message.
    pub msg_dispatch: Cycles,
    /// Cost to create one task activation record (allocate + initialize).
    pub task_create: Cycles,
    /// Cost of one context switch (assign a PE to a ready task).
    pub context_switch: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            flop: 4,
            int_op: 1,
            mem_word: 2,
            msg_send: 60,
            msg_dispatch: 80,
            task_create: 120,
            context_switch: 40,
        }
    }
}

/// A complete machine configuration.
///
/// Serde note: serialization is hand-written (not derived) so the
/// `des_shards` knob stays backward compatible — configurations written
/// before the knob existed deserialize with `des_shards = 1`, and a
/// config running single-sharded serializes to exactly the same document
/// it did before the knob, keeping content hashes and cached results
/// stable. Sharded execution is bitwise-identical to sequential, so the
/// knob is an execution-mode choice, not a result-identity one; tenants
/// that do pin `des_shards > 1` partition caches the same way
/// `des_queue = Heap` does.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineConfig {
    /// Number of clusters.
    pub clusters: u32,
    /// PEs per cluster, *including* the kernel PE. Must be ≥ 1; with 1 PE
    /// the kernel PE also runs user work (FEM-1 style).
    pub pes_per_cluster: u32,
    /// Shared memory per cluster, in words.
    pub memory_per_cluster: Words,
    /// Network topology over clusters.
    pub topology: Topology,
    /// Per-hop network latency, in cycles.
    pub link_latency: Cycles,
    /// Link bandwidth, in words per cycle (applied per packet).
    pub words_per_cycle: u32,
    /// Maximum packet payload; larger messages are segmented.
    pub max_packet_words: Words,
    /// Message header size, in words, charged per packet.
    pub header_words: Words,
    /// Instruction cost model.
    pub cost: CostModel,
    /// Whether each cluster reserves PE 0 as a dedicated kernel PE.
    pub dedicated_kernel_pe: bool,
    /// Whether the network memoizes `(from, to)` routes between fault
    /// transitions. On by default; turning it off selects the reference
    /// recompute-per-message path (bitwise-identical results, slower) and
    /// exists for determinism tests and the A3 ablation.
    pub route_cache: bool,
    /// Discrete-event queue backend. [`DesQueue::Calendar`] by default;
    /// [`DesQueue::Heap`] selects the reference binary-heap path
    /// (identical pop order, slower) for determinism tests and the A4
    /// ablation.
    pub des_queue: DesQueue,
    /// Number of cluster-group shards the simulated plane is advanced on.
    /// `1` (the default) is the sequential reference path; `N > 1`
    /// partitions the clusters into `N` contiguous groups advanced
    /// concurrently on the `fem2-par` pool, synchronized at the
    /// conservative lookahead horizon derived from the network's link
    /// latencies. Results are bitwise-identical for every shard count.
    pub des_shards: u32,
}

impl Serialize for MachineConfig {
    fn to_value(&self) -> serde::json::Value {
        use serde::json::Value;
        let mut fields = vec![
            ("clusters".to_string(), self.clusters.to_value()),
            (
                "pes_per_cluster".to_string(),
                self.pes_per_cluster.to_value(),
            ),
            (
                "memory_per_cluster".to_string(),
                self.memory_per_cluster.to_value(),
            ),
            ("topology".to_string(), self.topology.to_value()),
            ("link_latency".to_string(), self.link_latency.to_value()),
            (
                "words_per_cycle".to_string(),
                self.words_per_cycle.to_value(),
            ),
            (
                "max_packet_words".to_string(),
                self.max_packet_words.to_value(),
            ),
            ("header_words".to_string(), self.header_words.to_value()),
            ("cost".to_string(), self.cost.to_value()),
            (
                "dedicated_kernel_pe".to_string(),
                self.dedicated_kernel_pe.to_value(),
            ),
            ("route_cache".to_string(), self.route_cache.to_value()),
            ("des_queue".to_string(), self.des_queue.to_value()),
        ];
        // Omit the default so pre-knob documents and content hashes are
        // byte-for-byte unchanged.
        if self.des_shards != 1 {
            fields.push(("des_shards".to_string(), self.des_shards.to_value()));
        }
        Value::Obj(fields)
    }
}

impl Deserialize for MachineConfig {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::Error> {
        Ok(MachineConfig {
            clusters: u32::from_value(v.get_field("clusters")?)?,
            pes_per_cluster: u32::from_value(v.get_field("pes_per_cluster")?)?,
            memory_per_cluster: Words::from_value(v.get_field("memory_per_cluster")?)?,
            topology: Topology::from_value(v.get_field("topology")?)?,
            link_latency: Cycles::from_value(v.get_field("link_latency")?)?,
            words_per_cycle: u32::from_value(v.get_field("words_per_cycle")?)?,
            max_packet_words: Words::from_value(v.get_field("max_packet_words")?)?,
            header_words: Words::from_value(v.get_field("header_words")?)?,
            cost: CostModel::from_value(v.get_field("cost")?)?,
            dedicated_kernel_pe: bool::from_value(v.get_field("dedicated_kernel_pe")?)?,
            route_cache: bool::from_value(v.get_field("route_cache")?)?,
            des_queue: DesQueue::from_value(v.get_field("des_queue")?)?,
            des_shards: match v.get_field("des_shards") {
                Ok(f) => u32::from_value(f)?,
                Err(_) => 1,
            },
        })
    }
}

impl MachineConfig {
    /// The clustered FEM-2 organization the paper evolves: 4 clusters of 8
    /// PEs around shared memories, crossbar between clusters, dedicated
    /// kernel PE per cluster.
    pub fn fem2_default() -> Self {
        MachineConfig {
            clusters: 4,
            pes_per_cluster: 8,
            memory_per_cluster: 4 << 20, // 4 Mwords
            topology: Topology::Crossbar,
            link_latency: 20,
            words_per_cycle: 1,
            max_packet_words: 256,
            header_words: 4,
            cost: CostModel::default(),
            dedicated_kernel_pe: true,
            route_cache: true,
            des_queue: DesQueue::Calendar,
            des_shards: 1,
        }
    }

    /// A FEM-1-style flat array: `n` single-PE nodes with small private
    /// memories on a global bus, no dedicated kernel PE. This is the
    /// bottom-up baseline the paper contrasts against.
    pub fn fem1_style(n: u32) -> Self {
        MachineConfig {
            clusters: n,
            pes_per_cluster: 1,
            memory_per_cluster: 64 << 10, // 64 Kwords per node
            topology: Topology::Bus,
            link_latency: 20,
            words_per_cycle: 1,
            max_packet_words: 64,
            header_words: 4,
            cost: CostModel::default(),
            dedicated_kernel_pe: false,
            route_cache: true,
            des_queue: DesQueue::Calendar,
            des_shards: 1,
        }
    }

    /// A clustered machine with the given shape and the FEM-2 defaults for
    /// everything else.
    pub fn clustered(clusters: u32, pes_per_cluster: u32, topology: Topology) -> Self {
        MachineConfig {
            clusters,
            pes_per_cluster,
            topology,
            ..Self::fem2_default()
        }
    }

    /// Total PE count.
    pub fn total_pes(&self) -> u32 {
        self.clusters * self.pes_per_cluster
    }

    /// PEs per cluster available for user work (excludes a dedicated kernel
    /// PE when configured and the cluster has more than one PE).
    pub fn worker_pes_per_cluster(&self) -> u32 {
        if self.dedicated_kernel_pe && self.pes_per_cluster > 1 {
            self.pes_per_cluster - 1
        } else {
            self.pes_per_cluster
        }
    }

    /// Total user-work PEs across the machine.
    pub fn total_workers(&self) -> u32 {
        self.clusters * self.worker_pes_per_cluster()
    }

    /// Validate structural invariants; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 {
            return Err("clusters must be >= 1".into());
        }
        if self.pes_per_cluster == 0 {
            return Err("pes_per_cluster must be >= 1".into());
        }
        if self.words_per_cycle == 0 {
            return Err("words_per_cycle must be >= 1".into());
        }
        if self.max_packet_words == 0 {
            return Err("max_packet_words must be >= 1".into());
        }
        if self.des_shards == 0 {
            return Err("des_shards must be >= 1".into());
        }
        match &self.topology {
            Topology::Mesh2D { width } => {
                if *width == 0 {
                    return Err("mesh width must be >= 1".into());
                }
                if !self.clusters.is_multiple_of(*width) {
                    return Err(format!(
                        "mesh width {} does not divide cluster count {}",
                        width, self.clusters
                    ));
                }
            }
            Topology::Torus { dims } => {
                if !(2..=4).contains(&dims.len()) {
                    return Err(format!(
                        "torus dims must have 2 to 4 dimensions, got {}",
                        dims.len()
                    ));
                }
                if let Some(d) = dims.iter().find(|&&d| d < 2) {
                    return Err(format!("torus dims entries must be >= 2, got {d}"));
                }
                let product = dims.iter().try_fold(1u32, |p, &d| p.checked_mul(d));
                if product != Some(self.clusters) {
                    return Err(format!(
                        "torus dims {:?} do not factor cluster count {}",
                        dims, self.clusters
                    ));
                }
            }
            Topology::FatTree { radix } => {
                if *radix < 2 {
                    return Err(format!("fat-tree radix must be >= 2, got {radix}"));
                }
                if !self.clusters.is_multiple_of(*radix) {
                    return Err(format!(
                        "fat-tree radix {} does not divide cluster count {}",
                        radix, self.clusters
                    ));
                }
            }
            Topology::Bus | Topology::Ring | Topology::Crossbar => {}
        }
        Ok(())
    }

    /// A compact one-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{}x{} {} ({} PEs, {} Kwords/cluster)",
            self.clusters,
            self.pes_per_cluster,
            self.topology.name(),
            self.total_pes(),
            self.memory_per_cluster >> 10
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fem2_default_is_valid_and_clustered() {
        let c = MachineConfig::fem2_default();
        c.validate().unwrap();
        assert!(c.clusters > 1);
        assert!(c.pes_per_cluster > 1);
        assert!(c.dedicated_kernel_pe);
        assert_eq!(c.total_pes(), 32);
        assert_eq!(c.worker_pes_per_cluster(), 7);
        assert_eq!(c.total_workers(), 28);
    }

    #[test]
    fn fem1_style_is_flat_single_pe_nodes() {
        let c = MachineConfig::fem1_style(16);
        c.validate().unwrap();
        assert_eq!(c.clusters, 16);
        assert_eq!(c.pes_per_cluster, 1);
        assert_eq!(c.topology, Topology::Bus);
        // With one PE per node, the PE both runs the kernel and user work.
        assert_eq!(c.worker_pes_per_cluster(), 1);
        assert_eq!(c.total_workers(), 16);
    }

    #[test]
    fn clustered_builder_overrides_shape() {
        let c = MachineConfig::clustered(8, 4, Topology::Ring);
        c.validate().unwrap();
        assert_eq!(c.clusters, 8);
        assert_eq!(c.pes_per_cluster, 4);
        assert_eq!(c.topology, Topology::Ring);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut c = MachineConfig::fem2_default();
        c.clusters = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::fem2_default();
        c.pes_per_cluster = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::fem2_default();
        c.words_per_cycle = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::fem2_default();
        c.max_packet_words = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_checks_mesh_width() {
        let mut c = MachineConfig::fem2_default();
        c.clusters = 6;
        c.topology = Topology::Mesh2D { width: 4 };
        assert!(c.validate().is_err());
        c.topology = Topology::Mesh2D { width: 3 };
        assert!(c.validate().is_ok());
        c.topology = Topology::Mesh2D { width: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn dedicated_kernel_pe_only_reserved_when_multiple() {
        let mut c = MachineConfig::fem2_default();
        c.pes_per_cluster = 1;
        assert_eq!(c.worker_pes_per_cluster(), 1);
    }

    #[test]
    fn topology_names() {
        assert_eq!(Topology::Bus.name(), "bus");
        assert_eq!(Topology::Ring.name(), "ring");
        assert_eq!(Topology::Mesh2D { width: 2 }.name(), "mesh2d");
        assert_eq!(Topology::Crossbar.name(), "crossbar");
        assert_eq!(Topology::Torus { dims: vec![2, 2] }.name(), "torus");
        assert_eq!(Topology::FatTree { radix: 2 }.name(), "fattree");
    }

    #[test]
    fn validate_checks_torus_dims() {
        let mut c = MachineConfig::fem2_default();
        c.clusters = 64;
        c.topology = Topology::Torus { dims: vec![8, 8] };
        c.validate().unwrap();
        c.topology = Topology::Torus {
            dims: vec![4, 4, 4],
        };
        c.validate().unwrap();
        c.topology = Topology::Torus {
            dims: vec![2, 2, 4, 4],
        };
        c.validate().unwrap();
        // Product mismatch names the field.
        c.topology = Topology::Torus { dims: vec![8, 4] };
        let err = c.validate().unwrap_err();
        assert!(err.contains("torus dims"), "{err}");
        assert!(err.contains("64"), "{err}");
        // Too few / too many dimensions.
        c.topology = Topology::Torus { dims: vec![64] };
        assert!(c.validate().unwrap_err().contains("2 to 4"));
        c.topology = Topology::Torus {
            dims: vec![2, 2, 2, 2, 4],
        };
        assert!(c.validate().unwrap_err().contains("2 to 4"));
        // Degenerate extents (would alias +/- wrap links).
        c.topology = Topology::Torus { dims: vec![1, 64] };
        assert!(c.validate().unwrap_err().contains(">= 2"));
    }

    #[test]
    fn validate_checks_fat_tree_radix() {
        let mut c = MachineConfig::fem2_default();
        c.clusters = 64;
        c.topology = Topology::FatTree { radix: 8 };
        c.validate().unwrap();
        c.topology = Topology::FatTree { radix: 64 };
        c.validate().unwrap();
        c.topology = Topology::FatTree { radix: 5 };
        let err = c.validate().unwrap_err();
        assert!(err.contains("fat-tree radix"), "{err}");
        assert!(err.contains("does not divide"), "{err}");
        c.topology = Topology::FatTree { radix: 1 };
        assert!(c.validate().unwrap_err().contains(">= 2"));
        c.topology = Topology::FatTree { radix: 0 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn new_topologies_round_trip_through_serde() {
        let mut cfg = MachineConfig::clustered(
            64,
            4,
            Topology::Torus {
                dims: vec![4, 4, 4],
            },
        );
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        cfg.topology = Topology::FatTree { radix: 8 };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    /// Adding topology variants must not disturb the serialized bytes of
    /// existing configurations (content hashes key caches and registries).
    #[test]
    fn existing_topology_serialization_is_stable() {
        let json = serde_json::to_string(&MachineConfig::fem2_default()).unwrap();
        assert!(json.contains("\"topology\":\"Crossbar\""), "{json}");
        let json = serde_json::to_string(&MachineConfig::clustered(
            6,
            2,
            Topology::Mesh2D { width: 3 },
        ))
        .unwrap();
        assert!(
            json.contains("\"topology\":{\"Mesh2D\":{\"width\":3}}"),
            "{json}"
        );
    }

    #[test]
    fn describe_mentions_shape() {
        let c = MachineConfig::fem2_default();
        let d = c.describe();
        assert!(d.contains("4x8"));
        assert!(d.contains("crossbar"));
    }

    #[test]
    fn cost_model_default_ratios_sane() {
        let m = CostModel::default();
        assert!(m.flop > m.int_op);
        assert!(m.msg_send > m.mem_word, "messages dwarf local access");
        assert!(m.task_create > m.context_switch);
    }

    #[test]
    fn config_clone_eq() {
        let c = MachineConfig::fem2_default();
        assert_eq!(c.clone(), c);
    }

    #[test]
    fn des_queue_defaults_to_calendar_and_names() {
        assert_eq!(MachineConfig::fem2_default().des_queue, DesQueue::Calendar);
        assert_eq!(MachineConfig::fem1_style(4).des_queue, DesQueue::Calendar);
        assert_eq!(DesQueue::default(), DesQueue::Calendar);
        assert_eq!(DesQueue::Calendar.name(), "calendar");
        assert_eq!(DesQueue::Heap.name(), "heap");
    }

    #[test]
    fn des_queue_round_trips_through_serde() {
        let mut cfg = MachineConfig::fem2_default();
        cfg.des_queue = DesQueue::Heap;
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.des_queue, DesQueue::Heap);
        assert_eq!(back, cfg);
    }

    #[test]
    fn des_shards_defaults_and_validates() {
        assert_eq!(MachineConfig::fem2_default().des_shards, 1);
        assert_eq!(MachineConfig::fem1_style(4).des_shards, 1);
        let mut c = MachineConfig::fem2_default();
        c.des_shards = 0;
        assert!(c.validate().is_err());
        c.des_shards = 4;
        c.validate().unwrap();
    }

    #[test]
    fn des_shards_round_trips_through_serde() {
        let mut cfg = MachineConfig::fem2_default();
        cfg.des_shards = 4;
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("des_shards"));
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.des_shards, 4);
        assert_eq!(back, cfg);
    }

    /// Documents written before the `des_shards` knob (no such field) must
    /// keep deserializing, defaulting to the sequential path — and a
    /// single-sharded config must serialize without the field so pre-knob
    /// content hashes are unchanged.
    #[test]
    fn des_shards_is_backward_compatible_in_serde() {
        let cfg = MachineConfig::fem2_default();
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(!json.contains("des_shards"), "default omits the knob");
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.des_shards, 1);
        assert_eq!(back, cfg);
    }
}
