//! Run budgets: bounds a supervisor can place on a simulation before it
//! starts, checked cooperatively as simulated time advances.
//!
//! A budget carries up to four limits:
//!
//! * **max simulated cycles** — deterministic: the same scenario with the
//!   same cycle budget aborts at the same simulated time on every run;
//! * **max DES events** — deterministic: bounds the discrete-event loop by
//!   pop count, independent of how far the clock has advanced;
//! * **wall-clock deadline** — operational only: protects the host from a
//!   runaway simulation at the price of nondeterministic abort points;
//! * **cooperative cancel flag** — operational only: lets a supervisor
//!   (e.g. a shutting-down server) ask an in-flight run to stop.
//!
//! The deterministic limits are part of a job's identity and may be hashed;
//! the operational ones never are. `MachineConfig` deliberately does *not*
//! carry a budget: its serialized form participates in content hashes, so
//! budgets thread through scenario/run APIs as runtime parameters instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::Cycles;

/// Why a budgeted run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// The simulated clock passed the cycle budget.
    CyclesExceeded,
    /// The DES loop popped more events than the budget allows.
    EventsExceeded,
    /// The host wall-clock deadline passed.
    WallDeadline,
    /// The cooperative cancel flag was raised.
    Cancelled,
}

impl AbortCause {
    /// Stable lower-case name, used in registry records and client JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AbortCause::CyclesExceeded => "cycles_exceeded",
            AbortCause::EventsExceeded => "events_exceeded",
            AbortCause::WallDeadline => "wall_deadline",
            AbortCause::Cancelled => "cancelled",
        }
    }
}

/// A budgeted run that stopped before completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunAborted {
    /// Which limit fired.
    pub cause: AbortCause,
    /// Simulated time when the abort was detected.
    pub sim_cycles: Cycles,
    /// DES events processed when the abort was detected (0 for runs that
    /// never touch an event queue).
    pub des_events: u64,
}

impl std::fmt::Display for RunAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run aborted ({}) at {} sim cycles, {} DES events",
            self.cause.name(),
            self.sim_cycles,
            self.des_events
        )
    }
}

/// Limits for one run. `Default` is unlimited: no field set, nothing ever
/// aborts, and the budgeted run APIs behave exactly like their unbudgeted
/// counterparts.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    /// Abort once the simulated clock passes this many cycles.
    pub max_sim_cycles: Option<Cycles>,
    /// Abort once the DES loop has popped this many events.
    pub max_des_events: Option<u64>,
    /// Abort once this much host wall-clock time has elapsed since the
    /// meter was started.
    pub wall_limit: Option<Duration>,
    /// Abort when this flag is raised (checked cooperatively).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunBudget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// A budget bounding only simulated cycles (fully deterministic).
    pub fn max_cycles(cycles: Cycles) -> Self {
        RunBudget {
            max_sim_cycles: Some(cycles),
            ..RunBudget::default()
        }
    }

    /// True if no limit is set (the common case; checks short-circuit).
    pub fn is_unlimited(&self) -> bool {
        self.max_sim_cycles.is_none()
            && self.max_des_events.is_none()
            && self.wall_limit.is_none()
            && self.cancel.is_none()
    }

    /// Start metering this budget now (captures the wall-clock anchor).
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            budget: self.clone(),
            started: Instant::now(),
            wall_checks: AtomicU64::new(0),
        }
    }
}

/// How often (in calls to [`BudgetMeter::check`]) the wall clock is
/// consulted; the deterministic limits are checked on every call. The
/// gate is the meter's own call counter — not the caller-supplied event
/// count, which some polling paths (the navm charge polls) always pass as
/// 0 — so `Instant::now` stays off every hot path while bounding
/// wall-deadline overshoot to a fraction of a millisecond of work.
const WALL_CHECK_PERIOD: u64 = 512;

/// A started budget: the limits plus the wall-clock anchor.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: RunBudget,
    started: Instant,
    /// Calls to `check` with a wall limit armed; gates the clock consult.
    wall_checks: AtomicU64,
}

impl Clone for BudgetMeter {
    fn clone(&self) -> Self {
        BudgetMeter {
            budget: self.budget.clone(),
            started: self.started,
            wall_checks: AtomicU64::new(self.wall_checks.load(Ordering::Relaxed)),
        }
    }
}

impl Default for BudgetMeter {
    fn default() -> Self {
        RunBudget::unlimited().start()
    }
}

impl BudgetMeter {
    /// The limits being metered.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Check every limit against the given progress counters. Deterministic
    /// limits (cycles, events) are checked first and on every call, so runs
    /// that abort on them abort identically across repeats; the wall clock
    /// is only consulted every [`WALL_CHECK_PERIOD`] calls (keyed off the
    /// meter's own call counter) and the cancel flag on every call.
    pub fn check(&self, sim_cycles: Cycles, des_events: u64) -> Result<(), RunAborted> {
        if self.budget.is_unlimited() {
            return Ok(());
        }
        let abort = |cause| RunAborted {
            cause,
            sim_cycles,
            des_events,
        };
        if let Some(max) = self.budget.max_sim_cycles {
            if sim_cycles > max {
                return Err(abort(AbortCause::CyclesExceeded));
            }
        }
        if let Some(max) = self.budget.max_des_events {
            if des_events > max {
                return Err(abort(AbortCause::EventsExceeded));
            }
        }
        if let Some(flag) = &self.budget.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(abort(AbortCause::Cancelled));
            }
        }
        if let Some(limit) = self.budget.wall_limit {
            let n = self.wall_checks.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(WALL_CHECK_PERIOD) && self.started.elapsed() > limit {
                return Err(abort(AbortCause::WallDeadline));
            }
        }
        Ok(())
    }

    /// [`check`](Self::check) as an `Option`, for call sites that poll
    /// rather than propagate.
    pub fn exceeded(&self, sim_cycles: Cycles, des_events: u64) -> Option<RunAborted> {
        self.check(sim_cycles, des_events).err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_aborts() {
        let meter = RunBudget::unlimited().start();
        assert!(meter.check(u64::MAX, u64::MAX).is_ok());
    }

    #[test]
    fn cycle_budget_fires_deterministically() {
        let meter = RunBudget::max_cycles(100).start();
        assert!(meter.check(100, 0).is_ok(), "at the limit is still in");
        let err = meter.check(101, 7).unwrap_err();
        assert_eq!(err.cause, AbortCause::CyclesExceeded);
        assert_eq!(err.sim_cycles, 101);
        assert_eq!(err.des_events, 7);
        // Repeat checks agree bit-for-bit.
        assert_eq!(meter.check(101, 7).unwrap_err(), err);
    }

    #[test]
    fn event_budget_fires_on_pop_count() {
        let budget = RunBudget {
            max_des_events: Some(10),
            ..RunBudget::default()
        };
        let meter = budget.start();
        assert!(meter.check(0, 10).is_ok());
        assert_eq!(
            meter.check(0, 11).unwrap_err().cause,
            AbortCause::EventsExceeded
        );
    }

    #[test]
    fn cancel_flag_aborts_cooperatively() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = RunBudget {
            cancel: Some(Arc::clone(&flag)),
            ..RunBudget::default()
        };
        let meter = budget.start();
        assert!(meter.check(5, 5).is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(meter.check(5, 5).unwrap_err().cause, AbortCause::Cancelled);
    }

    #[test]
    fn wall_deadline_fires_once_elapsed() {
        let budget = RunBudget {
            wall_limit: Some(Duration::from_millis(1)),
            ..RunBudget::default()
        };
        let meter = budget.start();
        std::thread::sleep(Duration::from_millis(5));
        // The meter's first check consults the clock (call count 0).
        assert_eq!(
            meter.check(0, 0).unwrap_err().cause,
            AbortCause::WallDeadline
        );
        // Further checks inside the same period skip the clock — even at
        // event count 0, which the navm polling paths always pass.
        assert!(meter.check(0, 0).is_ok());
        assert!(meter.check(0, 1).is_ok());
    }

    #[test]
    fn deterministic_limits_outrank_the_wall_clock() {
        let budget = RunBudget {
            max_sim_cycles: Some(10),
            wall_limit: Some(Duration::from_nanos(1)),
            ..RunBudget::default()
        };
        let meter = budget.start();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            meter.check(11, 0).unwrap_err().cause,
            AbortCause::CyclesExceeded,
            "cycles checked before wall"
        );
    }
}
