//! Fault injection and the reconfiguration plan.
//!
//! The requirements list includes "provide reconfigurability to isolate
//! faulty hardware components". The model here: PEs fail at planned times; a
//! failed PE is isolated (never again assigned work), and if it was the
//! cluster's kernel PE, the lowest-indexed surviving PE is promoted. The
//! [`FaultPlan`] carries the schedule; the [`crate::Machine`] applies it.

use crate::pe::PeId;
use crate::Cycles;

/// A scheduled PE failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// When the PE fails.
    pub at: Cycles,
    /// Which PE fails.
    pub pe: PeId,
}

/// A time-ordered plan of PE failures to inject during a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan failing each listed PE at the given time.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.pe));
        FaultPlan { events, cursor: 0 }
    }

    /// Convenience: fail `pes` at time `at`.
    pub fn at(at: Cycles, pes: impl IntoIterator<Item = PeId>) -> Self {
        Self::new(pes.into_iter().map(|pe| FaultEvent { at, pe }).collect())
    }

    /// Total planned failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no failures are planned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Failures that have become due by time `now` and have not yet been
    /// returned. Call repeatedly as the clock advances.
    pub fn due(&mut self, now: Cycles) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// The time of the next pending failure, if any.
    pub fn next_at(&self) -> Option<Cycles> {
        self.events.get(self.cursor).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_nothing_due() {
        let mut p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.due(u64::MAX).is_empty());
        assert_eq!(p.next_at(), None);
    }

    #[test]
    fn events_sort_by_time() {
        let mut p = FaultPlan::new(vec![
            FaultEvent {
                at: 50,
                pe: PeId::new(0, 1),
            },
            FaultEvent {
                at: 10,
                pe: PeId::new(1, 0),
            },
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.next_at(), Some(10));
        let due = p.due(10);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].pe, PeId::new(1, 0));
        assert_eq!(p.next_at(), Some(50));
    }

    #[test]
    fn due_is_incremental() {
        let mut p = FaultPlan::at(100, [PeId::new(0, 0), PeId::new(0, 1)]);
        assert!(p.due(99).is_empty());
        assert_eq!(p.due(100).len(), 2);
        assert!(p.due(1000).is_empty(), "already consumed");
    }

    #[test]
    fn at_builder_sets_common_time() {
        let p = FaultPlan::at(7, [PeId::new(2, 3)]);
        assert_eq!(
            p.events[0],
            FaultEvent {
                at: 7,
                pe: PeId::new(2, 3)
            }
        );
    }
}
