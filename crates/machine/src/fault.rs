//! Fault injection and the reconfiguration plan.
//!
//! The requirements list includes "provide reconfigurability to isolate
//! faulty hardware components". The fault plane models three hardware
//! failure surfaces:
//!
//! * **PEs** — permanent kills, or transient faults with a `recover_at`
//!   time after which the PE rejoins the free pool (a recovered PE never
//!   reclaims kernel duty it was promoted away from);
//! * **links** — dead links force a deterministic reroute where the
//!   topology allows one, degraded links multiply occupancy;
//! * **memory banks** — a failed bank shrinks the cluster heap arena and
//!   invalidates in-flight allocations that no longer fit.
//!
//! The [`FaultPlan`] carries the schedule; the [`crate::Machine`] and the
//! kernel simulation apply it.

use crate::pe::PeId;
use crate::{Cycles, Words};

/// What fails.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultKind {
    /// A PE fails; with `recover_at` it is transient and rejoins the free
    /// pool at that time.
    Pe {
        /// Which PE fails.
        pe: PeId,
        /// Recovery time for a transient fault; `None` is permanent.
        recover_at: Option<Cycles>,
    },
    /// A network link fails; `degrade` of `None` kills it outright, while
    /// `Some(f)` multiplies its occupancy by `f` (a slow, flaky link).
    Link {
        /// Link id in the topology's link-id scheme.
        link: usize,
        /// Slowdown factor (≥ 2 to matter); `None` means dead.
        degrade: Option<u32>,
    },
    /// A cluster-memory bank of `words` capacity fails.
    Memory {
        /// Which cluster's memory.
        cluster: u32,
        /// Capacity removed from the arena, words.
        words: Words,
    },
    /// A network link is repaired: revived if dead, degradation cleared.
    LinkRecover {
        /// Link id in the topology's link-id scheme.
        link: usize,
    },
}

/// A scheduled hardware failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: Cycles,
    /// What fails.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A permanent PE kill (the original fault model).
    pub fn kill_pe(at: Cycles, pe: PeId) -> Self {
        FaultEvent {
            at,
            kind: FaultKind::Pe {
                pe,
                recover_at: None,
            },
        }
    }
}

/// A time-ordered plan of hardware failures to inject during a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from explicit events, sorted by (time, kind) for determinism.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.at, e.kind));
        FaultPlan { events, cursor: 0 }
    }

    /// Convenience: permanently kill `pes` at time `at`.
    pub fn at(at: Cycles, pes: impl IntoIterator<Item = PeId>) -> Self {
        Self::new(
            pes.into_iter()
                .map(|pe| FaultEvent::kill_pe(at, pe))
                .collect(),
        )
    }

    fn push(mut self, ev: FaultEvent) -> Self {
        debug_assert_eq!(self.cursor, 0, "extend plans before running them");
        self.events.push(ev);
        self.events.sort_by_key(|e| (e.at, e.kind));
        self
    }

    /// Add a permanent PE kill.
    pub fn kill_pe(self, at: Cycles, pe: PeId) -> Self {
        self.push(FaultEvent::kill_pe(at, pe))
    }

    /// Add a transient PE fault: fails at `at`, rejoins the free pool at
    /// `recover_at`.
    pub fn transient_pe(self, at: Cycles, recover_at: Cycles, pe: PeId) -> Self {
        debug_assert!(recover_at > at, "recovery must follow the fault");
        self.push(FaultEvent {
            at,
            kind: FaultKind::Pe {
                pe,
                recover_at: Some(recover_at),
            },
        })
    }

    /// Add a dead-link fault.
    pub fn kill_link(self, at: Cycles, link: usize) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::Link {
                link,
                degrade: None,
            },
        })
    }

    /// Add a degraded-link fault: occupancy multiplied by `factor`.
    pub fn degrade_link(self, at: Cycles, link: usize, factor: u32) -> Self {
        debug_assert!(factor >= 1);
        self.push(FaultEvent {
            at,
            kind: FaultKind::Link {
                link,
                degrade: Some(factor),
            },
        })
    }

    /// Add a link repair: at `at` the link is revived (if dead) and any
    /// degradation cleared. Pair with [`FaultPlan::kill_link`] or
    /// [`FaultPlan::degrade_link`] to model a transient link outage.
    pub fn recover_link(self, at: Cycles, link: usize) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::LinkRecover { link },
        })
    }

    /// Add a memory-bank fault removing `words` from `cluster`'s arena.
    pub fn fail_memory(self, at: Cycles, cluster: u32, words: Words) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::Memory { cluster, words },
        })
    }

    /// Total planned failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no failures are planned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Failures that have become due by time `now` and have not yet been
    /// returned. Call repeatedly as the clock advances; returns a borrowed
    /// slice (empty in the common nothing-due case) without allocating.
    pub fn due(&mut self, now: Cycles) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// The time of the next pending failure, if any.
    pub fn next_at(&self) -> Option<Cycles> {
        self.events.get(self.cursor).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_nothing_due() {
        let mut p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.due(u64::MAX).is_empty());
        assert_eq!(p.next_at(), None);
    }

    #[test]
    fn events_sort_by_time() {
        let mut p = FaultPlan::new(vec![
            FaultEvent::kill_pe(50, PeId::new(0, 1)),
            FaultEvent::kill_pe(10, PeId::new(1, 0)),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.next_at(), Some(10));
        let due = p.due(10);
        assert_eq!(due.len(), 1);
        assert_eq!(
            due[0].kind,
            FaultKind::Pe {
                pe: PeId::new(1, 0),
                recover_at: None
            }
        );
        assert_eq!(p.next_at(), Some(50));
    }

    #[test]
    fn due_is_incremental_and_allocation_free_fast_path() {
        let mut p = FaultPlan::at(100, [PeId::new(0, 0), PeId::new(0, 1)]);
        assert!(p.due(99).is_empty());
        assert_eq!(p.due(100).len(), 2);
        assert!(p.due(1000).is_empty(), "already consumed");
    }

    #[test]
    fn at_builder_sets_common_time() {
        let p = FaultPlan::at(7, [PeId::new(2, 3)]);
        assert_eq!(p.events[0], FaultEvent::kill_pe(7, PeId::new(2, 3)));
    }

    #[test]
    fn chained_builders_cover_all_kinds_and_stay_sorted() {
        let mut p = FaultPlan::none()
            .kill_link(300, 2)
            .transient_pe(100, 900, PeId::new(0, 1))
            .degrade_link(200, 0, 4)
            .fail_memory(50, 1, 1024)
            .kill_pe(400, PeId::new(1, 2));
        assert_eq!(p.len(), 5);
        assert_eq!(p.next_at(), Some(50));
        let due: Vec<FaultEvent> = p.due(u64::MAX).to_vec();
        assert_eq!(
            due[0].kind,
            FaultKind::Memory {
                cluster: 1,
                words: 1024
            }
        );
        assert_eq!(
            due[1].kind,
            FaultKind::Pe {
                pe: PeId::new(0, 1),
                recover_at: Some(900)
            }
        );
        assert_eq!(
            due[2].kind,
            FaultKind::Link {
                link: 0,
                degrade: Some(4)
            }
        );
        assert_eq!(
            due[3].kind,
            FaultKind::Link {
                link: 2,
                degrade: None
            }
        );
    }
}
