//! Per-cluster shared memories.
//!
//! The machine level tracks *capacity*: how many words each cluster's shared
//! memory has, how many are allocated, and the high-water mark. (The
//! variable-size-block free list — the system programmer's "general heap" —
//! lives one layer up, in `fem2-kernel`; this module is the hardware it
//! draws from.)

use crate::Words;
use std::fmt;

/// Out-of-memory error for a cluster allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfMemory {
    /// The cluster whose memory was exhausted.
    pub cluster: u32,
    /// The request that failed, in words.
    pub requested: Words,
    /// Words still unallocated at the time of the request.
    pub available: Words,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster {} out of memory: requested {} words, {} available",
            self.cluster, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// One cluster's shared memory: capacity accounting with a high-water mark.
#[derive(Clone, Debug)]
pub struct ClusterMemory {
    cluster: u32,
    capacity: Words,
    used: Words,
    high_water: Words,
    allocs: u64,
    frees: u64,
}

impl ClusterMemory {
    /// A memory of `capacity` words for cluster `cluster`.
    pub fn new(cluster: u32, capacity: Words) -> Self {
        ClusterMemory {
            cluster,
            capacity,
            used: 0,
            high_water: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> Words {
        self.capacity
    }

    /// Words currently allocated.
    pub fn used(&self) -> Words {
        self.used
    }

    /// Words currently free. After a bank fault `used` may transiently
    /// exceed `capacity` (until victims are invalidated), so this saturates.
    pub fn available(&self) -> Words {
        self.capacity.saturating_sub(self.used)
    }

    /// Peak allocation over the memory's lifetime.
    pub fn high_water(&self) -> Words {
        self.high_water
    }

    /// Number of successful allocations.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Number of frees.
    pub fn free_count(&self) -> u64 {
        self.frees
    }

    /// Allocate `words`; fails with [`OutOfMemory`] if capacity would be
    /// exceeded.
    pub fn alloc(&mut self, words: Words) -> Result<(), OutOfMemory> {
        if words > self.available() {
            return Err(OutOfMemory {
                cluster: self.cluster,
                requested: words,
                available: self.available(),
            });
        }
        self.used += words;
        self.high_water = self.high_water.max(self.used);
        self.allocs += 1;
        Ok(())
    }

    /// Release `words`. Releasing more than is allocated is a logic error
    /// upstream and panics in debug builds; in release it saturates.
    pub fn free(&mut self, words: Words) {
        debug_assert!(words <= self.used, "freeing more than allocated");
        self.used = self.used.saturating_sub(words);
        self.frees += 1;
    }

    /// A memory bank of `words` capacity fails: the arena shrinks. Returns
    /// the words of live allocations that no longer fit — the caller must
    /// invalidate victims (free their allocations) until `used()` is back
    /// within `capacity()`.
    pub fn fail_bank(&mut self, words: Words) -> Words {
        self.capacity = self.capacity.saturating_sub(words);
        self.used.saturating_sub(self.capacity)
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_empty() {
        let m = ClusterMemory::new(0, 1000);
        assert_eq!(m.capacity(), 1000);
        assert_eq!(m.used(), 0);
        assert_eq!(m.available(), 1000);
        assert_eq!(m.high_water(), 0);
        assert_eq!(m.load_factor(), 0.0);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = ClusterMemory::new(0, 1000);
        m.alloc(300).unwrap();
        m.alloc(200).unwrap();
        assert_eq!(m.used(), 500);
        m.free(300);
        assert_eq!(m.used(), 200);
        assert_eq!(m.alloc_count(), 2);
        assert_eq!(m.free_count(), 1);
    }

    #[test]
    fn high_water_is_peak_not_current() {
        let mut m = ClusterMemory::new(0, 1000);
        m.alloc(700).unwrap();
        m.free(600);
        m.alloc(100).unwrap();
        assert_eq!(m.used(), 200);
        assert_eq!(m.high_water(), 700);
    }

    #[test]
    fn oom_reports_request_and_available() {
        let mut m = ClusterMemory::new(3, 100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(err.cluster, 3);
        assert_eq!(err.requested, 20);
        assert_eq!(err.available, 10);
        assert!(err.to_string().contains("cluster 3"));
        // Failed alloc does not change state.
        assert_eq!(m.used(), 90);
        assert_eq!(m.alloc_count(), 1);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = ClusterMemory::new(0, 100);
        m.alloc(100).unwrap();
        assert_eq!(m.available(), 0);
        assert_eq!(m.load_factor(), 1.0);
    }

    #[test]
    fn zero_capacity_load_factor() {
        let m = ClusterMemory::new(0, 0);
        assert_eq!(m.load_factor(), 0.0);
    }

    #[test]
    fn failed_bank_shrinks_arena_and_reports_overflow() {
        let mut m = ClusterMemory::new(0, 1000);
        m.alloc(600).unwrap();
        // Losing 300 words still leaves room for the 600 in use.
        assert_eq!(m.fail_bank(300), 0);
        assert_eq!(m.capacity(), 700);
        assert_eq!(m.available(), 100);
        // Losing 200 more puts 100 words of live data in the failed bank.
        assert_eq!(m.fail_bank(200), 100);
        assert_eq!(m.capacity(), 500);
        assert_eq!(m.available(), 0, "available saturates, not underflows");
        // Invalidating a 150-word victim restores headroom.
        m.free(150);
        assert_eq!(m.used(), 450);
        assert_eq!(m.available(), 50);
    }
}
