//! Measurement counters: the numbers the FEM-2 design method exists to
//! produce.
//!
//! The paper's simulations "measure the storage, processing, and
//! communication patterns in typical FEM-2 applications". [`Stats`] gathers
//! exactly those three families — processing (flops, integer ops, memory
//! words), communication (messages, words), and storage (allocation
//! high-water, via [`crate::ClusterMemory`]) — and groups them into named
//! *phases* (e.g. `assembly`, `solve`, `stress`) so per-phase requirement
//! tables can be printed.

use std::collections::BTreeMap;

/// Counters for one phase of an application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Floating-point operations charged.
    pub flops: u64,
    /// Integer / control operations charged.
    pub int_ops: u64,
    /// Shared-memory words read or written.
    pub mem_words: u64,
    /// Remote (inter-cluster) messages sent.
    pub messages: u64,
    /// Payload words carried by remote messages.
    pub msg_words: u64,
    /// Task activations created.
    pub tasks_created: u64,
    /// Kernel messages of any type processed.
    pub kernel_msgs: u64,
}

impl PhaseCounters {
    /// Fold another set of counters into this one (plain `u64` sums, so
    /// folding per-shard counters in any fixed order is exact).
    pub fn add(&mut self, other: &PhaseCounters) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.mem_words += other.mem_words;
        self.messages += other.messages;
        self.msg_words += other.msg_words;
        self.tasks_created += other.tasks_created;
        self.kernel_msgs += other.kernel_msgs;
    }
}

/// Name of the implicit phase active before the first [`Stats::phase`]
/// call (matches `fem2_trace`'s startup phase).
pub const STARTUP_PHASE: &str = "startup";

/// Phase-grouped measurement counters for one run.
#[derive(Clone, Debug)]
pub struct Stats {
    phases: BTreeMap<String, PhaseCounters>,
    order: Vec<String>,
    current: String,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            phases: BTreeMap::new(),
            order: Vec::new(),
            current: STARTUP_PHASE.to_string(),
        }
    }
}

impl Stats {
    /// Fresh stats; counts accrue to the implicit [`STARTUP_PHASE`] until
    /// [`Stats::phase`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch the current phase; counters accrue to it until the next call.
    pub fn phase(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.phases.contains_key(&name) {
            self.order.push(name.clone());
            self.phases.insert(name.clone(), PhaseCounters::default());
        }
        self.current = name;
    }

    /// The current phase name.
    pub fn current_phase(&self) -> &str {
        &self.current
    }

    fn cur(&mut self) -> &mut PhaseCounters {
        if !self.phases.contains_key(&self.current) {
            self.order.push(self.current.clone());
        }
        self.phases.entry(self.current.clone()).or_default()
    }

    /// Record `n` floating-point operations.
    pub fn flops(&mut self, n: u64) {
        self.cur().flops += n;
    }

    /// Record `n` integer operations.
    pub fn int_ops(&mut self, n: u64) {
        self.cur().int_ops += n;
    }

    /// Record `n` shared-memory word accesses.
    pub fn mem_words(&mut self, n: u64) {
        self.cur().mem_words += n;
    }

    /// Record one remote message carrying `words` of payload.
    pub fn message(&mut self, words: u64) {
        let c = self.cur();
        c.messages += 1;
        c.msg_words += words;
    }

    /// Record one task creation.
    pub fn task_created(&mut self) {
        self.cur().tasks_created += 1;
    }

    /// Record one kernel message processed.
    pub fn kernel_msg(&mut self) {
        self.cur().kernel_msgs += 1;
    }

    /// Fold a block of counters into the current phase — how the sharded
    /// plate path merges per-shard scratch counters back after a parallel
    /// section.
    pub fn absorb(&mut self, delta: &PhaseCounters) {
        self.cur().add(delta);
    }

    /// Counters for a phase, if it exists.
    pub fn get(&self, phase: &str) -> Option<&PhaseCounters> {
        self.phases.get(phase)
    }

    /// Phase names in first-use order.
    pub fn phase_names(&self) -> &[String] {
        &self.order
    }

    /// Sum of all phases.
    pub fn total(&self) -> PhaseCounters {
        let mut t = PhaseCounters::default();
        for c in self.phases.values() {
            t.add(c);
        }
        t
    }

    /// Render the per-phase requirement table (one row per phase plus a
    /// total row), in the style of the design method's scenario analyses.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>10} {:>12} {:>9} {:>12} {:>7}",
            "phase", "flops", "int_ops", "mem_words", "messages", "msg_words", "tasks"
        );
        let mut render = |name: &str, c: &PhaseCounters| {
            let _ = writeln!(
                out,
                "{:<12} {:>12} {:>10} {:>12} {:>9} {:>12} {:>7}",
                name, c.flops, c.int_ops, c.mem_words, c.messages, c.msg_words, c.tasks_created
            );
        };
        for name in &self.order {
            render(name, &self.phases[name]);
        }
        render("TOTAL", &self.total());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accrue_to_current_phase() {
        let mut s = Stats::new();
        s.phase("assembly");
        s.flops(100);
        s.mem_words(50);
        s.phase("solve");
        s.flops(900);
        s.message(32);
        let a = s.get("assembly").unwrap();
        assert_eq!(a.flops, 100);
        assert_eq!(a.mem_words, 50);
        assert_eq!(a.messages, 0);
        let v = s.get("solve").unwrap();
        assert_eq!(v.flops, 900);
        assert_eq!(v.messages, 1);
        assert_eq!(v.msg_words, 32);
    }

    #[test]
    fn startup_phase_collects_early_counts() {
        let mut s = Stats::new();
        s.int_ops(5);
        s.phase("work");
        s.int_ops(7);
        assert_eq!(s.get(STARTUP_PHASE).unwrap().int_ops, 5);
        assert_eq!(s.get("work").unwrap().int_ops, 7);
        assert_eq!(
            s.phase_names(),
            &["startup".to_string(), "work".to_string()]
        );
    }

    #[test]
    fn returning_to_a_phase_keeps_accumulating() {
        let mut s = Stats::new();
        s.phase("a");
        s.flops(1);
        s.phase("b");
        s.flops(10);
        s.phase("a");
        s.flops(2);
        assert_eq!(s.get("a").unwrap().flops, 3);
        assert_eq!(s.phase_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn total_sums_all_phases() {
        let mut s = Stats::new();
        s.phase("a");
        s.flops(1);
        s.task_created();
        s.kernel_msg();
        s.phase("b");
        s.flops(2);
        s.message(10);
        let t = s.total();
        assert_eq!(t.flops, 3);
        assert_eq!(t.tasks_created, 1);
        assert_eq!(t.kernel_msgs, 1);
        assert_eq!(t.messages, 1);
        assert_eq!(t.msg_words, 10);
    }

    #[test]
    fn table_has_phase_rows_and_total() {
        let mut s = Stats::new();
        s.phase("assembly");
        s.flops(42);
        let table = s.table();
        assert!(table.contains("assembly"));
        assert!(table.contains("TOTAL"));
        assert!(table.contains("42"));
    }

    #[test]
    fn current_phase_reports_name() {
        let mut s = Stats::new();
        assert_eq!(s.current_phase(), STARTUP_PHASE);
        s.phase("x");
        assert_eq!(s.current_phase(), "x");
    }
}
