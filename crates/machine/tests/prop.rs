//! Property tests for the hardware simulator: conservation, determinism,
//! and topology invariants under random traffic.

use fem2_machine::{Machine, MachineConfig, Network, PeId, Topology};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Bus),
        Just(Topology::Ring),
        Just(Topology::Mesh2D { width: 4 }),
        Just(Topology::Crossbar),
        Just(Topology::Torus { dims: vec![2, 4] }),
        Just(Topology::Torus {
            dims: vec![2, 2, 2],
        }),
        Just(Topology::FatTree { radix: 2 }),
        Just(Topology::FatTree { radix: 4 }),
    ]
}

/// Valid torus shapes for 2-D and 3-D routing tests (product ≤ 64).
fn torus_dims_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        (2u32..=4, 2u32..=4).prop_map(|(a, b)| vec![a, b]),
        (2u32..=3, 2u32..=3, 2u32..=3).prop_map(|(a, b, c)| vec![a, b, c]),
    ]
}

proptest! {
    /// Hop counts are symmetric and zero exactly on the diagonal.
    #[test]
    fn hops_symmetric(topo in topo_strategy()) {
        let cfg = MachineConfig::clustered(8, 2, topo);
        let net = Network::new(&cfg);
        for a in 0..8 {
            for b in 0..8 {
                prop_assert_eq!(net.hops(a, b), net.hops(b, a));
                prop_assert_eq!(net.hops(a, b) == 0, a == b);
            }
        }
    }

    /// Word conservation: payload words transmitted equal words requested,
    /// and headers scale with packet count.
    #[test]
    fn transmit_conserves_words(
        topo in topo_strategy(),
        msgs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5000), 1..40),
    ) {
        let mut cfg = MachineConfig::clustered(8, 2, topo);
        cfg.max_packet_words = 256;
        let mut net = Network::new(&cfg);
        let mut expect_payload = 0u64;
        let mut remote = 0u64;
        for &(from, to, words) in &msgs {
            net.transmit(0, from, to, words);
            if from != to {
                expect_payload += words;
                remote += 1;
            }
        }
        prop_assert_eq!(net.payload_words, expect_payload);
        prop_assert_eq!(net.messages, remote);
        // Header accounting: headers = packets * header_words.
        prop_assert_eq!(net.header_words_moved, net.packets * cfg.header_words);
        // Packets at least one per remote message, and enough for payload.
        prop_assert!(net.packets >= remote);
    }

    /// Network arrival times are deterministic and monotone in start time.
    #[test]
    fn transmit_deterministic_and_monotone(
        topo in topo_strategy(),
        from in 0u32..8,
        to in 0u32..8,
        words in 1u64..4096,
        delay in 0u64..10_000,
    ) {
        let cfg = MachineConfig::clustered(8, 2, topo);
        let run = |start: u64| {
            let mut net = Network::new(&cfg);
            net.transmit(start, from, to, words)
        };
        prop_assert_eq!(run(0), run(0), "deterministic");
        let t0 = run(0);
        let t1 = run(delay);
        prop_assert_eq!(t1 - delay, t0, "time-shift invariant on a fresh net");
        // Arrival after start.
        prop_assert!(t0 > 0);
    }

    /// Torus dimension-order routes are hop-minimal (sum of per-dimension
    /// shortest wrap distances, computed independently here), deterministic,
    /// stay inside the link id space, and never revisit a link.
    #[test]
    fn torus_routes_are_dimension_order_minimal(
        dims in torus_dims_strategy(),
        from_raw in 0u32..64,
        to_raw in 0u32..64,
    ) {
        let n: u32 = dims.iter().product();
        let cfg = MachineConfig::clustered(n, 2, Topology::Torus { dims: dims.clone() });
        let net = Network::new(&cfg);
        let (from, to) = (from_raw % n, to_raw % n);
        // Independent coordinate math: dimension 0 has the lowest stride.
        let coords = |mut i: u32| -> Vec<u32> {
            dims.iter().map(|&d| { let c = i % d; i /= d; c }).collect()
        };
        let (f, t) = (coords(from), coords(to));
        let minimal: u32 = dims
            .iter()
            .enumerate()
            .map(|(d, &dim)| {
                let fwd = (t[d] + dim - f[d]) % dim;
                fwd.min(dim - fwd)
            })
            .sum();
        prop_assert_eq!(net.hops(from, to), minimal);
        let route = net.route_links(from, to).expect("healthy torus is connected");
        prop_assert_eq!(route.len() as u32, minimal, "route is hop-minimal");
        let space = n as usize * 2 * dims.len();
        let mut seen = std::collections::BTreeSet::new();
        for &l in &route {
            prop_assert!(l < space, "link id {l} outside id space {space}");
            prop_assert!(seen.insert(l), "route revisits link {l}");
        }
        // A fresh network picks the identical route.
        prop_assert_eq!(Network::new(&cfg).route_links(from, to).unwrap(), route);
    }

    /// Fat-tree up/down routes take exactly 2 hops inside a pod and 4
    /// across pods, deterministically, without revisiting a link.
    #[test]
    fn fat_tree_routes_are_up_down_minimal(
        radix_pow in 1u32..=3,
        pods in 1u32..=4,
        from_raw in 0u32..64,
        to_raw in 0u32..64,
    ) {
        let radix = 1u32 << radix_pow;
        let n = radix * pods;
        let cfg = MachineConfig::clustered(n, 2, Topology::FatTree { radix });
        let net = Network::new(&cfg);
        let (from, to) = (from_raw % n, to_raw % n);
        let expect = if from == to {
            0
        } else if from / radix == to / radix {
            2
        } else {
            4
        };
        prop_assert_eq!(net.hops(from, to), expect);
        let route = net.route_links(from, to).expect("healthy fat tree is connected");
        prop_assert_eq!(route.len() as u32, expect, "up/down route is hop-minimal");
        let space = 4 * n as usize;
        let mut seen = std::collections::BTreeSet::new();
        for &l in &route {
            prop_assert!(l < space, "link id {l} outside id space {space}");
            prop_assert!(seen.insert(l), "route revisits link {l}");
        }
        prop_assert_eq!(Network::new(&cfg).route_links(from, to).unwrap(), route);
    }

    /// Under arbitrary link kills, a chosen route (detour or not) never
    /// crosses a dead link, never revisits any link, never beats the
    /// healthy hop count, and is a pure function of the fault state.
    #[test]
    fn faulted_detours_avoid_dead_links(
        torus_side in prop_oneof![Just(false), Just(true)],
        kills in proptest::collection::btree_set(0usize..32, 0..6),
        from_raw in 0u32..8,
        to_raw in 0u32..8,
    ) {
        let n = 8u32;
        let topo = if torus_side {
            Topology::Torus { dims: vec![2, 4] }
        } else {
            Topology::FatTree { radix: 4 }
        };
        let cfg = MachineConfig::clustered(n, 2, topo);
        let build = || {
            let mut net = Network::new(&cfg);
            for &k in &kills {
                if k < net.link_count() {
                    net.fail_link(k);
                }
            }
            net
        };
        let net = build();
        let (from, to) = (from_raw % n, to_raw % n);
        match net.route_links(from, to) {
            // Unreachable under these faults: acceptable, and stable.
            None => prop_assert_eq!(build().route_links(from, to), None),
            Some(route) => {
                let mut seen = std::collections::BTreeSet::new();
                for &l in &route {
                    prop_assert!(!net.link_is_dead(l), "route crosses dead link {l}");
                    prop_assert!(seen.insert(l), "route revisits link {l}");
                }
                prop_assert!(
                    from == to || route.len() as u32 >= net.hops(from, to),
                    "detour cannot beat the healthy hop count"
                );
                prop_assert_eq!(build().route_links(from, to).unwrap(), route);
            }
        }
    }

    /// Charging random work to random PEs keeps busy-cycle accounting
    /// consistent with the makespan.
    #[test]
    fn machine_charging_consistent(
        work in proptest::collection::vec((0u32..4, 0u32..4, 1u64..1000), 1..50),
    ) {
        let mut m = Machine::new(MachineConfig::clustered(4, 4, Topology::Crossbar));
        for &(c, p, flops) in &work {
            let _ = m.charge(0, PeId::new(c, p), fem2_machine::CostClass::Flop, flops);
        }
        let total_flops: u64 = work.iter().map(|&(_, _, f)| f).sum();
        prop_assert_eq!(m.stats.total().flops, total_flops);
        // Makespan is at least the average load and at most the total.
        let cost = m.config.cost.flop;
        prop_assert!(m.makespan() <= total_flops * cost);
        prop_assert!(m.total_busy_cycles() == total_flops * cost);
    }

    /// Fault isolation never resurrects PEs and conserves the alive count.
    #[test]
    fn fault_accounting(kills in proptest::collection::vec((0u32..4, 0u32..4), 0..12)) {
        let mut m = Machine::new(MachineConfig::clustered(4, 4, Topology::Bus));
        let mut unique = std::collections::BTreeSet::new();
        for &(c, p) in &kills {
            let pe = PeId::new(c, p);
            // ClusterDead errors are acceptable; the PE is still isolated.
            let _ = m.fail_pe(pe);
            unique.insert(pe);
        }
        prop_assert_eq!(m.reconfigurations as usize, unique.len());
        let alive: u32 = (0..4).map(|c| m.alive_count(c)).sum();
        prop_assert_eq!(alive as usize, 16 - unique.len());
    }
}
