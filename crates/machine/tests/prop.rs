//! Property tests for the hardware simulator: conservation, determinism,
//! and topology invariants under random traffic.

use fem2_machine::{Machine, MachineConfig, Network, PeId, Topology};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Bus),
        Just(Topology::Ring),
        Just(Topology::Mesh2D { width: 4 }),
        Just(Topology::Crossbar),
    ]
}

proptest! {
    /// Hop counts are symmetric and zero exactly on the diagonal.
    #[test]
    fn hops_symmetric(topo in topo_strategy()) {
        let cfg = MachineConfig::clustered(8, 2, topo);
        let net = Network::new(&cfg);
        for a in 0..8 {
            for b in 0..8 {
                prop_assert_eq!(net.hops(a, b), net.hops(b, a));
                prop_assert_eq!(net.hops(a, b) == 0, a == b);
            }
        }
    }

    /// Word conservation: payload words transmitted equal words requested,
    /// and headers scale with packet count.
    #[test]
    fn transmit_conserves_words(
        topo in topo_strategy(),
        msgs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..5000), 1..40),
    ) {
        let mut cfg = MachineConfig::clustered(8, 2, topo);
        cfg.max_packet_words = 256;
        let mut net = Network::new(&cfg);
        let mut expect_payload = 0u64;
        let mut remote = 0u64;
        for &(from, to, words) in &msgs {
            net.transmit(0, from, to, words);
            if from != to {
                expect_payload += words;
                remote += 1;
            }
        }
        prop_assert_eq!(net.payload_words, expect_payload);
        prop_assert_eq!(net.messages, remote);
        // Header accounting: headers = packets * header_words.
        prop_assert_eq!(net.header_words_moved, net.packets * cfg.header_words);
        // Packets at least one per remote message, and enough for payload.
        prop_assert!(net.packets >= remote);
    }

    /// Network arrival times are deterministic and monotone in start time.
    #[test]
    fn transmit_deterministic_and_monotone(
        topo in topo_strategy(),
        from in 0u32..8,
        to in 0u32..8,
        words in 1u64..4096,
        delay in 0u64..10_000,
    ) {
        let cfg = MachineConfig::clustered(8, 2, topo);
        let run = |start: u64| {
            let mut net = Network::new(&cfg);
            net.transmit(start, from, to, words)
        };
        prop_assert_eq!(run(0), run(0), "deterministic");
        let t0 = run(0);
        let t1 = run(delay);
        prop_assert_eq!(t1 - delay, t0, "time-shift invariant on a fresh net");
        // Arrival after start.
        prop_assert!(t0 > 0);
    }

    /// Charging random work to random PEs keeps busy-cycle accounting
    /// consistent with the makespan.
    #[test]
    fn machine_charging_consistent(
        work in proptest::collection::vec((0u32..4, 0u32..4, 1u64..1000), 1..50),
    ) {
        let mut m = Machine::new(MachineConfig::clustered(4, 4, Topology::Crossbar));
        for &(c, p, flops) in &work {
            let _ = m.charge(0, PeId::new(c, p), fem2_machine::CostClass::Flop, flops);
        }
        let total_flops: u64 = work.iter().map(|&(_, _, f)| f).sum();
        prop_assert_eq!(m.stats.total().flops, total_flops);
        // Makespan is at least the average load and at most the total.
        let cost = m.config.cost.flop;
        prop_assert!(m.makespan() <= total_flops * cost);
        prop_assert!(m.total_busy_cycles() == total_flops * cost);
    }

    /// Fault isolation never resurrects PEs and conserves the alive count.
    #[test]
    fn fault_accounting(kills in proptest::collection::vec((0u32..4, 0u32..4), 0..12)) {
        let mut m = Machine::new(MachineConfig::clustered(4, 4, Topology::Bus));
        let mut unique = std::collections::BTreeSet::new();
        for &(c, p) in &kills {
            let pe = PeId::new(c, p);
            // ClusterDead errors are acceptable; the PE is still isolated.
            let _ = m.fail_pe(pe);
            unique.insert(pe);
        }
        prop_assert_eq!(m.reconfigurations as usize, unique.len());
        let alive: u32 = (0..4).map(|c| m.alive_count(c)).sum();
        prop_assert_eq!(alive as usize, 16 - unique.len());
    }
}
