//! The worker pool, scopes, and data-parallel helpers.
//!
//! Safety note: [`Scope::spawn`] erases the closure's lifetime to `'static`
//! so it can sit in the shared queue. This is sound because the scope
//! *always* joins every spawned task before returning (including on panic),
//! so no borrow outlives the frame it came from — the same argument as
//! `std::thread::scope`. While a scope waits it helps execute queued jobs,
//! so nested scopes on the same pool cannot deadlock.

use crossbeam::deque::{Injector, Steal};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::mem;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle, its workers, and waiting scopes.
struct Shared {
    queue: Injector<Job>,
    /// Signaled when a job is pushed; workers sleep on it when idle.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    /// Number of workers currently parked on the condvar. Lets `push_job`
    /// skip the lock entirely while the crew is busy (the common case in a
    /// tight scope), which matters on fine-grained workloads.
    sleepers: AtomicUsize,
}

impl Shared {
    fn pop(&self) -> Option<Job> {
        loop {
            match self.queue.steal() {
                Steal::Success(j) => return Some(j),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        }
    }
}

/// A fixed crew of worker threads with a shared job queue.
///
/// Dropping the pool shuts the workers down after the queue drains of the
/// jobs they have already started; scopes guarantee the queue is empty of
/// their jobs before that point.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Injector::new(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fem2-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_host_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// A pool sized from the `FEM2_PAR_THREADS` environment variable, or
    /// the host's available parallelism when unset/unparsable. Lets bench
    /// and CI runs pin the crew size (`FEM2_PAR_THREADS=1` serializes)
    /// without a code change.
    pub fn from_env() -> Self {
        match std::env::var("FEM2_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => Self::new(n),
            _ => Self::with_host_parallelism(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing tasks; returns when
    /// every spawned task has finished. The first task panic (or a panic in
    /// `f` itself) is propagated to the caller after the join.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        let state = ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        };
        let scope = Scope {
            pool: self,
            state: &state,
            _env: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join: help run jobs while any task is outstanding.
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.pop() {
                job();
            } else {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        if let Some(p) = state.panic.lock().take() {
            panic::resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => panic::resume_unwind(p),
        }
    }

    /// Run two closures in parallel and return both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut ra = None;
        let mut rb = None;
        self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            rb = Some(b());
        });
        (
            ra.expect("scope joined the spawned half"),
            rb.expect("closure b ran on the scope's own thread"),
        )
    }

    /// Call `f(i)` for every `i` in `range`, in parallel, splitting the
    /// range into chunks of at most `grain` indices.
    pub fn for_each_index<F>(&self, range: Range<usize>, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let grain = grain.max(1);
        let f = &f;
        self.scope(|s| {
            let mut start = range.start;
            while start < range.end {
                let end = (start + grain).min(range.end);
                s.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
        });
    }

    /// Map every index of `range` through `map` and combine the results with
    /// `reduce`, starting from `identity`.
    ///
    /// Deterministic: each chunk folds left-to-right and chunk partials are
    /// folded in chunk order, so the combination tree is a function of
    /// `(range, grain)` only — not of thread timing.
    pub fn map_reduce_index<T, M, R>(
        &self,
        range: Range<usize>,
        grain: usize,
        map: M,
        reduce: R,
        identity: T,
    ) -> T
    where
        T: Clone + Send + Sync,
        M: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        let grain = grain.max(1);
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        let nchunks = len.div_ceil(grain);
        let mut partials: Vec<Option<T>> = vec![None; nchunks];
        {
            let map = &map;
            let reduce = &reduce;
            let identity_ref = &identity;
            self.scope(|s| {
                for (c, slot) in partials.iter_mut().enumerate() {
                    let start = range.start + c * grain;
                    let end = (start + grain).min(range.end);
                    s.spawn(move || {
                        let mut acc = identity_ref.clone();
                        for i in start..end {
                            acc = reduce(acc, map(i));
                        }
                        *slot = Some(acc);
                    });
                }
            });
        }
        partials
            .into_iter()
            .map(|p| p.expect("scope joined all chunks"))
            .fold(identity, reduce)
    }

    fn push_job(&self, job: Job) {
        self.shared.queue.push(job);
        // Wake one sleeping worker — but only pay for the lock if someone
        // is actually parked.
        if self.shared.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.shared.sleep_lock.lock();
            self.shared.sleep_cv.notify_one();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.sleep_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        if let Some(job) = shared.pop() {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = shared.sleep_lock.lock();
        shared.sleepers.fetch_add(1, Ordering::AcqRel);
        // Re-check under the lock to avoid missing a push that happened
        // between the pop above and taking the lock.
        if shared.queue.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            shared
                .sleep_cv
                .wait_for(&mut guard, Duration::from_millis(50));
        }
        shared.sleepers.fetch_sub(1, Ordering::AcqRel);
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A structured-parallelism scope tied to a [`Pool`]; see [`Pool::scope`].
pub struct Scope<'env, 'state> {
    pool: &'state Pool,
    state: &'state ScopeState,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env, 'state> Scope<'env, 'state> {
    /// Spawn a task that may borrow from the environment enclosing the
    /// scope. The task runs on the pool (or on the scope's own thread while
    /// it joins). Panics inside tasks are captured and re-thrown by
    /// [`Pool::scope`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads == 1 {
            // A single-worker pool has no concurrency to win, so run the
            // task inline on the spawning thread. This skips the boxing,
            // queue traffic, and wakeups entirely — on fine-grained
            // workloads (many small scopes) that overhead would otherwise
            // dominate. Panics still surface through the scope's slot so
            // propagation matches the queued path.
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = result {
                let mut slot = self.state.panic.lock();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        // Erase the borrow lifetime: sound because `Pool::scope` joins every
        // task before the environment frame is released.
        let state_ptr: *const ScopeState = self.state;
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the transmute only erases the `'env` lifetime of the boxed
        // closure (`Box<dyn FnOnce + Send + 'env>` -> `Box<dyn FnOnce + Send
        // + 'static>`); layout of a boxed trait object does not depend on its
        // lifetime bound. The erased borrow cannot dangle because
        // `Pool::scope`'s join loop blocks until `state.pending` reaches
        // zero, i.e. every spawned task has finished, before the `'env`
        // environment frame can be released.
        let task: Job = unsafe { mem::transmute(task) };
        let state_addr = state_ptr as usize;
        let job: Job = Box::new(move || {
            // SAFETY: `state_addr` is the address of the `ScopeState` that
            // `Pool::scope` keeps alive on its stack until its join loop
            // has observed `pending == 0`. This job holds a `pending` count (the
            // `fetch_add` above precedes `push_job`, and the matching
            // `fetch_sub` is the last thing this closure does), so the
            // referenced state outlives every dereference here.
            let state = unsafe { &*(state_addr as *const ScopeState) };
            let result = panic::catch_unwind(AssertUnwindSafe(task));
            if let Err(p) = result {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
        });
        self.pool.push_job(job);
    }
}

/// Split `data` into disjoint chunks of at most `chunk` elements and call
/// `f(chunk_index, chunk)` for each in parallel on `pool`.
///
/// This is the safe mutable-slice counterpart of
/// [`Pool::for_each_index`]: disjointness comes from `chunks_mut`, so no
/// synchronization is needed inside `f`.
pub fn chunks_mut<T, F>(pool: &Pool, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let f = &f;
    pool.scope(|s| {
        for (c, piece) in data.chunks_mut(chunk).enumerate() {
            s.spawn(move || f(c, piece));
        }
    });
}

/// Call `f(index, &mut item)` once per item of `items`, each call its own
/// pool work item. The epoch-advance primitive of the sharded DES backend:
/// one item per shard, every shard advanced concurrently, and the scope's
/// join is the epoch barrier.
pub fn each_mut<T, F>(pool: &Pool, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let f = &f;
    pool.scope(|s| {
        for (i, item) in items.iter_mut().enumerate() {
            s.spawn(move || f(i, item));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_at_least_one_thread() {
        let p = Pool::new(0);
        assert_eq!(p.threads(), 1);
        let p = Pool::new(3);
        assert_eq!(p.threads(), 3);
    }

    #[test]
    fn host_parallelism_pool() {
        let p = Pool::with_host_parallelism();
        assert!(p.threads() >= 1);
    }

    #[test]
    fn from_env_honors_thread_override() {
        // Env mutation is process-global; this is the only test touching
        // the variable, and it restores the prior state before returning.
        let prev = std::env::var("FEM2_PAR_THREADS").ok();
        std::env::set_var("FEM2_PAR_THREADS", "3");
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var("FEM2_PAR_THREADS", "not-a-number");
        assert!(Pool::from_env().threads() >= 1);
        match prev {
            Some(v) => std::env::set_var("FEM2_PAR_THREADS", v),
            None => std::env::remove_var("FEM2_PAR_THREADS"),
        }
    }

    #[test]
    fn scope_joins_all_tasks() {
        let p = Pool::new(4);
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_returns_value() {
        let p = Pool::new(2);
        let r = p.scope(|_| 42);
        assert_eq!(r, 42);
    }

    #[test]
    fn tasks_borrow_environment() {
        let p = Pool::new(4);
        let mut results = vec![0u64; 64];
        p.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = (i * i) as u64);
            }
        });
        for (i, &r) in results.iter().enumerate() {
            assert_eq!(r, (i * i) as u64);
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let p = Pool::new(1); // single worker: join-helping must kick in
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    p.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        let p = Pool::new(2);
        p.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn panic_does_not_poison_pool() {
        let p = Pool::new(2);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|| panic!("first"));
            });
        }));
        assert!(r.is_err());
        // Pool still works after a panicking scope.
        let count = AtomicUsize::new(0);
        p.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn join_runs_both() {
        let p = Pool::new(2);
        let (a, b) = p.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn for_each_index_covers_range_once() {
        let p = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        p.for_each_index(0..1000, 37, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_index_empty_range() {
        let p = Pool::new(2);
        p.for_each_index(10..10, 8, |_| panic!("must not run"));
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let p = Pool::new(4);
        for grain in [1, 7, 64, 10_000] {
            let s = p.map_reduce_index(0..5000, grain, |i| i as u64, |a, b| a + b, 0);
            assert_eq!(s, 4999 * 5000 / 2, "grain {grain}");
        }
    }

    #[test]
    fn map_reduce_empty_range_gives_identity() {
        let p = Pool::new(2);
        let s = p.map_reduce_index(3..3, 8, |_| 1u64, |a, b| a + b, 123);
        assert_eq!(s, 123);
    }

    #[test]
    fn map_reduce_float_deterministic() {
        let p = Pool::new(8);
        let vals: Vec<f64> = (0..4096)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 0.001)
            .collect();
        let runs: Vec<f64> = (0..5)
            .map(|_| p.map_reduce_index(0..vals.len(), 100, |i| vals[i], |a, b| a + b, 0.0))
            .collect();
        // Bitwise identical across runs.
        for r in &runs[1..] {
            assert_eq!(r.to_bits(), runs[0].to_bits());
        }
    }

    #[test]
    fn chunks_mut_disjoint_coverage() {
        let p = Pool::new(4);
        let mut data = vec![0u32; 500];
        chunks_mut(&p, &mut data, 33, |c, piece| {
            for x in piece.iter_mut() {
                *x = c as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x != 0));
        // Chunk 0 covers [0,33)
        assert_eq!(data[0], 1);
        assert_eq!(data[32], 1);
        assert_eq!(data[33], 2);
    }

    #[test]
    fn each_mut_visits_every_item_once_with_its_index() {
        let p = Pool::new(4);
        let mut items: Vec<(usize, u64)> = (0..37).map(|i| (i, 0)).collect();
        each_mut(&p, &mut items, |i, item| {
            assert_eq!(item.0, i, "index matches slice position");
            item.1 += 1;
        });
        assert!(items.iter().all(|&(_, hits)| hits == 1));
        // Empty slice is a no-op, not a hang.
        each_mut(&p, &mut [] as &mut [u8], |_, _| unreachable!());
    }

    #[test]
    fn many_small_scopes() {
        let p = Pool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            p.scope(|s| {
                s.spawn(|| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        for _ in 0..10 {
            let p = Pool::new(3);
            p.for_each_index(0..100, 10, |_| {});
            drop(p);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_data() {
        let p = Pool::new(4);
        let data: Vec<i64> = (0..10_000)
            .map(|i| ((i * 31 + 7) % 1000) as i64 - 500)
            .collect();
        let seq: i64 = data.iter().map(|x| x * x).sum();
        let par = p.map_reduce_index(0..data.len(), 128, |i| data[i] * data[i], |a, b| a + b, 0);
        assert_eq!(seq, par);
    }
}
