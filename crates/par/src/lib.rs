//! # fem2-par — scoped work-crew parallelism
//!
//! A small, self-contained data-parallel executor in the spirit of rayon,
//! built only on `crossbeam` and `parking_lot`. It provides the native
//! execution plane for the FEM-2 numerical analyst's virtual machine: the
//! "fast linear algebra operations" requirement of the hardware-architecture
//! section is met on the host by running forall-loops and reductions over a
//! fixed crew of worker threads.
//!
//! Three layers of API:
//!
//! * [`Pool`] — a fixed crew of workers with a shared injector queue;
//! * [`Pool::scope`] — structured parallelism: spawn borrows from the
//!   enclosing stack frame, the scope joins all tasks before returning and
//!   propagates panics;
//! * data-parallel helpers — [`Pool::for_each_index`],
//!   [`Pool::map_reduce_index`], [`Pool::join`], and
//!   [`chunks_mut`] for disjoint mutable slice chunks.
//!
//! Reductions are **deterministic**: partial results are combined in chunk
//! order, so floating-point sums are reproducible run to run for a fixed
//! grain size (a requirement for the simulated/native plane equivalence
//! tests in `fem2-navm`).
//!
//! ```
//! use fem2_par::Pool;
//!
//! let pool = Pool::new(4);
//! let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let sum = pool.map_reduce_index(0..1000, 64, |i| data[i], |a, b| a + b, 0.0);
//! assert_eq!(sum, 999.0 * 1000.0 / 2.0);
//! ```

mod pool;

pub use pool::{chunks_mut, each_mut, Pool, Scope};

/// The default grain size used by convenience wrappers when the caller does
/// not specify one: small enough to balance, large enough to amortize
/// scheduling.
pub const DEFAULT_GRAIN: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn readme_style_smoke() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }
}
