//! E1 bench: regenerate the requirements table, then time one scenario run.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::machine::MachineConfig;
use fem2_core::scenario::PlateScenario;

fn bench(c: &mut Criterion) {
    let (table, _) = ex::e1_requirements(&[8, 16, 32, 48, 64]);
    eprintln!("{table}");
    let mut g = c.benchmark_group("e1_requirements");
    g.sample_size(10);
    for n in [16usize, 32] {
        g.bench_function(format!("plate_scenario_n{n}"), |b| {
            b.iter(|| {
                PlateScenario::square(n, MachineConfig::fem2_default())
                    .run()
                    .elapsed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
