//! Microbench: `Network::transmit` on mesh and ring, healthy and with a
//! failed link — the route-cache hot path (lookup + contention update).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fem2_core::machine::{MachineConfig, Network, Topology};

fn all_pairs(net: &mut Network, clusters: u32) -> u64 {
    let mut worst = 0;
    for from in 0..clusters {
        for to in 0..clusters {
            if from != to {
                // Fallible: a dead mesh link strands same-row pairs that
                // XY and YX routing both cross; the None lookup is itself
                // a cached hot path worth timing.
                if let Some(arrival) = net.try_transmit(0, from, to, 64) {
                    worst = worst.max(arrival);
                }
            }
        }
    }
    worst
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_transmit");
    g.sample_size(10);
    let clusters = 16u32;
    for (name, topo, broken) in [
        ("mesh", Topology::Mesh2D { width: 4 }, None),
        // +x link out of cluster 5: reroutes through the YX fallback.
        (
            "mesh_failed_link",
            Topology::Mesh2D { width: 4 },
            Some(5 * 4),
        ),
        ("ring", Topology::Ring, None),
        // Forward link out of cluster 3: forces the backward detour.
        ("ring_failed_link", Topology::Ring, Some(3)),
    ] {
        let cfg = MachineConfig::clustered(clusters, 2, topo);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut net = Network::new(&cfg);
                if let Some(link) = broken {
                    net.fail_link(link);
                }
                black_box(all_pairs(&mut net, clusters))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
