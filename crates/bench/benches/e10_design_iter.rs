//! E10 bench: regenerate the design-iteration table, then time one
//! candidate evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::machine::{MachineConfig, Topology};
use fem2_core::DesignSpace;

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e10_design_iter());
    let mut g = c.benchmark_group("e10_design_iter");
    g.sample_size(10);
    let mut space = DesignSpace::standard_sweep();
    space.requirements.small_n = 10;
    space.requirements.large_n = 16;
    g.bench_function("evaluate_candidate", |b| {
        b.iter(|| {
            space
                .evaluate(MachineConfig::clustered(4, 4, Topology::Crossbar))
                .makespan
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
