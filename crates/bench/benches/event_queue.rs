//! Microbench: `EventQueue` schedule/pop churn — the DES inner loop every
//! simulated cycle goes through. Run untraced (the common case) and traced
//! into a small ring, to keep the cost of the depth probe honest, and on
//! both backends (calendar vs reference heap) at shallow and deep
//! queue depths — the calendar's O(1) buckets pull ahead as depth grows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fem2_core::machine::sim::EventQueue;
use fem2_core::machine::DesQueue;
use fem2_trace::TraceHandle;

const CHURN: u64 = 10_000;

/// Interleaved schedule/pop mix: keep `depth` events in flight, times
/// drawn from a cheap LCG so pop order is non-trivial.
fn churn(q: &mut EventQueue<u64>, depth: u64, rounds: u64) -> u64 {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut sum = 0u64;
    for i in 0..depth {
        q.schedule(i, i);
    }
    for _ in 0..rounds {
        let (at, ev) = q.pop().expect("queue is kept non-empty");
        sum = sum.wrapping_add(at ^ ev);
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        q.schedule(at + 1 + (state >> 58), ev);
    }
    sum
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.sample_size(10);
    for (backend, label) in [(DesQueue::Calendar, "calendar"), (DesQueue::Heap, "heap")] {
        for depth in [64u64, 4096] {
            g.bench_function(format!("churn_{label}_d{depth}"), |b| {
                b.iter(|| {
                    let mut q = EventQueue::with_backend(backend);
                    black_box(churn(&mut q, depth, CHURN))
                })
            });
        }
    }
    g.bench_function("churn_traced", |b| {
        b.iter(|| {
            let (handle, _rec) = TraceHandle::ring(1 << 10);
            let mut q = EventQueue::new();
            q.set_trace(handle);
            black_box(churn(&mut q, 64, CHURN))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
