//! E6 bench: regenerate the three-levels table, then time substructuring.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::fem::bc::{Constraints, LoadSet};
use fem2_core::fem::partition::Partition;
use fem2_core::fem::substructure::analyze_substructures;
use fem2_core::fem::{Material, Mesh};
use fem2_core::par::Pool;

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e6_levels());
    let mut g = c.benchmark_group("e6_levels");
    g.sample_size(10);
    let mesh = Mesh::grid_quad(24, 4, 6.0, 1.0);
    let mat = Material::steel();
    let mut cons = Constraints::new();
    for n in mesh.left_edge_nodes(1e-9) {
        cons.fix_node(n);
    }
    let mut loads = LoadSet::new("l");
    for n in mesh.right_edge_nodes(1e-9) {
        loads.add_node(n, 0.0, 100.0);
    }
    let f = loads.to_vector(mesh.node_count() * 2);
    let pool = Pool::new(4);
    for parts in [1usize, 4] {
        let part = Partition::strips_x(&mesh, parts);
        g.bench_function(format!("substructure_{parts}parts"), |b| {
            b.iter(|| analyze_substructures(&pool, &mesh, &mat, &cons, &part, &f).interface_dofs)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
