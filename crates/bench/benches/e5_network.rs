//! E5 bench: regenerate the communication table, then time bus vs crossbar.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::machine::{MachineConfig, Network, Topology};

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e5_network());
    let mut g = c.benchmark_group("e5_network");
    g.sample_size(30);
    for topo in [Topology::Bus, Topology::Crossbar] {
        let cfg = MachineConfig::clustered(8, 2, topo.clone());
        g.bench_function(format!("allpairs_{}", topo.name()), |b| {
            b.iter(|| {
                let mut net = Network::new(&cfg);
                let mut worst = 0;
                for from in 0..8u32 {
                    for to in 0..8u32 {
                        if from != to {
                            worst = worst.max(net.transmit(0, from, to, 64));
                        }
                    }
                }
                worst
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
