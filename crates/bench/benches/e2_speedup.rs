//! E2 bench: regenerate the speedup table, then time the two extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;

fn bench(c: &mut Criterion) {
    let (table, _) = ex::e2_speedup(48);
    eprintln!("{table}");
    let mut g = c.benchmark_group("e2_speedup");
    g.sample_size(10);
    g.bench_function("sim_cg_1task", |b| b.iter(|| ex::quick_sim_cg(24, 1)));
    g.bench_function("sim_cg_28tasks", |b| b.iter(|| ex::quick_sim_cg(24, 28)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
