//! E4 bench: regenerate the task-initiation table, then time a kernel run.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::kernel::{CodeBlock, KernelSim, WorkProfile};
use fem2_core::machine::{Machine, MachineConfig};

fn bench(c: &mut Criterion) {
    let (table, _) = ex::e4_task_init(&[1, 8, 64, 512, 4096]);
    eprintln!("{table}");
    let mut g = c.benchmark_group("e4_task_init");
    g.sample_size(10);
    for k in [64u32, 1024] {
        g.bench_function(format!("initiate_{k}"), |b| {
            b.iter(|| {
                let mut sim = KernelSim::new(Machine::new(MachineConfig::fem2_default()));
                let code = sim.register_code(CodeBlock::new(
                    "w",
                    32,
                    WorkProfile {
                        flops: 100,
                        int_ops: 20,
                        mem_words: 10,
                    },
                    16,
                ));
                sim.initiate(0, 0, code, k, None, 4);
                sim.run()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
