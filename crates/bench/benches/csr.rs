//! Microbench: `Coo::to_csr` and `Csr::matvec` on 5-point Laplacians at
//! n ∈ {1k, 10k} unknowns — the kernels the counting-sort CSR build and
//! single-pass accessors are judged against.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fem2_core::fem::sparse::Coo;

/// 5-point Laplacian COO for an nx×nx grid, with each stencil entry pushed
/// separately so the build also exercises duplicate summation.
fn laplacian_coo(nx: usize) -> Coo {
    let n = nx * nx;
    let mut coo = Coo::new(n);
    for j in 0..nx {
        for i in 0..nx {
            let r = j * nx + i;
            coo.add(r, r, 2.0);
            coo.add(r, r, 2.0);
            if i + 1 < nx {
                coo.add(r, r + 1, -1.0);
                coo.add(r + 1, r, -1.0);
            }
            if j + 1 < nx {
                coo.add(r, r + nx, -1.0);
                coo.add(r + nx, r, -1.0);
            }
        }
    }
    coo
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr");
    g.sample_size(10);
    for nx in [32usize, 100] {
        let n = nx * nx;
        let coo = laplacian_coo(nx);
        g.bench_function(format!("to_csr_n{n}"), |b| {
            b.iter(|| black_box(&coo).to_csr())
        });
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let mut y = vec![0.0; n];
        g.bench_function(format!("matvec_n{n}"), |b| {
            b.iter(|| {
                a.matvec(black_box(&x), &mut y);
                y[0]
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
