//! E7 bench: regenerate the fault table, then time a faulted kernel run.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::kernel::{CodeBlock, KernelSim, WorkProfile};
use fem2_core::machine::fault::FaultPlan;
use fem2_core::machine::{Machine, MachineConfig, PeId, Topology};

fn bench(c: &mut Criterion) {
    let (table, _) = ex::e7_fault();
    eprintln!("{table}");
    let mut g = c.benchmark_group("e7_fault");
    g.sample_size(10);
    for faults in [0usize, 2] {
        g.bench_function(format!("batch_with_{faults}_faults"), |b| {
            b.iter(|| {
                let machine = Machine::new(MachineConfig::clustered(2, 4, Topology::Crossbar));
                let mut sim = KernelSim::new(machine);
                let code = sim.register_code(CodeBlock::new(
                    "w",
                    32,
                    WorkProfile {
                        flops: 5000,
                        int_ops: 100,
                        mem_words: 200,
                    },
                    16,
                ));
                sim.initiate(0, 0, code, 32, None, 0);
                sim.initiate(0, 1, code, 32, None, 0);
                if faults > 0 {
                    sim.inject_faults(&FaultPlan::at(
                        30_000,
                        (0..faults as u32).map(|i| PeId::new(i % 2, 1 + i / 2)),
                    ));
                }
                sim.run()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
