//! E9 bench: regenerate the solver table, then time each solver.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::fem::solver::{self, IterControls};

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e9_solvers(&[16, 32]));
    let mut g = c.benchmark_group("e9_solvers");
    g.sample_size(10);
    let a = ex::solver_testmat(24);
    let n = 24 * 24;
    let f: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
    let ctl = IterControls {
        rel_tol: 1e-8,
        max_iter: 200_000,
    };
    g.bench_function("jacobi", |b| {
        b.iter(|| solver::jacobi::solve(&a, &f, ctl).1.iterations)
    });
    g.bench_function("sor_1.7", |b| {
        b.iter(|| solver::sor::solve(&a, &f, 1.7, ctl).1.iterations)
    });
    g.bench_function("cg", |b| {
        b.iter(|| solver::cg::solve(&a, &f, ctl, false).1.iterations)
    });
    g.bench_function("skyline", |b| {
        b.iter(|| solver::skyline::solve(&a, &f).expect("benchmark system is SPD")[0])
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
