//! E8 bench: regenerate the heap table, then time alloc/free churn.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::kernel::Heap;

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e8_heap());
    let mut g = c.benchmark_group("e8_heap");
    g.sample_size(20);
    g.bench_function("churn_10k_ops", |b| {
        b.iter(|| {
            let mut heap = Heap::new(1 << 18);
            let mut rng = ex::XorShift::new(3);
            let mut live = Vec::new();
            for i in 0..10_000u64 {
                if live.is_empty() || (i % 10) < 6 {
                    if let Ok(blk) = heap.alloc(1 + rng.below(128)) {
                        live.push(blk);
                    }
                } else {
                    let idx = rng.below(live.len() as u64) as usize;
                    let blk = live.swap_remove(idx);
                    heap.free(blk).expect("block came from this heap");
                }
            }
            heap.high_water()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
