//! E3 bench: regenerate the window-cost table, then time window reads.

use criterion::{criterion_group, criterion_main, Criterion};
use fem2_bench::experiments as ex;
use fem2_core::machine::MachineConfig;
use fem2_core::navm::{NaVm, TaskHandle};

fn bench(c: &mut Criterion) {
    eprintln!("{}", ex::e3_windows());
    let mut g = c.benchmark_group("e3_windows");
    g.sample_size(20);
    let mut vm = NaVm::simulated(MachineConfig::fem2_default(), 8);
    let a = vm.array(256, 256);
    vm.fill(a, |r, c| (r * c) as f64);
    let local = vm.window(a, 0, 16, 0, 16);
    let remote = vm.window(a, 232, 248, 0, 16);
    g.bench_function("read_local_block", |b| {
        b.iter(|| vm.read_window(TaskHandle(0), &local).len())
    });
    g.bench_function("read_remote_block", |b| {
        b.iter(|| vm.read_window(TaskHandle(0), &remote).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
