//! `fem2-bench` — run the fixed perf mix and emit `BENCH_fem2.json`.
//!
//! ```text
//! fem2-bench --json BENCH_fem2.json   # run the suite, write JSON, print table
//! fem2-bench --validate BENCH_fem2.json  # schema-check an existing document
//! fem2-bench --no-route-cache         # ablation: reference recompute routing
//! fem2-bench --des-queue heap         # ablation: reference binary-heap DES queue
//! fem2-bench --repeat 5               # best + median wall times over 5 runs
//! fem2-bench --budget-cycles 20000    # cap E1 plate runs; overruns record "aborted"
//! fem2-bench --budget-events 100000   # same, capped on DES events
//! fem2-bench --shards 4               # run E1 plates on 4 DES shards
//! fem2-bench                          # run the suite, print the table only
//! ```
//!
//! The sweep worker pool is sized from `FEM2_PAR_THREADS` (default: host
//! parallelism); `FEM2_PAR_THREADS=1` serializes the sweeps.

#![forbid(unsafe_code)]

use fem2_bench::harness::{self, BenchOptions};
use fem2_core::machine::DesQueue;
use std::process::ExitCode;

const USAGE: &str = "usage: fem2-bench [--json <path>] [--validate <path>] \
[--no-route-cache] [--des-queue calendar|heap] [--repeat <n>] \
[--budget-cycles <n>] [--budget-events <n>] [--shards <n>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut validate_path: Option<String> = None;
    let mut opts = BenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-route-cache" => {
                opts.route_cache = false;
                i += 1;
            }
            "--des-queue" => {
                let Some(q) = args.get(i + 1) else {
                    eprintln!("--des-queue requires calendar|heap\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                opts.des_queue = match q.as_str() {
                    "calendar" => DesQueue::Calendar,
                    "heap" => DesQueue::Heap,
                    other => {
                        eprintln!("--des-queue must be calendar or heap, got {other:?}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--repeat" => {
                let Some(n) = args.get(i + 1) else {
                    eprintln!("--repeat requires a count\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                opts.repeat = match n.parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--repeat must be a positive integer, got {n:?}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--budget-cycles" | "--budget-events" => {
                let flag = args[i].clone();
                let Some(n) = args.get(i + 1) else {
                    eprintln!("{flag} requires a count\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let parsed = match n.parse::<u64>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("{flag} must be a positive integer, got {n:?}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
                if flag == "--budget-cycles" {
                    opts.budget_cycles = Some(parsed);
                } else {
                    opts.budget_events = Some(parsed);
                }
                i += 2;
            }
            "--shards" => {
                let Some(n) = args.get(i + 1) else {
                    eprintln!("--shards requires a count\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                opts.shards = match n.parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--shards must be a positive integer, got {n:?}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                json_path = Some(p.clone());
                i += 2;
            }
            "--validate" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--validate requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                validate_path = Some(p.clone());
                i += 2;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fem2-bench: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match harness::validate_json(&text) {
            Ok(n) => {
                println!(
                    "{path}: valid {} (or {}) document, {n} records",
                    harness::SCHEMA,
                    harness::SCHEMA_V1
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let suite = harness::run_suite_opts(opts);
    print!("{}", suite.table());
    if let Some(path) = json_path {
        let json = suite.to_json();
        if let Err(e) = harness::validate_json(&json) {
            eprintln!("fem2-bench: generated document failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("fem2-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
