//! Order-stable parallel sweeps over independent scenario instances.
//!
//! A bench sweep (E1 plate sizes, the E5 pattern × words × topology grid,
//! E7 fault mixes) is a list of independent simulations: each cell builds
//! its own machine, runs to quiescence, and yields a deterministic result.
//! [`par_sweep`] fans the cells across the `fem2-par` pool and collects the
//! results **in input order** — each spawned task writes into its own
//! pre-allocated slot, so the output is a pure function of the input list
//! and the sweep is byte-stable regardless of thread count or completion
//! order.
//!
//! Only the *results* cross threads (`R: Send`); the simulations themselves
//! are constructed and consumed inside the worker closure, so non-`Send`
//! state (e.g. the kernel's `Rc`-shared message payloads) never does.

use fem2_par::Pool;

/// Run `f` over every item of `items` on `pool`, returning the results in
/// input order. Panics in `f` propagate after the scope joins (no slot is
/// left unfilled on the success path).
pub fn par_sweep<T, R, F>(pool: &Pool, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let f = &f;
    pool.scope(|s| {
        for (item, slot) in items.into_iter().zip(slots.iter_mut()) {
            s.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("scope joined every spawned task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..100).collect();
        // Uneven work so completion order differs from input order.
        let out = par_sweep(&pool, items.clone(), |i| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 100);
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, k as u64, "slot {k} holds item {k}'s result");
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..40).collect();
        let run = |threads: usize| {
            let pool = Pool::new(threads);
            par_sweep(&pool, items.clone(), |i| i * i + 1)
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let pool = Pool::new(2);
        let out: Vec<u32> = par_sweep(&pool, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
