//! # fem2-bench — the experiment harness
//!
//! One module per experiment (E1–E10 of DESIGN.md §5). Each experiment has
//! a `*_table()` function that runs the workload and renders the result
//! table; the `fem2-report` binary prints all of them, and each Criterion
//! bench prints its experiment's table before timing the underlying kernel,
//! so `cargo bench` regenerates every row.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod sweep;
