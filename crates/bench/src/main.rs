//! fem2-report: print every experiment table (E1–E10).
//!
//! Run with: `cargo run --release -p fem2-bench --bin fem2-report`
//! Optionally pass experiment ids to restrict: `fem2-report e1 e9`.
//!
//! `--trace <path>` instead runs the E1 plate scenario (48 × 48 on the
//! FEM-2 default machine) with the event recorder attached, writes a
//! Chrome `trace_event` JSON file to `path` (open it in `chrome://tracing`
//! or Perfetto), and prints the per-phase metrics table.
//!
//! `--check` instead runs the static verifier over the four layer grammars
//! and the seven example scenarios without simulating a cycle, printing the
//! diagnostic report. Exit status is non-zero if any subject is rejected;
//! `--allow-warnings` lets warning-only subjects pass, and `--json` emits
//! the machine-readable catalog (the same diagnostic representation the
//! `fem2-serve` HTTP rejection bodies use).

#![forbid(unsafe_code)]

use fem2_bench::experiments as ex;
use fem2_core::scenario::PlateScenario;
use fem2_machine::MachineConfig;
use fem2_trace::{chrome, TraceHandle};

/// Events retained by the `--trace` ring (newest win; drops are counted in
/// the export).
const TRACE_RING_CAPACITY: usize = 1 << 20;

fn run_trace(path: &str) {
    let (handle, rec) = TraceHandle::ring(TRACE_RING_CAPACITY);
    let report = PlateScenario::square(48, MachineConfig::fem2_default())
        .with_trace(handle)
        .run();
    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
    let json = chrome::trace_json(&rec);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("fem2-report: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "E1 plate 48x48: {} unknowns, {} cycles, {} CG iterations",
        report.unknowns, report.elapsed, report.iterations
    );
    println!("wrote {} ({} bytes)\n", path, json.len());
    println!("{}", chrome::phase_table(&rec));
}

fn run_check(allow_warnings: bool, json: bool) -> ! {
    let reports = fem2_core::verify::check_catalog();
    if json {
        print!("{}", fem2_core::verify::catalog_json(&reports));
    } else {
        print!("{}", fem2_core::verify::render_catalog(&reports));
    }
    let blocked = reports.iter().filter(|r| r.blocks(allow_warnings)).count();
    if blocked > 0 {
        eprintln!("fem2-report: {blocked} subject(s) rejected by static verification");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--check") {
        let allow_warnings = raw.iter().any(|a| a == "--allow-warnings");
        let json = raw.iter().any(|a| a == "--json");
        run_check(allow_warnings, json);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--trace" {
            let Some(path) = raw.get(i + 1) else {
                eprintln!("fem2-report: --trace needs an output path");
                std::process::exit(2);
            };
            run_trace(path);
            return;
        }
        ids.push(raw[i].to_lowercase());
        i += 1;
    }
    let want = |id: &str| ids.is_empty() || ids.iter().any(|a| a == id);

    println!("FEM-2 experiment report (deterministic simulated plane + host wall times)\n");

    if want("e1") {
        let (table, _) = ex::e1_requirements(&[8, 16, 32, 48, 64]);
        println!("{table}");
    }
    if want("e2") {
        let (table, _) = ex::e2_speedup(48);
        println!("{table}");
    }
    if want("e3") {
        println!("{}", ex::e3_windows());
    }
    if want("e4") {
        let (table, _) = ex::e4_task_init(&[1, 8, 64, 512, 4096]);
        println!("{table}");
    }
    if want("e5") {
        println!("{}", ex::e5_network());
    }
    if want("e6") {
        println!("{}", ex::e6_levels());
    }
    if want("e7") {
        let (table, _) = ex::e7_fault();
        println!("{table}");
    }
    if want("e8") {
        println!("{}", ex::e8_heap());
    }
    if want("e9") {
        println!("{}", ex::e9_solvers(&[16, 32]));
    }
    if want("e10") {
        println!("{}", ex::e10_design_iter());
    }
    if want("a1") {
        println!("{}", ex::a1_renumbering());
    }
    if want("a2") {
        println!("{}", ex::a2_spawn_ablation());
    }
}
