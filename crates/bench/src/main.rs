//! fem2-report: print every experiment table (E1–E10).
//!
//! Run with: `cargo run --release -p fem2-bench --bin fem2-report`
//! Optionally pass experiment ids to restrict: `fem2-report e1 e9`.

use fem2_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("FEM-2 experiment report (deterministic simulated plane + host wall times)\n");

    if want("e1") {
        let (table, _) = ex::e1_requirements(&[8, 16, 32, 48, 64]);
        println!("{table}");
    }
    if want("e2") {
        let (table, _) = ex::e2_speedup(48);
        println!("{table}");
    }
    if want("e3") {
        println!("{}", ex::e3_windows());
    }
    if want("e4") {
        let (table, _) = ex::e4_task_init(&[1, 8, 64, 512, 4096]);
        println!("{table}");
    }
    if want("e5") {
        println!("{}", ex::e5_network());
    }
    if want("e6") {
        println!("{}", ex::e6_levels());
    }
    if want("e7") {
        let (table, _) = ex::e7_fault();
        println!("{table}");
    }
    if want("e8") {
        println!("{}", ex::e8_heap());
    }
    if want("e9") {
        println!("{}", ex::e9_solvers(&[16, 32]));
    }
    if want("e10") {
        println!("{}", ex::e10_design_iter());
    }
    if want("a1") {
        println!("{}", ex::a1_renumbering());
    }
    if want("a2") {
        println!("{}", ex::a2_spawn_ablation());
    }
}
