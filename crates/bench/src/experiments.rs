//! The E1–E10 experiment implementations.
//!
//! Every function is deterministic (fixed seeds, simulated time), so tables
//! are reproducible run to run; see EXPERIMENTS.md for the paper-claim vs
//! measured discussion of each.

use fem2_core::fem::bc::{Constraints, LoadSet};
use fem2_core::fem::partition::Partition;
use fem2_core::fem::solver::{self, IterControls};
use fem2_core::fem::substructure::analyze_substructures;
use fem2_core::fem::{Material, Mesh};
use fem2_core::kernel::{CodeBlock, Heap, KernelMessage, KernelSim, TaskId, WorkProfile};
use fem2_core::machine::fault::FaultPlan;
use fem2_core::machine::{Machine, MachineConfig, Network, PeId, Topology};
use fem2_core::navm::{NaVm, TaskHandle};
use fem2_core::scenario::{plate_cg, PlateScenario, ScenarioReport};
use fem2_core::DesignSpace;
use fem2_trace::DegradationReport;
use std::fmt::Write as _;

/// A deterministic pseudo-random stream (xorshift), so "irregular" traffic
/// patterns are reproducible without pulling `rand` into the tables.
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    /// Next value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------
// E1 — processing / storage / communication requirements vs problem size
// ---------------------------------------------------------------------

/// E1: requirement tables for the plate application at several sizes.
pub fn e1_requirements(sizes: &[usize]) -> (String, Vec<ScenarioReport>) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E1 — requirements of the typical large-scale application (clustered FEM-2, {})",
        MachineConfig::fem2_default().describe()
    );
    let _ = writeln!(out, "{}", ScenarioReport::header());
    let mut reports = Vec::new();
    for &n in sizes {
        let r = PlateScenario::square(n, MachineConfig::fem2_default()).run();
        let _ = writeln!(out, "{}", r.row());
        reports.push(r);
    }
    // Per-phase detail at the largest size.
    if let Some(r) = reports.last() {
        let _ = writeln!(
            out,
            "\nper-phase detail at n = {}:",
            (r.unknowns as f64).sqrt() as usize
        );
        out.push_str(&r.table);
    }
    (out, reports)
}

// ---------------------------------------------------------------------
// E2 — speedup: clustered FEM-2 vs FEM-1-style flat array
// ---------------------------------------------------------------------

/// One speedup row.
pub struct SpeedupRow {
    /// Total worker PEs.
    pub workers: u32,
    /// Clustered machine makespan.
    pub clustered: u64,
    /// Flat-array makespan.
    pub flat: u64,
}

/// E2: fixed-size speedup of the plate solve on clustered vs flat machines.
pub fn e2_speedup(n: usize) -> (String, Vec<SpeedupRow>) {
    let mut out = String::new();
    let _ = writeln!(out, "E2 — speedup on a {n}x{n} plate (fixed size)");
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>9} {:>7} {:>14} {:>9}",
        "workers", "clustered(cy)", "speedup", "eff", "flat-bus(cy)", "speedup"
    );
    // Baseline: one worker.
    let base_cfg = {
        let mut c = MachineConfig::clustered(1, 1, Topology::Crossbar);
        c.dedicated_kernel_pe = false;
        c
    };
    let t1 = PlateScenario::square(n, base_cfg).run().elapsed;
    let mut rows = Vec::new();
    for &(clusters, pes) in &[(1u32, 1u32), (1, 2), (1, 4), (1, 8), (2, 8), (4, 8), (8, 8)] {
        let mut cfg = MachineConfig::clustered(clusters, pes, Topology::Crossbar);
        cfg.dedicated_kernel_pe = false;
        let workers = cfg.total_workers();
        let tc = PlateScenario::square(n, cfg).run().elapsed;
        let flat = MachineConfig::fem1_style(workers);
        let tf = PlateScenario::square(n, flat).run().elapsed;
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>9.2} {:>7.2} {:>14} {:>9.2}",
            workers,
            tc,
            t1 as f64 / tc as f64,
            t1 as f64 / tc as f64 / workers as f64,
            tf,
            t1 as f64 / tf as f64
        );
        rows.push(SpeedupRow {
            workers,
            clustered: tc,
            flat: tf,
        });
    }
    (out, rows)
}

// ---------------------------------------------------------------------
// E3 — window access: row / column / block, local vs remote
// ---------------------------------------------------------------------

/// E3: cycles per element moved through windows of each shape.
pub fn e3_windows() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3 — window access cost (256x256 array, 8 tasks on 4 clusters)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>14} {:>12}",
        "window", "elements", "locality", "cycles", "cy/element"
    );
    let mut vm = NaVm::simulated(MachineConfig::fem2_default(), 8);
    vm.set_spawn_overhead(false);
    let a = vm.array(256, 256);
    vm.fill(a, |r, c| (r + c) as f64);

    // Rows 0..32 live on task 0/cluster 0; rows 224.. on cluster 3.
    let probes: Vec<(&str, fem2_core::navm::Window, &str)> = vec![
        ("row", vm.row_window(a, 4), "local"),
        ("row", vm.row_window(a, 250), "remote"),
        ("column", vm.col_window(a, 10), "spanning"),
        ("block", vm.window(a, 0, 16, 0, 16), "local"),
        ("block", vm.window(a, 232, 248, 0, 16), "remote"),
        ("block", vm.window(a, 0, 256, 0, 64), "spanning"),
    ];
    for (label, w, locality) in probes {
        let t0 = vm.elapsed();
        let vals = vm.read_window(TaskHandle(0), &w);
        let dt = vm.elapsed() - t0;
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>14} {:>12.2}",
            label,
            vals.len(),
            locality,
            dt,
            dt as f64 / vals.len() as f64
        );
    }
    out
}

// ---------------------------------------------------------------------
// E4 — large-scale dynamic task initiation
// ---------------------------------------------------------------------

/// One task-initiation row.
pub struct TaskInitRow {
    /// Replication count K.
    pub k: u32,
    /// Total makespan.
    pub makespan: u64,
    /// Cycles per task.
    pub per_task: f64,
}

/// E4: initiate-K-replications scaling on the kernel.
pub fn e4_task_init(ks: &[u32]) -> (String, Vec<TaskInitRow>) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4 — dynamic task initiation (4x8 clusters, 100-flop tasks)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "K", "makespan", "cy/task", "completed", "kernelmsg"
    );
    let mut rows = Vec::new();
    for &k in ks {
        let machine = Machine::new(MachineConfig::fem2_default());
        let mut sim = KernelSim::new(machine);
        let code = sim.register_code(CodeBlock::new(
            "worklet",
            32,
            WorkProfile {
                flops: 100,
                int_ops: 20,
                mem_words: 10,
            },
            16,
        ));
        // Spread the initiations over the clusters, as the NA-VM would.
        let per_cluster = k / 4;
        let rem = k % 4;
        for c in 0..4u32 {
            let kc = per_cluster + u32::from(c < rem);
            if kc > 0 {
                sim.initiate(0, c, code, kc, None, 4);
            }
        }
        let makespan = sim.run();
        let done = sim.completions().len();
        let kernel_msgs = sim.machine.stats.total().kernel_msgs;
        let per_task = makespan as f64 / k.max(1) as f64;
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12.1} {:>12} {:>10}",
            k, makespan, per_task, done, kernel_msgs
        );
        rows.push(TaskInitRow {
            k,
            makespan,
            per_task,
        });
    }
    (out, rows)
}

// ---------------------------------------------------------------------
// E5 — communication patterns × topologies × message sizes
// ---------------------------------------------------------------------

pub(crate) fn run_pattern(
    net: &mut Network,
    now: u64,
    pattern: &str,
    clusters: u32,
    words: u64,
) -> u64 {
    let mut done = now;
    match pattern {
        "neighbor" => {
            for c in 0..clusters {
                let to = (c + 1) % clusters;
                done = done.max(net.transmit(now, c, to, words));
            }
        }
        "irregular" => {
            let mut rng = XorShift::new(42);
            for c in 0..clusters {
                let mut to = rng.below(clusters as u64) as u32;
                if to == c {
                    to = (to + 1) % clusters;
                }
                done = done.max(net.transmit(now, c, to, words));
            }
        }
        "all-to-one" => {
            for c in 1..clusters {
                done = done.max(net.transmit(now, c, 0, words));
            }
        }
        "broadcast" => {
            for c in 1..clusters {
                done = done.max(net.transmit(now, 0, c, words));
            }
        }
        other => panic!("unknown pattern {other}"),
    }
    done
}

/// E5: delivery makespan for each (pattern, topology, size).
pub fn e5_network() -> String {
    let clusters = 8;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E5 — communication patterns on 8 clusters (cycles to deliver)"
    );
    let _ = writeln!(
        out,
        "{:>11} {:>7} | {:>9} {:>9} {:>9} {:>9}",
        "pattern", "words", "bus", "ring", "mesh2d", "crossbar"
    );
    for pattern in ["neighbor", "irregular", "all-to-one", "broadcast"] {
        for &words in &[8u64, 256, 4096] {
            let mut cells = Vec::new();
            for topo in [
                Topology::Bus,
                Topology::Ring,
                Topology::Mesh2D { width: 4 },
                Topology::Crossbar,
            ] {
                let mut cfg = MachineConfig::clustered(clusters, 2, topo);
                cfg.max_packet_words = 256;
                let mut net = Network::new(&cfg);
                cells.push(run_pattern(&mut net, 0, pattern, clusters, words));
            }
            let _ = writeln!(
                out,
                "{:>11} {:>7} | {:>9} {:>9} {:>9} {:>9}",
                pattern, words, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// E6 — the three levels of parallelism
// ---------------------------------------------------------------------

/// E6: one table spanning the conclusion's three parallelism levels.
pub fn e6_levels() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6 — the three levels of parallelism (paper, Conclusion)"
    );

    // (a) independent user problems.
    let one_cluster = MachineConfig::clustered(1, 8, Topology::Crossbar);
    let t1 = PlateScenario::square(20, one_cluster).run().elapsed;
    let _ = writeln!(out, "\n(a) independent user problems (20x20 plate each):");
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>10}",
        "problems", "1 cluster", "4 clusters", "gain"
    );
    for &m in &[1u64, 2, 4, 8] {
        let serial = m * t1;
        let rounds = m.div_ceil(4);
        let parallel = rounds * t1;
        let _ = writeln!(
            out,
            "{:>10} {:>14} {:>14} {:>10.2}",
            m,
            serial,
            parallel,
            serial as f64 / parallel as f64
        );
    }

    // (b) substructure parallelism (native plane, wall time).
    let _ = writeln!(
        out,
        "\n(b) substructure analysis of a 32x4 wing (static condensation):"
    );
    let mesh = Mesh::grid_quad(32, 4, 8.0, 1.0);
    let mat = Material::aluminum();
    let mut cons = Constraints::new();
    for n in mesh.left_edge_nodes(1e-9) {
        cons.fix_node(n);
    }
    let mut loads = LoadSet::new("lift");
    for n in mesh.right_edge_nodes(1e-9) {
        loads.add_node(n, 0.0, 500.0);
    }
    let f = loads.to_vector(mesh.node_count() * 2);
    let pool = fem2_core::par::Pool::new(4);
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>14} {:>12}",
        "parts", "iface dofs", "max interior", "wall"
    );
    for parts in [1, 2, 4, 8] {
        let part = Partition::strips_x(&mesh, parts);
        let t0 = std::time::Instant::now();
        let sol = analyze_substructures(&pool, &mesh, &mat, &cons, &part, &f);
        let dt = t0.elapsed();
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>14} {:>12.2?}",
            parts, sol.interface_dofs, sol.max_interior, dt
        );
    }

    // (c) parallelism within one solve.
    let _ = writeln!(
        out,
        "\n(c) within one system solve (28 workers vs 1, 32x32 plate):"
    );
    let wide = PlateScenario::square(32, MachineConfig::fem2_default()).run();
    let mut narrow_cfg = MachineConfig::clustered(1, 2, Topology::Crossbar);
    narrow_cfg.dedicated_kernel_pe = true;
    let narrow = PlateScenario::square(32, narrow_cfg).run();
    let _ = writeln!(out, "{:>12} {:>14} {:>10}", "workers", "cycles", "speedup");
    let _ = writeln!(out, "{:>12} {:>14} {:>10.2}", 1, narrow.elapsed, 1.0);
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>10.2}",
        28,
        wide.elapsed,
        narrow.elapsed as f64 / wide.elapsed as f64
    );
    out
}

// ---------------------------------------------------------------------
// E7 — fault isolation, reliable delivery, and degradation
// ---------------------------------------------------------------------

/// The E7 kernel workload (48 local tasks plus three staggered
/// cross-cluster RPCs, so the reliable layer carries real traffic) on an
/// arbitrary machine configuration with an optional trace sink — shared
/// between the E7 fault sweep and the `fem2-bench` harness's traced DES
/// record.
pub(crate) fn e7_sim(
    cfg: MachineConfig,
    plan: &FaultPlan,
    trace: fem2_trace::TraceHandle,
) -> (KernelSim, u64) {
    let machine = Machine::new(cfg);
    let mut sim = KernelSim::new(machine);
    sim.set_trace(trace);
    let code = sim.register_code(CodeBlock::new(
        "work",
        32,
        WorkProfile {
            flops: 5000,
            int_ops: 100,
            mem_words: 200,
        },
        16,
    ));
    for c in 0..4 {
        sim.initiate(0, c, code, 12, None, 0);
    }
    // Staggered RPCs from cluster 0 keep acked traffic in flight across the
    // sweep's fault times.
    for (i, c) in [1u32, 2, 3].into_iter().enumerate() {
        sim.send(
            5_000 * (i as u64 + 1),
            0,
            c,
            KernelMessage::RemoteCall {
                call_id: i as u64,
                code,
                args_words: 8,
                caller: TaskId(0),
                reply_cluster: 0,
            },
        );
    }
    sim.inject_faults(plan);
    let makespan = sim.run();
    (sim, makespan)
}

/// The E7 workload on its reference machine: a 4x4 crossbar, untraced.
fn e7_run(plan: &FaultPlan) -> (KernelSim, u64) {
    e7_sim(
        MachineConfig::clustered(4, 4, Topology::Crossbar),
        plan,
        fem2_trace::TraceHandle::disabled(),
    )
}

/// The E7 fault mixes. Link ids on the 4-cluster crossbar are
/// `from * 4 + to`; every dead link leaves a two-hop detour. Shared with
/// the `fem2-bench` harness's fault-mix sweep.
pub(crate) fn e7_mixes() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("healthy", FaultPlan::none()),
        (
            "pe",
            FaultPlan::none()
                .kill_pe(30_000, PeId::new(1, 1))
                .transient_pe(40_000, 120_000, PeId::new(2, 1))
                .kill_pe(60_000, PeId::new(3, 2)),
        ),
        (
            "link",
            FaultPlan::none()
                .kill_link(20_000, 1) // 0 -> 1 dies; detour via 2 or 3
                .degrade_link(25_000, 2, 4), // 0 -> 2 runs 4x slower
        ),
        (
            "mem",
            // Lose all but 128 words of cluster 1's memory mid-run: live
            // activation records are invalidated and their tasks re-queued.
            FaultPlan::none().fail_memory(35_000, 1, (4 << 20) - 128),
        ),
        (
            "combined",
            FaultPlan::none()
                .kill_link(20_000, 1)
                .degrade_link(25_000, 2, 4)
                .kill_pe(30_000, PeId::new(1, 1))
                .fail_memory(35_000, 3, (4 << 20) - 128)
                .transient_pe(40_000, 120_000, PeId::new(2, 1)),
        ),
    ]
}

/// E7: degradation under fault mixes — PE (incl. transient), link (dead and
/// degraded), memory-bank, and combined — with the reliable-delivery layer
/// keeping every task alive.
pub fn e7_fault() -> (String, Vec<DegradationReport>) {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E7 — degradation under fault mixes (4x4 crossbar, 48 tasks + 3 RPCs)"
    );
    let (_, healthy_makespan) = e7_run(&FaultPlan::none());
    let mut rows = Vec::new();
    for (label, plan) in e7_mixes() {
        let (sim, makespan) = e7_run(&plan);
        rows.push(DegradationReport {
            label: label.to_string(),
            makespan,
            healthy_makespan,
            tasks: sim.task_count() as u64,
            completed: sim.completions().len() as u64,
            retransmits: sim.stats.retransmits,
            dead_letters: sim.stats.drops.dead_letter,
            rerouted_packets: sim.machine.network.rerouted_packets,
            reconfigurations: sim.machine.reconfigurations,
        });
    }
    out.push_str(&DegradationReport::render(&rows));

    // Numerical integrity: the same CG solve on the NA-VM plane, with links
    // dying and a PE blinking out mid-solve, must reproduce the healthy
    // run's solution bit for bit (faults perturb time, never values).
    let cg = |plan: Option<&FaultPlan>| {
        let mut vm = NaVm::simulated(MachineConfig::fem2_default(), 8);
        if let Some(p) = plan {
            vm.inject_faults(p);
        }
        let (iters, res, x) = plate_cg(&mut vm, 16, 16, 1e-8, 400);
        (iters, res, vm.snapshot(x), vm.retransmits(), vm.elapsed())
    };
    let (hi, hres, hx, _, ht) = cg(None);
    let plan = FaultPlan::none()
        .kill_link(2_000, 1)
        .degrade_link(3_000, 2, 4)
        .transient_pe(5_000, 50_000, PeId::new(3, 1));
    let (fi, fres, fx, fretrans, ft) = cg(Some(&plan));
    let bitwise = hx
        .iter()
        .zip(fx.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let _ = writeln!(
        out,
        "\nnavm CG 16x16 under link+PE faults: iters {fi} (healthy {hi}), \
         residual bitwise-equal {}, solution bitwise-equal {bitwise}, \
         retransmits {fretrans}, cycles {ft} vs healthy {ht}",
        hres.to_bits() == fres.to_bits(),
    );
    (out, rows)
}

// ---------------------------------------------------------------------
// E8 — the variable-size-block heap
// ---------------------------------------------------------------------

/// Run an alloc/free trace and report.
fn heap_trace(label: &str, sizes: impl Fn(&mut XorShift) -> u64, out: &mut String) {
    let mut heap = Heap::new(1 << 20);
    let mut rng = XorShift::new(7);
    let mut live: Vec<fem2_core::kernel::Block> = Vec::new();
    let t0 = std::time::Instant::now();
    let ops = 200_000;
    for i in 0..ops {
        // 60% alloc / 40% free once warm.
        let do_alloc = live.is_empty() || (i < 1000) || rng.below(10) < 6;
        if do_alloc {
            if let Ok(b) = heap.alloc(sizes(&mut rng).max(1)) {
                live.push(b);
            }
        } else {
            let idx = rng.below(live.len() as u64) as usize;
            let b = live.swap_remove(idx);
            heap.free(b).expect("block came from this heap");
        }
    }
    let dt = t0.elapsed();
    let _ = writeln!(
        out,
        "{:>10} {:>10.1} {:>12} {:>10} {:>9.3} {:>8} {:>8}",
        label,
        ops as f64 / dt.as_secs_f64() / 1e6,
        heap.high_water(),
        heap.fragments(),
        heap.fragmentation(),
        heap.allocs,
        heap.failed_allocs
    );
}

/// E8: heap throughput and fragmentation under three allocation shapes.
pub fn e8_heap() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E8 — variable-size-block heap (1 Mword arena, 200k ops)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>10} {:>9} {:>8} {:>8}",
        "trace", "Mops/s", "high water", "frags", "fragm.", "allocs", "failed"
    );
    heap_trace("uniform", |r| 1 + r.below(256), &mut out);
    heap_trace(
        "bimodal",
        |r| {
            if r.below(10) < 8 {
                1 + r.below(32)
            } else {
                1024 + r.below(1024)
            }
        },
        &mut out,
    );
    // FEM-shaped: activation records (small), element blocks (72 words),
    // occasional window buffers (row-sized).
    heap_trace(
        "fem",
        |r| match r.below(100) {
            0..=49 => 16 + r.below(16), // activation records
            50..=89 => 72,              // Quad4 element blocks
            _ => 256 + r.below(256),    // window buffers
        },
        &mut out,
    );
    out
}

// ---------------------------------------------------------------------
// E9 — the solver comparison (Adams–Voigt scenario)
// ---------------------------------------------------------------------

/// E9: iterations / flops / wall time of every solver on plate systems.
pub fn e9_solvers(sizes: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E9 — solver comparison on the 2-D plate system");
    let _ = writeln!(
        out,
        "{:>6} {:<14} {:>8} {:>13} {:>13} {:>11}",
        "n", "solver", "iters", "residual", "flops", "wall"
    );
    for &nx in sizes {
        let a = solver_testmat(nx);
        let n = nx * nx;
        let f: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
        let ctl = IterControls {
            rel_tol: 1e-8,
            max_iter: 200_000,
        };
        let run = |name: &str, r: (usize, f64, u64, std::time::Duration), out: &mut String| {
            let _ = writeln!(
                out,
                "{:>6} {:<14} {:>8} {:>13.2e} {:>13} {:>11.2?}",
                n, name, r.0, r.1, r.2, r.3
            );
        };
        let t0 = std::time::Instant::now();
        let (_, log) = solver::jacobi::solve(&a, &f, ctl);
        run(
            "jacobi",
            (log.iterations, log.residual, log.flops, t0.elapsed()),
            &mut out,
        );
        let t0 = std::time::Instant::now();
        let (_, log) = solver::sor::solve(&a, &f, 1.7, ctl);
        run(
            "sor(1.7)",
            (log.iterations, log.residual, log.flops, t0.elapsed()),
            &mut out,
        );
        let t0 = std::time::Instant::now();
        let (_, log) = solver::cg::solve(&a, &f, ctl, false);
        run(
            "cg",
            (log.iterations, log.residual, log.flops, t0.elapsed()),
            &mut out,
        );
        let t0 = std::time::Instant::now();
        let (_, log) = solver::cg::solve(&a, &f, ctl, true);
        run(
            "jacobi-pcg",
            (log.iterations, log.residual, log.flops, t0.elapsed()),
            &mut out,
        );
        let t0 = std::time::Instant::now();
        let x = solver::skyline::solve(&a, &f).expect("benchmark system is SPD");
        let res = solver::residual_norm(&a, &x, &f);
        run("skyline", (1, res, 0, t0.elapsed()), &mut out);
    }
    out
}

/// The 5-point Laplacian test matrix (shared with the solver unit tests).
pub fn solver_testmat(nx: usize) -> fem2_core::fem::Csr {
    let n = nx * nx;
    let mut coo = fem2_core::fem::Coo::new(n);
    for j in 0..nx {
        for i in 0..nx {
            let r = j * nx + i;
            coo.add(r, r, 4.0);
            if i > 0 {
                coo.add(r, r - 1, -1.0);
            }
            if i + 1 < nx {
                coo.add(r, r + 1, -1.0);
            }
            if j > 0 {
                coo.add(r, r - nx, -1.0);
            }
            if j + 1 < nx {
                coo.add(r, r + nx, -1.0);
            }
        }
    }
    coo.to_csr()
}

// ---------------------------------------------------------------------
// E10 — the design iteration
// ---------------------------------------------------------------------

/// E10: the full design-space iteration table.
pub fn e10_design_iter() -> String {
    let mut out = String::new();
    let space = DesignSpace::standard_sweep();
    let req = space.requirements;
    let _ = writeln!(
        out,
        "E10 — design iteration: {} users ({}x{} each) + one {}x{} problem, budget {}",
        req.users, req.small_n, req.small_n, req.large_n, req.large_n, req.budget
    );
    let trace = space.iterate();
    out.push_str(&trace.table());
    let best = trace.best();
    let _ = writeln!(
        out,
        "\nselected: {} — a clustered organization, as the paper's method concluded",
        best.config.describe()
    );
    out
}

// ---------------------------------------------------------------------
// A1 — ablation: node numbering vs the skyline envelope
// ---------------------------------------------------------------------

/// A1: skyline envelope and solve time on a badly-numbered mesh, before
/// and after RCM renumbering. The design choice under test: direct
/// solvers only work on this class of machine if numbering is managed.
pub fn a1_renumbering() -> String {
    use fem2_core::fem::solver::skyline::Skyline;
    let mut out = String::new();
    let _ = writeln!(out, "A1 — ablation: RCM renumbering vs skyline envelope");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "mesh", "ordering", "half-bw", "envelope", "factor+solve"
    );
    for (label, nx, ny) in [("plate24x4", 24usize, 4usize), ("plate12x12", 12, 12)] {
        let mesh = Mesh::grid_quad(nx, ny, nx as f64, ny as f64);
        // Scatter the numbering with a multiplicative permutation.
        let total = mesh.node_count();
        let mut g = 13;
        while gcd(g, total) != 1 {
            g += 2;
        }
        let perm: Vec<usize> = (0..total).map(|new| (new * g) % total).collect();
        let bad = mesh.renumbered(&perm);
        let (good, _) = bad.rcm();
        for (ordering, m) in [("scattered", &bad), ("rcm", &good)] {
            let k = fem2_core::fem::assemble(m, &Material::unit());
            let sky = Skyline::from_csr(&k);
            let f: Vec<f64> = (0..k.order()).map(|i| (i % 5) as f64).collect();
            // Fix an edge so the reduced system is SPD, then time the
            // envelope factor + solve.
            let t0 = std::time::Instant::now();
            let mut cons = fem2_core::fem::Constraints::new();
            for n in m.left_edge_nodes(1e-9) {
                cons.fix_node(n);
            }
            let free = cons.free_dofs(k.order());
            let kr = k.submatrix(&free);
            let fr = cons.restrict(&f);
            let x =
                fem2_core::fem::solver::skyline::solve(&kr, &fr).expect("benchmark system is SPD");
            let dt = t0.elapsed();
            let _ = x;
            let _ = writeln!(
                out,
                "{:>10} {:>10} {:>12} {:>12} {:>12.2?}",
                label,
                ordering,
                m.half_bandwidth(),
                sky.envelope(),
                dt
            );
        }
    }
    out
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

// ---------------------------------------------------------------------
// A2 — ablation: initiate-once task crews vs per-section respawn
// ---------------------------------------------------------------------

/// A2: the cost of re-initiating the task crew at every parallel section
/// instead of once (the runtime design decision behind the E2 speedups).
pub fn a2_spawn_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A2 — ablation: task crew initiate-once vs respawn per section"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>14} {:>14} {:>9}",
        "sections", "tasks", "once(cy)", "respawn(cy)", "overhead"
    );
    for &sections in &[10usize, 100] {
        for &tasks in &[8u32, 28] {
            let run = |respawn: bool| {
                let mut vm = NaVm::simulated(MachineConfig::fem2_default(), tasks);
                let stmts: Vec<(TaskHandle, WorkProfile)> = vm
                    .tasks()
                    .iter()
                    .map(|t| (t, WorkProfile::flops(2000)))
                    .collect();
                for _ in 0..sections {
                    if respawn {
                        vm.respawn_tasks();
                    }
                    vm.pardo(&stmts);
                }
                vm.elapsed()
            };
            let once = run(false);
            let respawn = run(true);
            let _ = writeln!(
                out,
                "{:>10} {:>8} {:>14} {:>14} {:>9.2}",
                sections,
                tasks,
                once,
                respawn,
                respawn as f64 / once as f64
            );
        }
    }
    out
}

/// A quick NA-VM simulated CG probe shared by a couple of benches.
pub fn quick_sim_cg(n: usize, tasks: u32) -> u64 {
    let mut vm = NaVm::simulated(MachineConfig::fem2_default(), tasks);
    let _ = plate_cg(&mut vm, n, n, 1e-6, 2000);
    vm.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_rows_monotone_in_size() {
        let (_, reports) = e1_requirements(&[8, 16]);
        assert!(reports[1].total_flops > reports[0].total_flops);
        assert!(reports[1].total_messages > 0);
    }

    #[test]
    fn e2_parallel_beats_serial_and_clustered_beats_flat() {
        let (_, rows) = e2_speedup(32);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.clustered < first.clustered,
            "speedup with more workers"
        );
        // At the largest machine, clustered beats the flat bus array.
        assert!(
            last.clustered < last.flat,
            "clustered {} < flat {}",
            last.clustered,
            last.flat
        );
    }

    #[test]
    fn e3_remote_costs_more_than_local() {
        let table = e3_windows();
        // The table renders; locality ordering is asserted in navm tests.
        assert!(table.contains("remote"));
        assert!(table.contains("local"));
    }

    #[test]
    fn e4_amortizes_initiation() {
        let (_, rows) = e4_task_init(&[8, 512]);
        assert!(
            rows[1].per_task < rows[0].per_task * 4.0,
            "per-task cost stays bounded"
        );
    }

    #[test]
    fn e5_table_shapes() {
        let t = e5_network();
        assert!(t.contains("broadcast"));
        assert!(t.contains("crossbar"));
    }

    #[test]
    fn e7_all_tasks_survive_every_fault_mix() {
        let (table, rows) = e7_fault();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.completed, r.tasks, "mix {}", r.label);
            assert!(r.dead_letters == 0, "mix {} dead-lettered", r.label);
        }
        let by = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        assert!(by("link").retransmits > 0 || by("link").rerouted_packets > 0);
        assert!(by("combined").reconfigurations >= 4);
        assert!(by("combined").makespan >= by("healthy").makespan);
        assert!(table.contains("solution bitwise-equal true"));
    }

    #[test]
    fn e7_report_is_byte_stable() {
        assert_eq!(e7_fault().0, e7_fault().0);
    }

    #[test]
    fn e8_and_e9_render() {
        assert!(e8_heap().contains("fem"));
        assert!(e9_solvers(&[8]).contains("jacobi-pcg"));
    }

    #[test]
    fn a1_rcm_shrinks_envelope() {
        let t = a1_renumbering();
        assert!(t.contains("rcm"));
        assert!(t.contains("scattered"));
    }

    #[test]
    fn a2_respawn_costs_more() {
        let t = a2_spawn_ablation();
        assert!(t.contains("overhead"));
        // Overhead ratios in the table must all exceed 1.
        for line in t.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() == 5 {
                let ratio: f64 = cols[4].parse().unwrap();
                assert!(ratio > 1.0, "{line}");
            }
        }
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
