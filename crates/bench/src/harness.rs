//! The `fem2-bench --json` perf harness: a fixed experiment mix timed on
//! the host, written as a machine-readable `BENCH_fem2.json`.
//!
//! The mix exercises the three hot paths every later PR is judged against:
//!
//! * **E1 plate sweep** — the full simulated plane (DES, kernel, network,
//!   windows) at n ∈ {8, 16, 32, 48}, with a traced 48×48 run supplying
//!   events/sec and peak DES queue depth, plus a 64×64 shard sweep
//!   (1/2/4/8 cluster shards) recording sequential-vs-sharded speedup;
//! * **E5 network sweep** — the pattern × topology × size message mix on
//!   the bare [`Network`] (route selection and link contention only);
//! * **E7 kernel runs** — the traced fault-and-repair DES record plus the
//!   untraced fault-mix sweep (healthy/pe/link/mem/combined);
//! * **E9 solvers** — native-plane CG / Jacobi-PCG / skyline on the 32×32
//!   plate system (CSR construction and matvec throughput).
//!
//! Independent sweep cells (E1 sizes, E5 grid cells, E7 mixes) fan across
//! the `fem2-par` pool via [`crate::sweep::par_sweep`]; results come back
//! in input order, so the table and JSON are byte-stable (modulo wall
//! times) regardless of `FEM2_PAR_THREADS`.
//!
//! Every record carries host wall time *and* the deterministic simulated
//! quantity it produced (cycles, or flops for native solvers), so a perf
//! regression is distinguishable from a workload change: if `sim_cycles`
//! moved, the workload changed; if only `wall_ns` moved, the
//! implementation got slower or faster. With `--repeat N` the whole mix
//! reruns N times: `wall_ns` is the best (minimum) wall time per record
//! and `wall_ns_median` the median, which tames scheduler noise.

use crate::experiments as ex;
use crate::sweep::par_sweep;
use fem2_core::fem::solver::{self, IterControls};
use fem2_core::machine::fault::FaultPlan;
use fem2_core::machine::{
    CostClass, DesQueue, Machine, MachineConfig, Network, RunBudget, Topology,
};
use fem2_core::scenario::PlateScenario;
use fem2_par::Pool;
use fem2_trace::TraceHandle;
use serde_json::Value;
use std::time::Instant;

/// Schema identifier written into the JSON document.
pub const SCHEMA: &str = "fem2-bench/7";
/// The previous schema (no per-record `alloc_links` / `alloc_clusters` /
/// `saturation_clusters`); still accepted by [`validate_json`] so stored
/// baselines keep validating.
pub const SCHEMA_V6: &str = "fem2-bench/6";
/// Two revisions back (additionally no per-record `shards` / `speedup`).
pub const SCHEMA_V5: &str = "fem2-bench/5";
/// Three revisions back (additionally no per-record `predicted_events` /
/// `predicted_cycles` / `tightness`).
pub const SCHEMA_V4: &str = "fem2-bench/4";
/// Four revisions back (additionally no per-record `run_status`).
pub const SCHEMA_V3: &str = "fem2-bench/3";
/// Five revisions back (additionally no `commit`, `plan_hash`, or
/// `params` provenance fields); also still accepted.
pub const SCHEMA_V2: &str = "fem2-bench/2";
/// The original schema (additionally lacks `repeat` and
/// `wall_ns_median`); also still accepted.
pub const SCHEMA_V1: &str = "fem2-bench/1";

/// Ring capacity for the traced E1 run; metrics are exact regardless of
/// retention, so a modest ring keeps the traced run cheap.
const TRACE_RING: usize = 1 << 12;

/// Suite knobs, wired to `fem2-bench` CLI flags.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Route cache on the simulated-plane records (`--no-route-cache`
    /// ablation turns it off).
    pub route_cache: bool,
    /// DES queue backend for the simulated-plane records
    /// (`--des-queue heap` is the reference-path ablation).
    pub des_queue: DesQueue,
    /// Times the whole mix runs; per record, `wall_ns` is the best and
    /// `wall_ns_median` the median across runs.
    pub repeat: u32,
    /// Simulated-cycle budget applied to the E1 plate runs
    /// (`--budget-cycles N`): a run past the budget ends as a
    /// deterministic abort recorded with `run_status: "aborted"`.
    pub budget_cycles: Option<u64>,
    /// DES-event budget for the E1 plate runs (`--budget-events N`).
    pub budget_events: Option<u64>,
    /// Cluster shards the simulated-plane records run with
    /// (`--shards N`; `MachineConfig::des_shards`). One shard is the
    /// sequential reference engine.
    pub shards: u32,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            route_cache: true,
            des_queue: DesQueue::Calendar,
            repeat: 1,
            budget_cycles: None,
            budget_events: None,
            shards: 1,
        }
    }
}

impl BenchOptions {
    /// The [`RunBudget`] the E1 plate scenarios run under; unlimited when
    /// no override is set.
    fn budget(&self) -> RunBudget {
        RunBudget {
            max_sim_cycles: self.budget_cycles,
            max_des_events: self.budget_events,
            ..RunBudget::unlimited()
        }
    }
}

/// One timed benchmark record.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Stable record name, e.g. `e1_plate_48`.
    pub name: String,
    /// Best host wall time of the timed section across repeats, nanoseconds.
    pub wall_ns: u64,
    /// Median host wall time across repeats (equals `wall_ns` when the mix
    /// ran once), nanoseconds.
    pub wall_ns_median: u64,
    /// Deterministic simulated cycles produced (0 for native-plane work).
    pub sim_cycles: u64,
    /// Events processed: trace events for traced records, the engine's
    /// own event counter (machine charges and transfers, or DES queue
    /// pops) otherwise — so throughput is tracked for every simulated row,
    /// not only traced ones. 0 for native-plane work.
    pub events: u64,
    /// Events per host second (0 only when `events` is 0).
    pub events_per_sec: u64,
    /// Peak DES queue depth observed (0 when untraced).
    pub peak_queue_depth: u64,
    /// How the record's run ended: `"ok"`, or `"aborted"` when a budget
    /// override cut it short (schema v4).
    pub run_status: String,
    /// Static DES-event upper bound from the cost pass (schema v5; 0 for
    /// records the analyzer does not model, e.g. native-plane solvers).
    pub predicted_events: u64,
    /// Static sim-cycle upper bound from the cost pass (schema v5; 0 when
    /// unmodeled).
    pub predicted_cycles: u64,
    /// Bound tightness, `predicted_cycles / sim_cycles` (≥ 1 when the
    /// bound is sound; 0.0 when unmodeled or the run did not complete).
    pub tightness: f64,
    /// Cluster shards the record ran with (schema v6; 1 = sequential
    /// engine, also recorded for records sharding cannot touch).
    pub shards: u32,
    /// Sequential-vs-sharded wall speedup (schema v6): best sequential
    /// wall over this record's wall, for shard-sweep records; 0.0 when
    /// not applicable.
    pub speedup: f64,
    /// Link records the sparse network slab materialized during the run
    /// (schema v7) — the peak-RSS proxy for network state. 0 for records
    /// that do not observe the machine (native solvers, bare-network
    /// checksums).
    pub alloc_links: u64,
    /// Cluster PE lanes materialized during the run (schema v7) — the
    /// peak-RSS proxy for machine state. 0 when unobserved.
    pub alloc_clusters: u64,
    /// For weak-scaling records: the smallest cluster count at which this
    /// record's topology saturates its bisection under the sweep's fixed
    /// per-cluster traffic (makespan more than doubles over the smallest
    /// machine's). 0 when the topology never saturated in the sweep, or
    /// for non-weak-scaling records (schema v7).
    pub saturation_clusters: u64,
}

impl BenchRecord {
    fn untraced(name: impl Into<String>, wall_ns: u64, sim_cycles: u64) -> Self {
        BenchRecord {
            name: name.into(),
            wall_ns,
            wall_ns_median: wall_ns,
            sim_cycles,
            events: 0,
            events_per_sec: 0,
            peak_queue_depth: 0,
            run_status: "ok".into(),
            predicted_events: 0,
            predicted_cycles: 0,
            tightness: 0.0,
            shards: 1,
            speedup: 0.0,
            alloc_links: 0,
            alloc_clusters: 0,
            saturation_clusters: 0,
        }
    }

    /// Record the engine's own event count (untraced rows), deriving
    /// throughput from this record's best wall time.
    fn with_engine_events(mut self, events: u64) -> Self {
        self.events = events;
        let secs = (self.wall_ns as f64 / 1e9).max(1e-9);
        self.events_per_sec = (events as f64 / secs) as u64;
        self
    }

    /// Attach the static cost bounds (and, for completed runs, the
    /// tightness ratio) to this record.
    fn with_prediction(mut self, cost: &fem2_verify::CostReport) -> Self {
        if cost.is_bounded() {
            self.predicted_events = cost.des_events;
            self.predicted_cycles = cost.sim_cycles;
            if self.run_status == "ok" && self.sim_cycles > 0 {
                self.tightness = cost.sim_cycles as f64 / self.sim_cycles as f64;
            }
        }
        self
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("wall_ns".into(), Value::UInt(self.wall_ns)),
            ("wall_ns_median".into(), Value::UInt(self.wall_ns_median)),
            ("sim_cycles".into(), Value::UInt(self.sim_cycles)),
            ("events".into(), Value::UInt(self.events)),
            ("events_per_sec".into(), Value::UInt(self.events_per_sec)),
            (
                "peak_queue_depth".into(),
                Value::UInt(self.peak_queue_depth),
            ),
            ("run_status".into(), Value::Str(self.run_status.clone())),
            (
                "predicted_events".into(),
                Value::UInt(self.predicted_events),
            ),
            (
                "predicted_cycles".into(),
                Value::UInt(self.predicted_cycles),
            ),
            ("tightness".into(), Value::Float(self.tightness)),
            ("shards".into(), Value::UInt(u64::from(self.shards))),
            ("speedup".into(), Value::Float(self.speedup)),
            ("alloc_links".into(), Value::UInt(self.alloc_links)),
            ("alloc_clusters".into(), Value::UInt(self.alloc_clusters)),
            (
                "saturation_clusters".into(),
                Value::UInt(self.saturation_clusters),
            ),
        ])
    }
}

/// The full harness result.
#[derive(Clone, Debug)]
pub struct BenchSuite {
    /// Machine configuration description the simulated records ran on.
    pub machine: String,
    /// Source commit the suite ran at (`FEM2_COMMIT` env override, then
    /// `GITHUB_SHA`, then the enclosing `.git/HEAD`; `unknown` otherwise).
    pub commit: String,
    /// Content hash of the resolved simulated-plane machine plan, so
    /// registry consumers can tell apart runs whose `machine` strings
    /// collide but whose configurations differ.
    pub plan_hash: String,
    /// Flat `key=value` summary of the suite knobs, one line, for
    /// registry display and grouping.
    pub params: String,
    /// Times the mix ran (see [`BenchOptions::repeat`]).
    pub repeat: u32,
    /// All timed records, in run order.
    pub records: Vec<BenchRecord>,
}

/// The commit this suite ran at, best-effort and offline: an explicit
/// `FEM2_COMMIT` wins, then CI's `GITHUB_SHA`, then the enclosing git
/// checkout's `HEAD` (following one level of ref indirection, with a
/// `packed-refs` fallback), and finally `"unknown"`.
fn commit_id() -> String {
    for var in ["FEM2_COMMIT", "GITHUB_SHA"] {
        if let Ok(c) = std::env::var(var) {
            let c = c.trim();
            if !c.is_empty() {
                return c.to_string();
            }
        }
    }
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let git = d.join(".git");
        if let Ok(text) = std::fs::read_to_string(git.join("HEAD")) {
            let text = text.trim();
            let Some(refname) = text.strip_prefix("ref: ") else {
                return text.to_string(); // detached HEAD: the hash itself
            };
            if let Ok(h) = std::fs::read_to_string(git.join(refname)) {
                return h.trim().to_string();
            }
            if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
                for line in packed.lines() {
                    if let Some((hash, name)) = line.split_once(' ') {
                        if name == refname {
                            return hash.to_string();
                        }
                    }
                }
            }
            return "unknown".to_string();
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    "unknown".to_string()
}

fn wall_of<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_nanos() as u64, out)
}

/// The default machine configuration with the suite's ablation toggles
/// applied; `--no-route-cache` / `--des-queue heap` run the identical
/// workload through the reference paths.
fn e1_config(opts: BenchOptions) -> MachineConfig {
    let mut cfg = MachineConfig::fem2_default();
    cfg.route_cache = opts.route_cache;
    cfg.des_queue = opts.des_queue;
    cfg.des_shards = opts.shards;
    cfg
}

/// E1: the plate sweep on the simulated plane. The untraced sizes fan
/// across the pool (each cell is its own scenario); one traced 48×48 run
/// supplies event throughput and queue depth.
fn e1_records(records: &mut Vec<BenchRecord>, opts: BenchOptions, pool: &Pool) {
    let sized = par_sweep(pool, vec![8usize, 16, 32, 48], |n| {
        let scenario = PlateScenario::square(n, e1_config(opts)).with_budget(opts.budget());
        let cost = fem2_core::verify::scenario_cost(&scenario);
        let (wall, (cycles, events, status, links, clusters)) = wall_of(|| budgeted(&scenario));
        let mut r =
            BenchRecord::untraced(format!("e1_plate_{n}"), wall, cycles).with_engine_events(events);
        r.run_status = status.into();
        r.shards = opts.shards;
        r.alloc_links = links;
        r.alloc_clusters = clusters;
        r.with_prediction(&cost)
    });
    records.extend(sized);
    // The traced run: same workload, plus observation.
    let (handle, rec) = TraceHandle::ring(TRACE_RING);
    let scenario = PlateScenario::square(48, e1_config(opts))
        .with_trace(handle)
        .with_budget(opts.budget());
    let cost = fem2_core::verify::scenario_cost(&scenario);
    let (wall, (cycles, _, status, links, clusters)) = wall_of(|| budgeted(&scenario));
    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
    let events = rec.metrics().total_events();
    let secs = (wall as f64 / 1e9).max(1e-9);
    records.push(
        BenchRecord {
            name: "e1_plate_48_traced".into(),
            wall_ns: wall,
            wall_ns_median: wall,
            sim_cycles: cycles,
            events,
            events_per_sec: (events as f64 / secs) as u64,
            peak_queue_depth: rec.metrics().peak_queue_depth(),
            run_status: status.into(),
            predicted_events: 0,
            predicted_cycles: 0,
            tightness: 0.0,
            shards: opts.shards,
            speedup: 0.0,
            alloc_links: links,
            alloc_clusters: clusters,
            saturation_clusters: 0,
        }
        .with_prediction(&cost),
    );
}

/// Run a plate scenario under its budget: `(cycles, events, status,
/// alloc_links, alloc_clusters)`. Under a budget override a run may end as
/// a deterministic abort: the record then carries the cycles reached and
/// says so (allocation counters are unobservable on the abort path).
fn budgeted(scenario: &PlateScenario) -> (u64, u64, &'static str, u64, u64) {
    match scenario.run_budgeted() {
        Ok(report) => (
            report.elapsed,
            report.engine_events,
            "ok",
            report.alloc_link_records,
            report.alloc_cluster_records,
        ),
        Err(abort) => (abort.sim_cycles, abort.des_events, "aborted", 0, 0),
    }
}

/// Grid size of the shard-sweep plate — the largest E1 plate in the suite.
/// Big enough that host math and per-shard charging dominate over epoch
/// synchronization, so the sweep measures the sharded engine's scaling.
const SHARD_SWEEP_N: usize = 64;

/// The shard sweep: the largest E1 plate run at 1, 2, 4, and 8 shards,
/// sequentially (each run owns the host pool), recording engine events,
/// events/sec, and the sequential-vs-sharded wall speedup per record. The
/// simulated outcome is bitwise-identical across the sweep — only wall
/// time may move — and the speedup is recomputed from merged best walls
/// after `--repeat` runs.
fn e1_shard_sweep(records: &mut Vec<BenchRecord>, opts: BenchOptions) {
    let mut seq_wall = 0u64;
    for shards in [1u32, 2, 4, 8] {
        let sweep_opts = BenchOptions { shards, ..opts };
        let scenario =
            PlateScenario::square(SHARD_SWEEP_N, e1_config(sweep_opts)).with_budget(opts.budget());
        let (wall, (cycles, events, status, links, clusters)) = wall_of(|| budgeted(&scenario));
        if shards == 1 {
            seq_wall = wall;
        }
        let mut r = BenchRecord::untraced(
            format!("e1_plate_{SHARD_SWEEP_N}_shards_{shards}"),
            wall,
            cycles,
        )
        .with_engine_events(events);
        r.run_status = status.into();
        r.shards = shards;
        r.speedup = seq_wall as f64 / (wall as f64).max(1.0);
        r.alloc_links = links;
        r.alloc_clusters = clusters;
        records.push(r);
    }
}

/// Grid size of the large-machine E1 plate: the fixed plate workload on a
/// 1024-cluster torus, three orders more clusters than the work needs.
/// The row exists to prove sparse machine state end to end: the run must
/// allocate link and cluster records proportional to the clusters the
/// plate actually touches, never to the machine's size (CI gates on the
/// `alloc_links` field).
const TORUS_E1_N: usize = 32;
/// Cluster count of the large-machine E1 row.
const TORUS_E1_CLUSTERS: u32 = 1024;
/// Task count of the large-machine E1 row: enough parallelism for the
/// plate, far fewer than the machine's worker count, so most clusters
/// never dispatch work and must never materialize PE records.
const TORUS_E1_TASKS: u32 = 128;

/// The large-machine E1 rows: the fixed plate at 1 and 4 shards on a
/// 1024-cluster 32×32 torus. Simulated results are bitwise-identical
/// across the pair; `refresh_speedups` pairs the rows by name.
fn e1_torus_sweep(records: &mut Vec<BenchRecord>, opts: BenchOptions) {
    let mut seq_wall = 0u64;
    for shards in [1u32, 4] {
        let side = (TORUS_E1_CLUSTERS as f64).sqrt() as u32;
        let mut cfg = e1_config(BenchOptions { shards, ..opts });
        cfg.clusters = TORUS_E1_CLUSTERS;
        cfg.topology = Topology::Torus {
            dims: vec![side, side],
        };
        let mut scenario = PlateScenario::square(TORUS_E1_N, cfg).with_budget(opts.budget());
        scenario.tasks = TORUS_E1_TASKS;
        let (wall, (cycles, events, status, links, clusters)) = wall_of(|| budgeted(&scenario));
        if shards == 1 {
            seq_wall = wall;
        }
        let mut r = BenchRecord::untraced(
            format!("e1_plate_{TORUS_E1_N}_torus{TORUS_E1_CLUSTERS}_shards_{shards}"),
            wall,
            cycles,
        )
        .with_engine_events(events);
        r.run_status = status.into();
        r.shards = shards;
        r.speedup = seq_wall as f64 / (wall as f64).max(1.0);
        r.alloc_links = links;
        r.alloc_clusters = clusters;
        records.push(r);
    }
}

/// Cluster counts of the weak-scaling sweep: fixed work per cluster from
/// 32 to 4096 clusters, so perfect weak scaling is a flat makespan and a
/// flat events/sec.
const WS_CLUSTERS: [u32; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];
/// Payload words of each weak-scaling message.
const WS_WORDS: u64 = 64;
/// Flops charged per cluster per weak-scaling cell.
const WS_FLOPS: u64 = 64;

/// The topology of one weak-scaling cell. Both shapes factor every power
/// of two in [`WS_CLUSTERS`]: the torus as the near-square 2-D grid, the
/// fat tree with a `sqrt(n)`-ish radix.
fn ws_topology(kind: &str, n: u32) -> Topology {
    let k = n.trailing_zeros();
    match kind {
        "torus" => Topology::Torus {
            dims: vec![1 << (k / 2), 1 << (k - k / 2)],
        },
        "fattree" => Topology::FatTree {
            radix: 1 << (k / 2),
        },
        other => unreachable!("unknown weak-scaling topology {other}"),
    }
}

/// One weak-scaling cell: every cluster charges [`WS_FLOPS`] flops and
/// sends two [`WS_WORDS`]-word messages at time zero — one to its ring
/// neighbor, one to its antipode (the antipodal half crosses the bisection,
/// so a topology whose bisection bandwidth grows slower than the cluster
/// count congests as the sweep scales). Returns `(makespan, events,
/// alloc_links, alloc_clusters)`; all four are deterministic.
fn ws_cell(opts: BenchOptions, kind: &str, n: u32) -> (u64, u64, u64, u64) {
    let mut cfg = MachineConfig::clustered(n, 2, ws_topology(kind, n));
    cfg.route_cache = opts.route_cache;
    cfg.des_queue = opts.des_queue;
    let mut m = Machine::new(cfg);
    let mut makespan = 0u64;
    for c in 0..n {
        let pe = m.pick_worker(c).expect("two PEs per cluster");
        let done = m
            .charge(0, pe, CostClass::Flop, WS_FLOPS)
            .expect("healthy machine");
        let near = m.transmit(0, c, (c + 1) % n, WS_WORDS);
        let far = m.transmit(0, c, (c + n / 2) % n, WS_WORDS);
        makespan = makespan.max(done).max(near).max(far);
    }
    (
        makespan,
        m.events,
        m.network.allocated_link_records() as u64,
        m.allocated_cluster_records() as u64,
    )
}

/// The weak-scaling sweep: [`ws_cell`] per topology per cluster count,
/// recording events/sec, the allocated link/cluster records (the peak-RSS
/// proxy: a dense machine would grow these with the id space, the sparse
/// one only with touched state), and the topology's bisection saturation
/// point — the smallest cluster count whose makespan more than doubles
/// the 32-cluster makespan, stamped on every row of that topology.
fn ws_records(records: &mut Vec<BenchRecord>, opts: BenchOptions) {
    for kind in ["torus", "fattree"] {
        let mut rows = Vec::new();
        let mut base_makespan = 0u64;
        let mut saturation = 0u64;
        for n in WS_CLUSTERS {
            let (wall, (makespan, events, links, clusters)) = wall_of(|| ws_cell(opts, kind, n));
            if n == WS_CLUSTERS[0] {
                base_makespan = makespan;
            } else if saturation == 0 && makespan > 2 * base_makespan {
                saturation = u64::from(n);
            }
            let mut r = BenchRecord::untraced(format!("ws_{kind}_{n}"), wall, makespan)
                .with_engine_events(events);
            r.alloc_links = links;
            r.alloc_clusters = clusters;
            rows.push(r);
        }
        for mut r in rows {
            r.saturation_clusters = saturation;
            records.push(r);
        }
    }
}

/// E5: the communication-pattern sweep on the bare network. Each
/// (pattern, size, topology) cell builds one network and replays the
/// pattern 50 times at advancing simulated time — the steady-state shape a
/// long simulation produces, where the same routes are looked up over and
/// over. Cells are independent, so they fan across the pool; the checksum
/// folds per-cell totals in grid order, giving the same `sim_cycles` as
/// the sequential nested loops this replaced. It is the sum of
/// per-repetition delivery makespans — a deterministic checksum of the
/// route + contention model.
fn e5_record(opts: BenchOptions, pool: &Pool) -> BenchRecord {
    let clusters = 8u32;
    let mut cells = Vec::new();
    for pattern in ["neighbor", "irregular", "all-to-one", "broadcast"] {
        for &words in &[8u64, 256, 4096] {
            for topo in [
                Topology::Bus,
                Topology::Ring,
                Topology::Mesh2D { width: 4 },
                Topology::Crossbar,
            ] {
                cells.push((pattern, words, topo));
            }
        }
    }
    let (wall, (total, messages)) = wall_of(|| {
        par_sweep(pool, cells, |(pattern, words, topo)| {
            let mut cfg = MachineConfig::clustered(clusters, 2, topo);
            cfg.max_packet_words = 256;
            cfg.route_cache = opts.route_cache;
            cfg.des_queue = opts.des_queue;
            let mut net = Network::new(&cfg);
            let mut now = 0u64;
            let mut cell_total = 0u64;
            for _ in 0..50 {
                let done = ex::run_pattern(&mut net, now, pattern, clusters, words);
                cell_total = cell_total.wrapping_add(done - now);
                now = done;
            }
            (cell_total, net.messages)
        })
        .into_iter()
        .fold((0u64, 0u64), |(t, m), (ct, cm)| {
            (t.wrapping_add(ct), m + cm)
        })
    });
    // Engine events for the bare-network record: messages carried.
    BenchRecord::untraced("e5_network", wall, total).with_engine_events(messages)
}

/// The E7 machine with the suite's ablation toggles applied.
fn e7_config(opts: BenchOptions) -> MachineConfig {
    let mut cfg = MachineConfig::clustered(4, 4, Topology::Crossbar);
    cfg.route_cache = opts.route_cache;
    cfg.des_queue = opts.des_queue;
    cfg
}

/// E7 (traced): the kernel workload (48 tasks + 3 RPCs on a 4x4 crossbar)
/// under a link fault, repair, and degrade — traced, so this record
/// carries a real DES queue depth: unlike the plate runs, which model
/// primitives directly on the machine, the kernel schedules through the
/// [`EventQueue`](fem2_core::machine::EventQueue).
fn e7_record(opts: BenchOptions) -> BenchRecord {
    let plan = FaultPlan::none()
        .kill_link(20_000, 1)
        .degrade_link(25_000, 2, 4)
        .recover_link(60_000, 1);
    let (handle, rec) = TraceHandle::ring(TRACE_RING);
    let (wall, (_, makespan)) = wall_of(|| ex::e7_sim(e7_config(opts), &plan, handle));
    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
    let events = rec.metrics().total_events();
    let secs = (wall as f64 / 1e9).max(1e-9);
    BenchRecord {
        name: "e7_kernel_traced".into(),
        wall_ns: wall,
        wall_ns_median: wall,
        sim_cycles: makespan,
        events,
        events_per_sec: (events as f64 / secs) as u64,
        peak_queue_depth: rec.metrics().peak_queue_depth(),
        run_status: "ok".into(),
        predicted_events: 0,
        predicted_cycles: 0,
        tightness: 0.0,
        shards: 1,
        speedup: 0.0,
        alloc_links: 0,
        alloc_clusters: 0,
        saturation_clusters: 0,
    }
}

/// E7 fault-mix sweep: the same kernel workload under each fault mix
/// (healthy, pe, link, mem, combined), untraced, fanned across the pool.
/// The kernel sim holds non-`Send` state, so each cell builds and consumes
/// its sim inside the worker; only `(name, makespan)` crosses back.
fn e7_mix_records(records: &mut Vec<BenchRecord>, opts: BenchOptions, pool: &Pool) {
    let mixes = ex::e7_mixes();
    let swept = par_sweep(pool, mixes, |(label, plan)| {
        let (wall, (sim, makespan)) =
            wall_of(|| ex::e7_sim(e7_config(opts), &plan, TraceHandle::disabled()));
        BenchRecord::untraced(format!("e7_mix_{label}"), wall, makespan)
            .with_engine_events(sim.events_processed())
    });
    records.extend(swept);
}

/// E9: native-plane solver wall times on the 32×32 plate system.
/// `sim_cycles` carries the solver's flop count (its deterministic work
/// measure); CSR assembly is timed separately as `e9_to_csr_32`.
fn e9_records(records: &mut Vec<BenchRecord>) {
    let nx = 32usize;
    let (csr_wall, a) = wall_of(|| ex::solver_testmat(nx));
    records.push(BenchRecord::untraced("e9_to_csr_32", csr_wall, 0));
    let n = nx * nx;
    let f: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
    let ctl = IterControls {
        rel_tol: 1e-8,
        max_iter: 200_000,
    };
    let (wall, log) = wall_of(|| solver::cg::solve(&a, &f, ctl, false).1);
    records.push(BenchRecord::untraced("e9_cg_32", wall, log.flops));
    let (wall, log) = wall_of(|| solver::cg::solve(&a, &f, ctl, true).1);
    records.push(BenchRecord::untraced("e9_jacobi_pcg_32", wall, log.flops));
    let (wall, _) = wall_of(|| solver::skyline::solve(&a, &f).expect("plate system is SPD"));
    records.push(BenchRecord::untraced("e9_skyline_32", wall, 0));
}

/// Recompute the shard-sweep speedups from (possibly repeat-merged) best
/// walls: each `*_shards_N` record's speedup is the matching `*_shards_1`
/// wall over its own.
fn refresh_speedups(mut records: Vec<BenchRecord>) -> Vec<BenchRecord> {
    let bases: Vec<(String, u64)> = records
        .iter()
        .filter(|r| r.name.ends_with("_shards_1"))
        .map(|r| (r.name.trim_end_matches('1').to_string(), r.wall_ns))
        .collect();
    for r in &mut records {
        if let Some((_, seq_wall)) = bases
            .iter()
            .find(|(prefix, _)| r.name.starts_with(prefix.as_str()))
        {
            r.speedup = *seq_wall as f64 / (r.wall_ns as f64).max(1.0);
        }
    }
    records
}

/// One pass over the fixed mix.
fn run_mix(opts: BenchOptions, pool: &Pool) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    e1_records(&mut records, opts, pool);
    e1_shard_sweep(&mut records, opts);
    e1_torus_sweep(&mut records, opts);
    ws_records(&mut records, opts);
    records.push(e5_record(opts, pool));
    records.push(e7_record(opts));
    e7_mix_records(&mut records, opts, pool);
    e9_records(&mut records);
    records
}

/// Run the fixed mix with default options and collect every record.
pub fn run_suite() -> BenchSuite {
    run_suite_opts(BenchOptions::default())
}

/// Run the fixed mix with the route cache toggled on the simulated-plane
/// records. Kept for the `--no-route-cache` ablation's original call
/// shape; see [`run_suite_opts`] for the full knob set.
pub fn run_suite_with(route_cache: bool) -> BenchSuite {
    run_suite_opts(BenchOptions {
        route_cache,
        ..BenchOptions::default()
    })
}

/// Run the fixed mix `opts.repeat` times and merge: per record, `wall_ns`
/// is the minimum wall time across runs and `wall_ns_median` the median
/// (upper median for even counts); deterministic fields come from the
/// first run (they are identical across runs). The worker pool is sized
/// from `FEM2_PAR_THREADS` (see [`Pool::from_env`]).
pub fn run_suite_opts(opts: BenchOptions) -> BenchSuite {
    let pool = Pool::from_env();
    let repeat = opts.repeat.max(1);
    let runs: Vec<Vec<BenchRecord>> = (0..repeat).map(|_| run_mix(opts, &pool)).collect();
    let records = runs[0]
        .iter()
        .enumerate()
        .map(|(i, r0)| {
            let mut walls: Vec<u64> = runs.iter().map(|run| run[i].wall_ns).collect();
            walls.sort_unstable();
            let best = walls[0];
            let median = walls[walls.len() / 2];
            let mut merged = r0.clone();
            merged.wall_ns = best;
            merged.wall_ns_median = median;
            if merged.events > 0 {
                // Keep throughput consistent with the reported best wall.
                let secs = (best as f64 / 1e9).max(1e-9);
                merged.events_per_sec = (merged.events as f64 / secs) as u64;
            }
            merged
        })
        .collect();
    let records = refresh_speedups(records);
    let mut machine = MachineConfig::fem2_default().describe();
    if !opts.route_cache {
        machine.push_str(" [route cache off]");
    }
    if opts.des_queue == DesQueue::Heap {
        machine.push_str(" [des queue heap]");
    }
    if opts.shards > 1 {
        machine.push_str(&format!(" [des shards {}]", opts.shards));
    }
    let plan = e1_config(opts);
    let mut params = format!(
        "route_cache={} des_queue={} repeat={} threads={} shards={}",
        if opts.route_cache { "on" } else { "off" },
        match opts.des_queue {
            DesQueue::Calendar => "calendar",
            DesQueue::Heap => "heap",
        },
        repeat,
        pool.threads(),
        opts.shards,
    );
    if let Some(c) = opts.budget_cycles {
        params.push_str(&format!(" budget_cycles={c}"));
    }
    if let Some(e) = opts.budget_events {
        params.push_str(&format!(" budget_events={e}"));
    }
    BenchSuite {
        machine,
        commit: commit_id(),
        plan_hash: fem2_core::hash::hash_hex(fem2_core::hash::content_hash(&plan)),
        params,
        repeat,
        records,
    }
}

impl BenchSuite {
    /// Serialize as the `fem2-bench/7` JSON document.
    pub fn to_json(&self) -> String {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("machine".into(), Value::Str(self.machine.clone())),
            ("commit".into(), Value::Str(self.commit.clone())),
            ("plan_hash".into(), Value::Str(self.plan_hash.clone())),
            ("params".into(), Value::Str(self.params.clone())),
            ("repeat".into(), Value::UInt(u64::from(self.repeat))),
            (
                "results".into(),
                Value::Arr(self.records.iter().map(BenchRecord::to_value).collect()),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("bench document has no non-finite floats")
    }

    /// A human-oriented summary table of the suite.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fem2-bench suite on {} (best of {})",
            self.machine, self.repeat
        );
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>14} {:>10} {:>12} {:>8}",
            "record", "wall(us)", "median(us)", "sim_cycles", "events", "events/s", "peak_q"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>14} {:>10} {:>12} {:>8}",
                r.name,
                r.wall_ns / 1_000,
                r.wall_ns_median / 1_000,
                r.sim_cycles,
                r.events,
                r.events_per_sec,
                r.peak_queue_depth
            );
        }
        out
    }
}

/// Validate a `BENCH_fem2.json` document. Accepts the current
/// `fem2-bench/7` schema plus the previous six: `fem2-bench/6` lacks the
/// per-record `alloc_links`/`alloc_clusters`/`saturation_clusters`,
/// `fem2-bench/5` additionally lacks `shards`/`speedup`, `fem2-bench/4`
/// additionally lacks `predicted_events`/`predicted_cycles`/`tightness`,
/// `fem2-bench/3` additionally lacks the per-record `run_status`,
/// `fem2-bench/2` additionally lacks the `commit`/`plan_hash`/`params`
/// provenance fields, and `fem2-bench/1` additionally lacks the suite
/// `repeat` and per-record `wall_ns_median`. Returns the number of
/// validated records.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = doc.get_field("schema").map_err(|e| e.to_string())?;
    let version = match schema {
        Value::Str(s) if s == SCHEMA => 7,
        Value::Str(s) if s == SCHEMA_V6 => 6,
        Value::Str(s) if s == SCHEMA_V5 => 5,
        Value::Str(s) if s == SCHEMA_V4 => 4,
        Value::Str(s) if s == SCHEMA_V3 => 3,
        Value::Str(s) if s == SCHEMA_V2 => 2,
        Value::Str(s) if s == SCHEMA_V1 => 1,
        other => {
            return Err(format!(
                "schema must be one of \"{SCHEMA}\", \"{SCHEMA_V6}\", \"{SCHEMA_V5}\", \
                 \"{SCHEMA_V4}\", \"{SCHEMA_V3}\", \"{SCHEMA_V2}\", or \"{SCHEMA_V1}\", \
                 found {other:?}"
            ))
        }
    };
    let v2 = version >= 2;
    match doc.get_field("machine").map_err(|e| e.to_string())? {
        Value::Str(_) => {}
        other => return Err(format!("machine must be a string, found {}", other.kind())),
    }
    if version >= 3 {
        for field in ["commit", "plan_hash", "params"] {
            match doc.get_field(field).map_err(|e| e.to_string())? {
                Value::Str(s) if !s.is_empty() => {}
                _ => return Err(format!("{field} must be a non-empty string")),
            }
        }
    }
    if v2 {
        match doc.get_field("repeat").map_err(|e| e.to_string())? {
            Value::UInt(n) if *n >= 1 => {}
            Value::Int(n) if *n >= 1 => {}
            other => {
                return Err(format!(
                    "repeat must be a positive integer, found {}",
                    other.kind()
                ))
            }
        }
    }
    let results = match doc.get_field("results").map_err(|e| e.to_string())? {
        Value::Arr(items) => items,
        other => return Err(format!("results must be an array, found {}", other.kind())),
    };
    if results.is_empty() {
        return Err("results array is empty".into());
    }
    let mut required = vec![
        "wall_ns",
        "sim_cycles",
        "events",
        "events_per_sec",
        "peak_queue_depth",
    ];
    if v2 {
        required.push("wall_ns_median");
    }
    for (i, rec) in results.iter().enumerate() {
        match rec
            .get_field("name")
            .map_err(|e| format!("record {i}: {e}"))?
        {
            Value::Str(s) if !s.is_empty() => {}
            _ => return Err(format!("record {i}: name must be a non-empty string")),
        }
        for field in &required {
            match rec
                .get_field(field)
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::UInt(_) => {}
                Value::Int(v) if *v >= 0 => {}
                other => {
                    return Err(format!(
                        "record {i}: {field} must be a non-negative integer, found {}",
                        other.kind()
                    ))
                }
            }
        }
        if version >= 4 {
            match rec
                .get_field("run_status")
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::Str(s) if matches!(s.as_str(), "ok" | "failed" | "aborted") => {}
                other => {
                    return Err(format!(
                        "record {i}: run_status must be \"ok\", \"failed\", or \"aborted\", \
                         found {other:?}"
                    ))
                }
            }
        }
        if version >= 5 {
            for field in ["predicted_events", "predicted_cycles"] {
                match rec
                    .get_field(field)
                    .map_err(|e| format!("record {i}: {e}"))?
                {
                    Value::UInt(_) => {}
                    Value::Int(v) if *v >= 0 => {}
                    other => {
                        return Err(format!(
                            "record {i}: {field} must be a non-negative integer, found {}",
                            other.kind()
                        ))
                    }
                }
            }
            match rec
                .get_field("tightness")
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::Float(f) if *f >= 0.0 => {}
                Value::UInt(_) => {}
                Value::Int(v) if *v >= 0 => {}
                other => {
                    return Err(format!(
                        "record {i}: tightness must be a non-negative number, found {}",
                        other.kind()
                    ))
                }
            }
        }
        if version >= 6 {
            match rec
                .get_field("shards")
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::UInt(v) if *v > 0 => {}
                Value::Int(v) if *v > 0 => {}
                other => {
                    return Err(format!(
                        "record {i}: shards must be a positive integer, found {}",
                        other.kind()
                    ))
                }
            }
            match rec
                .get_field("speedup")
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::Float(f) if *f >= 0.0 => {}
                Value::UInt(_) => {}
                Value::Int(v) if *v >= 0 => {}
                other => {
                    return Err(format!(
                        "record {i}: speedup must be a non-negative number, found {}",
                        other.kind()
                    ))
                }
            }
        }
        if version >= 7 {
            for field in ["alloc_links", "alloc_clusters", "saturation_clusters"] {
                match rec
                    .get_field(field)
                    .map_err(|e| format!("record {i}: {e}"))?
                {
                    Value::UInt(_) => {}
                    Value::Int(v) if *v >= 0 => {}
                    other => {
                        return Err(format!(
                            "record {i}: {field} must be a non-negative integer, found {}",
                            other.kind()
                        ))
                    }
                }
            }
        }
    }
    Ok(results.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny suite (not the full mix) keeps the test fast while covering
    /// serialization + validation round trip.
    fn small_suite() -> BenchSuite {
        BenchSuite {
            machine: "test".into(),
            commit: "deadbeef".into(),
            plan_hash: "0123456789abcdef".into(),
            params: "route_cache=on des_queue=calendar repeat=1 threads=2".into(),
            repeat: 1,
            records: vec![
                BenchRecord::untraced("a", 1_000, 42),
                BenchRecord {
                    name: "b".into(),
                    wall_ns: 2_000,
                    wall_ns_median: 2_500,
                    sim_cycles: 7,
                    events: 10,
                    events_per_sec: 5_000_000,
                    peak_queue_depth: 3,
                    run_status: "ok".into(),
                    predicted_events: 12,
                    predicted_cycles: 9,
                    tightness: 9.0 / 7.0,
                    shards: 4,
                    speedup: 2.5,
                    alloc_links: 12,
                    alloc_clusters: 4,
                    saturation_clusters: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_validation() {
        let json = small_suite().to_json();
        assert_eq!(validate_json(&json), Ok(2));
    }

    #[test]
    fn validation_accepts_the_previous_schemas() {
        let v1 = format!(
            r#"{{"schema":"{SCHEMA_V1}","machine":"m","results":[
                {{"name":"x","wall_ns":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0}}]}}"#
        );
        assert_eq!(validate_json(&v1), Ok(1));
        // v2: has repeat + median, no provenance fields.
        let v2 = format!(
            r#"{{"schema":"{SCHEMA_V2}","machine":"m","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0}}]}}"#
        );
        assert_eq!(validate_json(&v2), Ok(1));
        // v3: full provenance, no per-record run_status.
        let v3 = format!(
            r#"{{"schema":"{SCHEMA_V3}","machine":"m","commit":"c","plan_hash":"p",
                "params":"x","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0}}]}}"#
        );
        assert_eq!(validate_json(&v3), Ok(1));
        // v4: run_status, no prediction fields.
        let v4 = format!(
            r#"{{"schema":"{SCHEMA_V4}","machine":"m","commit":"c","plan_hash":"p",
                "params":"x","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0,"run_status":"ok"}}]}}"#
        );
        assert_eq!(validate_json(&v4), Ok(1));
        // v5: prediction fields, no shard fields.
        let v5 = format!(
            r#"{{"schema":"{SCHEMA_V5}","machine":"m","commit":"c","plan_hash":"p",
                "params":"x","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0,"run_status":"ok",
                  "predicted_events":3,"predicted_cycles":3,"tightness":1.5}}]}}"#
        );
        assert_eq!(validate_json(&v5), Ok(1));
        // v6: shard fields, no allocation fields.
        let v6 = format!(
            r#"{{"schema":"{SCHEMA_V6}","machine":"m","commit":"c","plan_hash":"p",
                "params":"x","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0,"run_status":"ok",
                  "predicted_events":3,"predicted_cycles":3,"tightness":1.5,
                  "shards":2,"speedup":1.8}}]}}"#
        );
        assert_eq!(validate_json(&v6), Ok(1));
    }

    #[test]
    fn v4_requires_run_status() {
        let head = format!(
            r#""schema":"{SCHEMA_V4}","machine":"m","commit":"c","plan_hash":"p",
               "params":"x","repeat":1"#
        );
        let record = r#""name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,
                        "events":0,"events_per_sec":0,"peak_queue_depth":0"#;
        let missing = format!(r#"{{{head},"results":[{{{record}}}]}}"#);
        assert!(validate_json(&missing).unwrap_err().contains("run_status"));
        let bad = format!(r#"{{{head},"results":[{{{record},"run_status":"meh"}}]}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("run_status"));
        let aborted = format!(r#"{{{head},"results":[{{{record},"run_status":"aborted"}}]}}"#);
        assert_eq!(validate_json(&aborted), Ok(1));
    }

    #[test]
    fn v5_requires_prediction_fields() {
        let head = format!(
            r#""schema":"{SCHEMA_V5}","machine":"m","commit":"c","plan_hash":"p",
               "params":"x","repeat":1"#
        );
        let record = r#""name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,
                        "events":0,"events_per_sec":0,"peak_queue_depth":0,
                        "run_status":"ok""#;
        let missing = format!(r#"{{{head},"results":[{{{record}}}]}}"#);
        assert!(validate_json(&missing)
            .unwrap_err()
            .contains("predicted_events"));
        let no_tightness = format!(
            r#"{{{head},"results":[{{{record},"predicted_events":3,"predicted_cycles":3}}]}}"#
        );
        assert!(validate_json(&no_tightness)
            .unwrap_err()
            .contains("tightness"));
        let bad = format!(
            r#"{{{head},"results":[{{{record},"predicted_events":3,"predicted_cycles":3,
                "tightness":"big"}}]}}"#
        );
        assert!(validate_json(&bad).unwrap_err().contains("tightness"));
        let full = format!(
            r#"{{{head},"results":[{{{record},"predicted_events":3,"predicted_cycles":3,
                "tightness":1.5}}]}}"#
        );
        assert_eq!(validate_json(&full), Ok(1));
    }

    #[test]
    fn v6_requires_shard_fields() {
        let head = format!(
            r#""schema":"{SCHEMA_V6}","machine":"m","commit":"c","plan_hash":"p",
               "params":"x","repeat":1"#
        );
        let record = r#""name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,
                        "events":0,"events_per_sec":0,"peak_queue_depth":0,
                        "run_status":"ok","predicted_events":3,"predicted_cycles":3,
                        "tightness":1.5"#;
        let missing = format!(r#"{{{head},"results":[{{{record}}}]}}"#);
        assert!(validate_json(&missing).unwrap_err().contains("shards"));
        let zero = format!(r#"{{{head},"results":[{{{record},"shards":0,"speedup":1.0}}]}}"#);
        assert!(validate_json(&zero).unwrap_err().contains("shards"));
        let no_speedup = format!(r#"{{{head},"results":[{{{record},"shards":2}}]}}"#);
        assert!(validate_json(&no_speedup).unwrap_err().contains("speedup"));
        let bad = format!(r#"{{{head},"results":[{{{record},"shards":2,"speedup":"fast"}}]}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("speedup"));
        let full = format!(r#"{{{head},"results":[{{{record},"shards":2,"speedup":1.8}}]}}"#);
        assert_eq!(validate_json(&full), Ok(1));
    }

    #[test]
    fn v7_requires_allocation_fields() {
        let head = format!(
            r#""schema":"{SCHEMA}","machine":"m","commit":"c","plan_hash":"p",
               "params":"x","repeat":1"#
        );
        let record = r#""name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,
                        "events":0,"events_per_sec":0,"peak_queue_depth":0,
                        "run_status":"ok","predicted_events":3,"predicted_cycles":3,
                        "tightness":1.5,"shards":2,"speedup":1.8"#;
        let missing = format!(r#"{{{head},"results":[{{{record}}}]}}"#);
        assert!(validate_json(&missing).unwrap_err().contains("alloc_links"));
        let partial = format!(r#"{{{head},"results":[{{{record},"alloc_links":4}}]}}"#);
        assert!(validate_json(&partial)
            .unwrap_err()
            .contains("alloc_clusters"));
        let bad = format!(
            r#"{{{head},"results":[{{{record},"alloc_links":4,"alloc_clusters":2,
                "saturation_clusters":"never"}}]}}"#
        );
        assert!(validate_json(&bad)
            .unwrap_err()
            .contains("saturation_clusters"));
        let full = format!(
            r#"{{{head},"results":[{{{record},"alloc_links":4,"alloc_clusters":2,
                "saturation_clusters":0}}]}}"#
        );
        assert_eq!(validate_json(&full), Ok(1));
    }

    #[test]
    fn weak_scaling_sweep_is_deterministic_and_sparse() {
        let opts = BenchOptions::default();
        let mut a = Vec::new();
        ws_records(&mut a, opts);
        let mut b = Vec::new();
        ws_records(&mut b, opts);
        let key = |rs: &[BenchRecord]| {
            rs.iter()
                .map(|r| {
                    (
                        r.name.clone(),
                        r.sim_cycles,
                        r.events,
                        r.alloc_links,
                        r.alloc_clusters,
                        r.saturation_clusters,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "the sweep is a pure simulated quantity");
        assert_eq!(a.len(), 2 * WS_CLUSTERS.len(), "both topologies, all sizes");
        for r in &a {
            let n: u64 = r.name.rsplit('_').next().unwrap().parse().unwrap();
            assert_eq!(r.events, 3 * n, "fixed work per cluster");
            assert_eq!(r.alloc_clusters, n, "every cluster ran work");
            assert!(
                r.alloc_links <= 6 * n,
                "{}: {} link records is not O(active) for {} clusters",
                r.name,
                r.alloc_links,
                n
            );
        }
        // The 2-D torus bisection grows as sqrt(n) against antipodal
        // traffic that grows as n: the sweep must find its saturation
        // point. The fat tree's bisection grows with n: it must not.
        let torus = a.iter().find(|r| r.name == "ws_torus_4096").unwrap();
        assert!(
            torus.saturation_clusters > 0,
            "torus antipodal traffic must saturate, makespan {}",
            torus.sim_cycles
        );
        let fat = a.iter().find(|r| r.name == "ws_fattree_4096").unwrap();
        assert_eq!(
            fat.saturation_clusters, 0,
            "fat-tree bisection keeps up, makespan {}",
            fat.sim_cycles
        );
    }

    #[test]
    fn torus_e1_rows_are_shard_invariant_and_o_active() {
        let mut records = Vec::new();
        e1_torus_sweep(&mut records, BenchOptions::default());
        assert_eq!(records.len(), 2);
        let (s1, s4) = (&records[0], &records[1]);
        assert_eq!(s1.name, "e1_plate_32_torus1024_shards_1");
        assert_eq!(s4.name, "e1_plate_32_torus1024_shards_4");
        assert_eq!(s1.sim_cycles, s4.sim_cycles, "bitwise across shards");
        assert_eq!(s1.events, s4.events);
        assert_eq!(s1.alloc_links, s4.alloc_links);
        assert_eq!(s1.alloc_clusters, s4.alloc_clusters);
        assert_eq!(s1.run_status, "ok");
        let n = u64::from(TORUS_E1_CLUSTERS);
        assert!(
            s1.alloc_links < 4 * n,
            "{} link records on a {} cluster torus is not O(active)",
            s1.alloc_links,
            n
        );
        assert!(
            s1.alloc_clusters < n / 2,
            "{} cluster records: a {}-task plate must not touch most of the \
             {n}-cluster machine",
            s1.alloc_clusters,
            TORUS_E1_TASKS
        );
    }

    #[test]
    fn refresh_speedups_ignores_weak_scaling_records() {
        let mut records = vec![
            BenchRecord::untraced("e1_plate_64_shards_1", 1_000, 5),
            BenchRecord::untraced("e1_plate_64_shards_4", 500, 5),
            BenchRecord::untraced("ws_torus_1024", 700, 9),
            BenchRecord::untraced("ws_fattree_4096", 900, 9),
        ];
        records[2].saturation_clusters = 2048;
        let out = refresh_speedups(records);
        assert_eq!(out[1].speedup, 2.0, "shard rows keep pairing");
        assert_eq!(out[2].speedup, 0.0, "weak-scaling rows have no base");
        assert_eq!(out[3].speedup, 0.0);
        assert_eq!(out[2].saturation_clusters, 2048, "fields pass through");
    }

    #[test]
    fn e1_records_carry_sound_prediction_bounds() {
        let pool = Pool::new(2);
        let mut records = Vec::new();
        e1_records(&mut records, BenchOptions::default(), &pool);
        for r in &records {
            assert!(
                r.predicted_cycles >= r.sim_cycles,
                "{}: bound {} < actual {}",
                r.name,
                r.predicted_cycles,
                r.sim_cycles
            );
            assert!(
                r.tightness >= 1.0,
                "{}: tightness {} should be >= 1 for completed runs",
                r.name,
                r.tightness
            );
        }
    }

    #[test]
    fn budgeted_e1_runs_abort_deterministically_into_records() {
        let pool = Pool::new(2);
        let opts = BenchOptions {
            budget_cycles: Some(20_000),
            ..BenchOptions::default()
        };
        let mut a = Vec::new();
        e1_records(&mut a, opts, &pool);
        let mut b = Vec::new();
        e1_records(&mut b, opts, &pool);
        // The large sizes blow the budget; the abort point is a property
        // of the workload, so both passes agree exactly.
        let key = |rs: &[BenchRecord]| {
            rs.iter()
                .map(|r| (r.name.clone(), r.sim_cycles, r.run_status.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert!(
            a.iter().any(|r| r.run_status == "aborted"),
            "a 20k-cycle budget must cut the 48x48 plate short: {:?}",
            key(&a)
        );
        assert!(
            a.iter()
                .all(|r| r.run_status == "aborted" || r.sim_cycles > 0),
            "completed runs still carry their cycles"
        );
    }

    #[test]
    fn v3_requires_provenance_fields() {
        // From v3 on, a document with v2's shape (no
        // commit/plan_hash/params) fails.
        let bare = format!(
            r#"{{"schema":"{SCHEMA}","machine":"m","repeat":1,"results":[
                {{"name":"x","wall_ns":1,"wall_ns_median":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0}}]}}"#
        );
        assert!(validate_json(&bare).unwrap_err().contains("commit"));
        let empty_commit = format!(
            r#"{{"schema":"{SCHEMA}","machine":"m","commit":"","plan_hash":"p",
                "params":"x","repeat":1,"results":[]}}"#
        );
        assert!(validate_json(&empty_commit).unwrap_err().contains("commit"));
    }

    #[test]
    fn suite_carries_resolvable_provenance() {
        // commit_id() inside this checkout resolves to a real hash (the
        // repo is git-managed); plan_hash is a 16-hex-digit content hash.
        let c = commit_id();
        assert!(!c.is_empty());
        let plan = e1_config(BenchOptions::default());
        let h = fem2_core::hash::hash_hex(fem2_core::hash::content_hash(&plan));
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|ch| ch.is_ascii_hexdigit()));
        // The plan hash moves when an ablation changes the plan.
        let ablated = e1_config(BenchOptions {
            route_cache: false,
            ..BenchOptions::default()
        });
        let h2 = fem2_core::hash::hash_hex(fem2_core::hash::content_hash(&ablated));
        assert_ne!(h, h2);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_json("not json").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json(r#"{"schema":"wrong","machine":"m","results":[]}"#).is_err());
        // Valid v3 preamble for docs probing record-level failures.
        let head = format!(
            r#""schema":"{SCHEMA}","machine":"m","commit":"c","plan_hash":"p","params":"x","repeat":1"#
        );
        let empty = format!(r#"{{{head},"results":[]}}"#);
        assert!(validate_json(&empty).unwrap_err().contains("empty"));
        let missing = format!(r#"{{{head},"results":[{{"name":"x"}}]}}"#);
        assert!(validate_json(&missing).unwrap_err().contains("wall_ns"));
        let bad_name = format!(r#"{{{head},"results":[{{"name":""}}]}}"#);
        assert!(validate_json(&bad_name).unwrap_err().contains("name"));
        // v2+ requires the median field; a doc with v1's record shape fails.
        let no_median = format!(
            r#"{{{head},"results":[
                {{"name":"x","wall_ns":1,"sim_cycles":2,"events":0,
                  "events_per_sec":0,"peak_queue_depth":0}}]}}"#
        );
        assert!(validate_json(&no_median)
            .unwrap_err()
            .contains("wall_ns_median"));
        // v2+ requires the suite-level repeat.
        let no_repeat = format!(r#"{{"schema":"{SCHEMA_V2}","machine":"m","results":[]}}"#);
        assert!(validate_json(&no_repeat).unwrap_err().contains("repeat"));
    }

    #[test]
    fn table_renders_every_record() {
        let t = small_suite().table();
        assert!(t.contains("record"));
        assert!(t.lines().any(|l| l.starts_with("a ")));
        assert!(t.lines().any(|l| l.starts_with("b ")));
    }

    #[test]
    fn e5_record_is_deterministic_in_cycles() {
        let pool = Pool::new(2);
        let a = e5_record(BenchOptions::default(), &pool);
        let b = e5_record(BenchOptions::default(), &pool);
        assert_eq!(a.sim_cycles, b.sim_cycles, "cycle checksum is seeded");
        assert!(a.wall_ns > 0);
    }

    #[test]
    fn e5_cycle_checksum_is_ablation_invariant() {
        let pool = Pool::new(2);
        let cached = e5_record(BenchOptions::default(), &pool);
        let recompute = e5_record(
            BenchOptions {
                route_cache: false,
                ..BenchOptions::default()
            },
            &pool,
        );
        assert_eq!(cached.sim_cycles, recompute.sim_cycles);
    }

    #[test]
    fn e5_checksum_is_thread_count_invariant() {
        let serial = e5_record(BenchOptions::default(), &Pool::new(1));
        let parallel = e5_record(BenchOptions::default(), &Pool::new(8));
        assert_eq!(serial.sim_cycles, parallel.sim_cycles);
    }

    #[test]
    fn e7_record_observes_real_des_activity() {
        let r = e7_record(BenchOptions::default());
        assert!(r.sim_cycles > 0);
        assert!(r.events > 0, "kernel run must emit trace events");
        assert!(
            r.peak_queue_depth > 0,
            "kernel run schedules through the DES queue"
        );
        let ablated = e7_record(BenchOptions {
            route_cache: false,
            ..BenchOptions::default()
        });
        assert_eq!(
            r.sim_cycles, ablated.sim_cycles,
            "route cache must not change timing"
        );
        let heap = e7_record(BenchOptions {
            des_queue: DesQueue::Heap,
            ..BenchOptions::default()
        });
        assert_eq!(
            r.sim_cycles, heap.sim_cycles,
            "queue backend must not change timing"
        );
        assert_eq!(r.events, heap.events, "or the event stream");
    }

    #[test]
    fn e7_phase_table_reports_des_throughput() {
        let (handle, rec) = TraceHandle::ring(TRACE_RING);
        ex::e7_sim(
            e7_config(BenchOptions::default()),
            &FaultPlan::none(),
            handle,
        );
        let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
        let table = fem2_trace::chrome::phase_table(&rec);
        assert!(
            table.contains("des: dispatches"),
            "kernel dispatches must surface in the metrics table:\n{table}"
        );
        assert!(table.contains("evt/Mcyc"), "with a throughput figure");
    }

    #[test]
    fn e7_mix_sweep_is_thread_count_and_backend_invariant() {
        let run = |threads: usize, q: DesQueue| {
            let pool = Pool::new(threads);
            let mut records = Vec::new();
            e7_mix_records(
                &mut records,
                BenchOptions {
                    des_queue: q,
                    ..BenchOptions::default()
                },
                &pool,
            );
            records
                .into_iter()
                .map(|r| (r.name, r.sim_cycles))
                .collect::<Vec<_>>()
        };
        let base = run(1, DesQueue::Calendar);
        assert_eq!(base.len(), 5, "five fault mixes");
        assert_eq!(base, run(4, DesQueue::Calendar), "thread-count invariant");
        assert_eq!(base, run(4, DesQueue::Heap), "backend invariant");
    }
}
