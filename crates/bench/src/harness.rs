//! The `fem2-bench --json` perf harness: a fixed experiment mix timed on
//! the host, written as a machine-readable `BENCH_fem2.json`.
//!
//! The mix exercises the three hot paths every later PR is judged against:
//!
//! * **E1 plate sweep** — the full simulated plane (DES, kernel, network,
//!   windows) at n ∈ {8, 16, 32, 48}, with a traced 48×48 run supplying
//!   events/sec and peak DES queue depth;
//! * **E5 network sweep** — the pattern × topology × size message mix on
//!   the bare [`Network`] (route selection and link contention only);
//! * **E9 solvers** — native-plane CG / Jacobi-PCG / skyline on the 32×32
//!   plate system (CSR construction and matvec throughput).
//!
//! Every record carries host wall time *and* the deterministic simulated
//! quantity it produced (cycles, or flops for native solvers), so a perf
//! regression is distinguishable from a workload change: if `sim_cycles`
//! moved, the workload changed; if only `wall_ns` moved, the
//! implementation got slower or faster.

use crate::experiments as ex;
use fem2_core::fem::solver::{self, IterControls};
use fem2_core::machine::fault::FaultPlan;
use fem2_core::machine::{MachineConfig, Network, Topology};
use fem2_core::scenario::PlateScenario;
use fem2_trace::TraceHandle;
use serde_json::Value;
use std::time::Instant;

/// Schema identifier written into (and required from) the JSON document.
pub const SCHEMA: &str = "fem2-bench/1";

/// Ring capacity for the traced E1 run; metrics are exact regardless of
/// retention, so a modest ring keeps the traced run cheap.
const TRACE_RING: usize = 1 << 12;

/// One timed benchmark record.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Stable record name, e.g. `e1_plate_48`.
    pub name: String,
    /// Host wall time of the timed section, nanoseconds.
    pub wall_ns: u64,
    /// Deterministic simulated cycles produced (0 for native-plane work).
    pub sim_cycles: u64,
    /// Trace events observed (0 when the record ran untraced).
    pub events: u64,
    /// Events per host second of the traced run (0 when untraced).
    pub events_per_sec: u64,
    /// Peak DES queue depth observed (0 when untraced).
    pub peak_queue_depth: u64,
}

impl BenchRecord {
    fn untraced(name: impl Into<String>, wall_ns: u64, sim_cycles: u64) -> Self {
        BenchRecord {
            name: name.into(),
            wall_ns,
            sim_cycles,
            events: 0,
            events_per_sec: 0,
            peak_queue_depth: 0,
        }
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("wall_ns".into(), Value::UInt(self.wall_ns)),
            ("sim_cycles".into(), Value::UInt(self.sim_cycles)),
            ("events".into(), Value::UInt(self.events)),
            ("events_per_sec".into(), Value::UInt(self.events_per_sec)),
            (
                "peak_queue_depth".into(),
                Value::UInt(self.peak_queue_depth),
            ),
        ])
    }
}

/// The full harness result.
#[derive(Clone, Debug)]
pub struct BenchSuite {
    /// Machine configuration description the simulated records ran on.
    pub machine: String,
    /// All timed records, in run order.
    pub records: Vec<BenchRecord>,
}

fn wall_of<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_nanos() as u64, out)
}

/// The default machine configuration with the route cache toggled; the
/// `--no-route-cache` ablation runs the identical workload through the
/// reference recompute path.
fn e1_config(route_cache: bool) -> MachineConfig {
    let mut cfg = MachineConfig::fem2_default();
    cfg.route_cache = route_cache;
    cfg
}

/// E1: the plate sweep on the simulated plane. Untraced runs time the hot
/// loops; one traced 48×48 run supplies event throughput and queue depth.
fn e1_records(records: &mut Vec<BenchRecord>, route_cache: bool) {
    for &n in &[8usize, 16, 32, 48] {
        let scenario = PlateScenario::square(n, e1_config(route_cache));
        let (wall, report) = wall_of(|| scenario.run_unchecked());
        records.push(BenchRecord::untraced(
            format!("e1_plate_{n}"),
            wall,
            report.elapsed,
        ));
    }
    // The traced run: same workload, plus observation.
    let (handle, rec) = TraceHandle::ring(TRACE_RING);
    let scenario = PlateScenario::square(48, e1_config(route_cache)).with_trace(handle);
    let (wall, report) = wall_of(|| scenario.run_unchecked());
    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
    let events = rec.metrics().total_events();
    let secs = (wall as f64 / 1e9).max(1e-9);
    records.push(BenchRecord {
        name: "e1_plate_48_traced".into(),
        wall_ns: wall,
        sim_cycles: report.elapsed,
        events,
        events_per_sec: (events as f64 / secs) as u64,
        peak_queue_depth: rec.metrics().peak_queue_depth(),
    });
}

/// E5: the communication-pattern sweep on the bare network. Each
/// (pattern, size, topology) cell builds one network and replays the
/// pattern 50 times at advancing simulated time — the steady-state shape a
/// long simulation produces, where the same routes are looked up over and
/// over. `sim_cycles` is the sum of per-repetition delivery makespans — a
/// deterministic checksum of the route + contention model.
fn e5_record(route_cache: bool) -> BenchRecord {
    let clusters = 8u32;
    let (wall, total) = wall_of(|| {
        let mut total = 0u64;
        for pattern in ["neighbor", "irregular", "all-to-one", "broadcast"] {
            for &words in &[8u64, 256, 4096] {
                for topo in [
                    Topology::Bus,
                    Topology::Ring,
                    Topology::Mesh2D { width: 4 },
                    Topology::Crossbar,
                ] {
                    let mut cfg = MachineConfig::clustered(clusters, 2, topo);
                    cfg.max_packet_words = 256;
                    cfg.route_cache = route_cache;
                    let mut net = Network::new(&cfg);
                    let mut now = 0u64;
                    for _ in 0..50 {
                        let done = ex::run_pattern(&mut net, now, pattern, clusters, words);
                        total = total.wrapping_add(done - now);
                        now = done;
                    }
                }
            }
        }
        total
    });
    BenchRecord::untraced("e5_network", wall, total)
}

/// E7: the kernel workload (48 tasks + 3 RPCs on a 4x4 crossbar) under a
/// link fault, repair, and degrade — traced, so this record carries a real
/// DES queue depth: unlike the plate runs, which model primitives directly
/// on the machine, the kernel schedules through the [`EventQueue`].
fn e7_record(route_cache: bool) -> BenchRecord {
    let mut cfg = MachineConfig::clustered(4, 4, Topology::Crossbar);
    cfg.route_cache = route_cache;
    let plan = FaultPlan::none()
        .kill_link(20_000, 1)
        .degrade_link(25_000, 2, 4)
        .recover_link(60_000, 1);
    let (handle, rec) = TraceHandle::ring(TRACE_RING);
    let (wall, (_, makespan)) = wall_of(|| ex::e7_sim(cfg, &plan, handle));
    let rec = rec.lock().unwrap_or_else(|e| e.into_inner());
    let events = rec.metrics().total_events();
    let secs = (wall as f64 / 1e9).max(1e-9);
    BenchRecord {
        name: "e7_kernel_traced".into(),
        wall_ns: wall,
        sim_cycles: makespan,
        events,
        events_per_sec: (events as f64 / secs) as u64,
        peak_queue_depth: rec.metrics().peak_queue_depth(),
    }
}

/// E9: native-plane solver wall times on the 32×32 plate system.
/// `sim_cycles` carries the solver's flop count (its deterministic work
/// measure); CSR assembly is timed separately as `e9_to_csr_32`.
fn e9_records(records: &mut Vec<BenchRecord>) {
    let nx = 32usize;
    let (csr_wall, a) = wall_of(|| ex::solver_testmat(nx));
    records.push(BenchRecord::untraced("e9_to_csr_32", csr_wall, 0));
    let n = nx * nx;
    let f: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
    let ctl = IterControls {
        rel_tol: 1e-8,
        max_iter: 200_000,
    };
    let (wall, log) = wall_of(|| solver::cg::solve(&a, &f, ctl, false).1);
    records.push(BenchRecord::untraced("e9_cg_32", wall, log.flops));
    let (wall, log) = wall_of(|| solver::cg::solve(&a, &f, ctl, true).1);
    records.push(BenchRecord::untraced("e9_jacobi_pcg_32", wall, log.flops));
    let (wall, _) = wall_of(|| solver::skyline::solve(&a, &f).expect("plate system is SPD"));
    records.push(BenchRecord::untraced("e9_skyline_32", wall, 0));
}

/// Run the fixed mix and collect every record.
pub fn run_suite() -> BenchSuite {
    run_suite_with(true)
}

/// Run the fixed mix with the route cache toggled on the simulated-plane
/// records (E1, E5, E7). `false` is the `--no-route-cache` ablation: same
/// workload, reference recompute path. Native-plane E9 records are
/// unaffected by the toggle.
pub fn run_suite_with(route_cache: bool) -> BenchSuite {
    let mut records = Vec::new();
    e1_records(&mut records, route_cache);
    records.push(e5_record(route_cache));
    records.push(e7_record(route_cache));
    e9_records(&mut records);
    let mut machine = MachineConfig::fem2_default().describe();
    if !route_cache {
        machine.push_str(" [route cache off]");
    }
    BenchSuite { machine, records }
}

impl BenchSuite {
    /// Serialize as the `fem2-bench/1` JSON document.
    pub fn to_json(&self) -> String {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("machine".into(), Value::Str(self.machine.clone())),
            (
                "results".into(),
                Value::Arr(self.records.iter().map(BenchRecord::to_value).collect()),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("bench document has no non-finite floats")
    }

    /// A human-oriented summary table of the suite.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fem2-bench suite on {}", self.machine);
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>14} {:>10} {:>12} {:>8}",
            "record", "wall(us)", "sim_cycles", "events", "events/s", "peak_q"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>14} {:>10} {:>12} {:>8}",
                r.name,
                r.wall_ns / 1_000,
                r.sim_cycles,
                r.events,
                r.events_per_sec,
                r.peak_queue_depth
            );
        }
        out
    }
}

/// Validate a `BENCH_fem2.json` document against the `fem2-bench/1`
/// schema. Returns the number of validated records.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = doc.get_field("schema").map_err(|e| e.to_string())?;
    match schema {
        Value::Str(s) if s == SCHEMA => {}
        other => return Err(format!("schema must be \"{SCHEMA}\", found {other:?}")),
    }
    match doc.get_field("machine").map_err(|e| e.to_string())? {
        Value::Str(_) => {}
        other => return Err(format!("machine must be a string, found {}", other.kind())),
    }
    let results = match doc.get_field("results").map_err(|e| e.to_string())? {
        Value::Arr(items) => items,
        other => return Err(format!("results must be an array, found {}", other.kind())),
    };
    if results.is_empty() {
        return Err("results array is empty".into());
    }
    for (i, rec) in results.iter().enumerate() {
        match rec
            .get_field("name")
            .map_err(|e| format!("record {i}: {e}"))?
        {
            Value::Str(s) if !s.is_empty() => {}
            _ => return Err(format!("record {i}: name must be a non-empty string")),
        }
        for field in [
            "wall_ns",
            "sim_cycles",
            "events",
            "events_per_sec",
            "peak_queue_depth",
        ] {
            match rec
                .get_field(field)
                .map_err(|e| format!("record {i}: {e}"))?
            {
                Value::UInt(_) => {}
                Value::Int(v) if *v >= 0 => {}
                other => {
                    return Err(format!(
                        "record {i}: {field} must be a non-negative integer, found {}",
                        other.kind()
                    ))
                }
            }
        }
    }
    Ok(results.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny suite (not the full mix) keeps the test fast while covering
    /// serialization + validation round trip.
    fn small_suite() -> BenchSuite {
        BenchSuite {
            machine: "test".into(),
            records: vec![
                BenchRecord::untraced("a", 1_000, 42),
                BenchRecord {
                    name: "b".into(),
                    wall_ns: 2_000,
                    sim_cycles: 7,
                    events: 10,
                    events_per_sec: 5_000_000,
                    peak_queue_depth: 3,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_validation() {
        let json = small_suite().to_json();
        assert_eq!(validate_json(&json), Ok(2));
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_json("not json").is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json(r#"{"schema":"wrong","machine":"m","results":[]}"#).is_err());
        let empty = format!(r#"{{"schema":"{SCHEMA}","machine":"m","results":[]}}"#);
        assert!(validate_json(&empty).unwrap_err().contains("empty"));
        let missing =
            format!(r#"{{"schema":"{SCHEMA}","machine":"m","results":[{{"name":"x"}}]}}"#);
        assert!(validate_json(&missing).unwrap_err().contains("wall_ns"));
        let bad_name =
            format!(r#"{{"schema":"{SCHEMA}","machine":"m","results":[{{"name":""}}]}}"#);
        assert!(validate_json(&bad_name).unwrap_err().contains("name"));
    }

    #[test]
    fn table_renders_every_record() {
        let t = small_suite().table();
        assert!(t.contains("record"));
        assert!(t.lines().any(|l| l.starts_with("a ")));
        assert!(t.lines().any(|l| l.starts_with("b ")));
    }

    #[test]
    fn e5_record_is_deterministic_in_cycles() {
        let a = e5_record(true);
        let b = e5_record(true);
        assert_eq!(a.sim_cycles, b.sim_cycles, "cycle checksum is seeded");
        assert!(a.wall_ns > 0);
    }

    #[test]
    fn e5_cycle_checksum_is_route_cache_invariant() {
        let cached = e5_record(true);
        let recompute = e5_record(false);
        assert_eq!(cached.sim_cycles, recompute.sim_cycles);
    }

    #[test]
    fn e7_record_observes_real_des_activity() {
        let r = e7_record(true);
        assert!(r.sim_cycles > 0);
        assert!(r.events > 0, "kernel run must emit trace events");
        assert!(
            r.peak_queue_depth > 0,
            "kernel run schedules through the DES queue"
        );
        let ablated = e7_record(false);
        assert_eq!(
            r.sim_cycles, ablated.sim_cycles,
            "route cache must not change timing"
        );
    }
}
