//! Counters and log2-bucketed histograms, aggregated per scenario phase.
//!
//! Metrics are updated for **every** event the sink sees, independent of
//! the ring buffer's retention, so per-phase aggregates stay exact even
//! when the ring wraps.

use crate::event::{EventKind, TaskStage, TraceEvent, WindowStage};

/// Number of log2 buckets: values up to 2^47 − 1 resolve exactly, larger
/// ones land in the last bucket.
pub const BUCKETS: usize = 48;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value 0; bucket `b ≥ 1` holds `[2^(b−1), 2^b)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Render as `lo..hi:count` pairs for non-empty buckets, e.g.
    /// `0:3 1:10 2..3:4 8..15:1`.
    pub fn summarize(&self) -> String {
        if self.count == 0 {
            return "-".to_string();
        }
        let mut parts = Vec::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let label = match b {
                0 => "0".to_string(),
                1 => "1".to_string(),
                b => format!("{}..{}", 1u64 << (b - 1), (1u64 << b) - 1),
            };
            parts.push(format!("{label}:{n}"));
        }
        parts.join(" ")
    }
}

/// Aggregates for one scenario phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseMetrics {
    /// Events observed (all kinds).
    pub events: u64,
    /// PE busy cycles (sum of `PeBusy` durations).
    pub busy_cycles: u64,
    /// Kernel messages sent.
    pub msgs_sent: u64,
    /// Kernel messages received.
    pub msgs_recv: u64,
    /// Wire words of sent kernel messages.
    pub msg_words: u64,
    /// Heap/cluster-memory allocations.
    pub allocs: u64,
    /// Heap/cluster-memory frees.
    pub frees: u64,
    /// Network transfers (post-segmentation messages).
    pub transfers: u64,
    /// Network packets moved.
    pub packets: u64,
    /// Words moved per window-protocol stage (request/gather/transit/scatter).
    pub window_words: [u64; 4],
    /// Link dead/degrade faults observed.
    pub link_faults: u64,
    /// Links restored to full health.
    pub link_recoveries: u64,
    /// Reliable-layer retransmits.
    pub retransmits: u64,
    /// Messages dead-lettered after exhausting retransmits.
    pub dead_letters: u64,
    /// Transient PE recoveries.
    pub pe_recoveries: u64,
    /// Cluster-memory bank faults.
    pub mem_faults: u64,
    /// Stale task completions discarded by the kernel.
    pub stale_tasks: u64,
    /// Supervisor-initiated run aborts (budget exceeded / cancelled).
    pub run_aborts: u64,
    /// DES dispatches (event pops) observed in this phase.
    pub des_dispatches: u64,
    /// Highest engine lifetime pop count seen in this phase (schedule or
    /// dispatch events both carry it).
    pub des_events_processed: u64,
    /// Simulated time of the first DES dispatch seen in this phase.
    pub des_first_dispatch_at: u64,
    /// Simulated time of the last DES dispatch seen in this phase.
    pub des_last_dispatch_at: u64,
    /// Histogram of kernel message wire sizes, words.
    pub msg_size: Histogram,
    /// Histogram of DES queue depths at schedule/dispatch.
    pub queue_depth: Histogram,
    /// Histogram of task latencies (creation → completion), cycles.
    pub task_latency: Histogram,
}

impl PhaseMetrics {
    /// Fold one event in. `task_latency` is fed separately by the recorder
    /// (it needs cross-event pairing).
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev.kind {
            EventKind::DesSchedule {
                queue_depth,
                events_processed,
            } => {
                self.queue_depth.record(queue_depth as u64);
                self.des_events_processed = self.des_events_processed.max(events_processed);
            }
            EventKind::DesDispatch {
                queue_depth,
                events_processed,
            } => {
                self.queue_depth.record(queue_depth as u64);
                self.des_events_processed = self.des_events_processed.max(events_processed);
                if self.des_dispatches == 0 {
                    self.des_first_dispatch_at = ev.at;
                }
                self.des_last_dispatch_at = ev.at;
                self.des_dispatches += 1;
            }
            EventKind::PeBusy { .. } => {
                self.busy_cycles += ev.dur;
            }
            EventKind::MsgSend { words, .. } => {
                self.msgs_sent += 1;
                self.msg_words += words;
                self.msg_size.record(words);
            }
            EventKind::MsgRecv { .. } => {
                self.msgs_recv += 1;
            }
            EventKind::Window { stage, words, .. } => {
                self.window_words[stage.index()] += words;
            }
            EventKind::Alloc { .. } => {
                self.allocs += 1;
            }
            EventKind::Free { .. } => {
                self.frees += 1;
            }
            EventKind::LinkTransfer { packets, .. } => {
                self.transfers += 1;
                self.packets += packets as u64;
            }
            EventKind::Task { stage, .. } => {
                if stage == TaskStage::Stale {
                    self.stale_tasks += 1;
                }
            }
            EventKind::LinkFault { .. } => {
                self.link_faults += 1;
            }
            EventKind::Retransmit { .. } => {
                self.retransmits += 1;
            }
            EventKind::DeadLetter { .. } => {
                self.dead_letters += 1;
            }
            EventKind::PeRecover => {
                self.pe_recoveries += 1;
            }
            EventKind::LinkRecover { .. } => {
                self.link_recoveries += 1;
            }
            EventKind::MemFault { .. } => {
                self.mem_faults += 1;
            }
            EventKind::RunAbort { .. } => {
                self.run_aborts += 1;
            }
            EventKind::AppCommand { .. } => {}
        }
    }

    /// True if any fault/reliability counter is nonzero (gates the extra
    /// per-phase table line so healthy reports stay unchanged).
    pub fn any_fault_activity(&self) -> bool {
        self.link_faults != 0
            || self.link_recoveries != 0
            || self.retransmits != 0
            || self.dead_letters != 0
            || self.pe_recoveries != 0
            || self.mem_faults != 0
            || self.stale_tasks != 0
    }

    /// Total words across the four window stages.
    pub fn window_total(&self) -> u64 {
        self.window_words.iter().sum()
    }

    /// Trace-based DES throughput for this phase: dispatches per million
    /// simulated cycles over the phase's dispatch span. 0 when the phase
    /// saw fewer than two dispatches (no span to divide by).
    pub fn des_throughput_per_mcycle(&self) -> u64 {
        if self.des_dispatches < 2 {
            return 0;
        }
        let span = self
            .des_last_dispatch_at
            .saturating_sub(self.des_first_dispatch_at)
            .max(1);
        self.des_dispatches.saturating_mul(1_000_000) / span
    }
}

/// Per-phase metrics, in phase-first-seen order (parallel to the
/// recorder's phase name table).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// One entry per interned phase id.
    pub phases: Vec<PhaseMetrics>,
}

impl Metrics {
    /// The metrics slot for `phase`, growing the table as needed.
    pub fn phase_mut(&mut self, phase: u16) -> &mut PhaseMetrics {
        let idx = phase as usize;
        if idx >= self.phases.len() {
            self.phases.resize(idx + 1, PhaseMetrics::default());
        }
        &mut self.phases[idx]
    }

    /// Total events observed across all phases — the numerator of the
    /// events/sec throughput figure the bench harness reports.
    pub fn total_events(&self) -> u64 {
        self.phases.iter().map(|p| p.events).sum()
    }

    /// Largest DES queue depth observed in any phase (at schedule or
    /// dispatch) — the bench harness's peak-queue-depth figure.
    pub fn peak_queue_depth(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.queue_depth.max)
            .max()
            .unwrap_or(0)
    }

    /// Used by [`WindowStage`] display code: the four stage names in index
    /// order.
    pub fn stage_names() -> [&'static str; 4] {
        [
            WindowStage::Request.name(),
            WindowStage::Gather.name(),
            WindowStage::Transit.name(),
            WindowStage::Scatter.name(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CostKind;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[21], 1); // 2^20
        assert_eq!(h.count, 8);
        assert_eq!(h.max, 1 << 20);
    }

    #[test]
    fn histogram_summary_labels_ranges() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(5);
        h.record(6);
        assert_eq!(h.summarize(), "0:1 4..7:2");
    }

    #[test]
    fn totals_aggregate_across_phases() {
        let mut m = Metrics::default();
        m.phase_mut(0).observe(&TraceEvent::instant(
            0,
            0,
            0,
            EventKind::DesSchedule {
                queue_depth: 3,
                events_processed: 0,
            },
        ));
        m.phase_mut(1).observe(&TraceEvent::instant(
            5,
            0,
            0,
            EventKind::DesDispatch {
                queue_depth: 9,
                events_processed: 1,
            },
        ));
        m.phase_mut(1)
            .observe(&TraceEvent::instant(6, 0, 0, EventKind::PeRecover));
        assert_eq!(m.total_events(), 3);
        assert_eq!(m.peak_queue_depth(), 9);
        assert_eq!(Metrics::default().peak_queue_depth(), 0);
    }

    #[test]
    fn observe_routes_event_families() {
        let mut m = PhaseMetrics::default();
        m.observe(&TraceEvent::span(
            0,
            40,
            0,
            1,
            EventKind::PeBusy {
                cost: CostKind::Flop,
                count: 10,
            },
        ));
        m.observe(&TraceEvent::instant(
            5,
            0,
            0,
            EventKind::MsgSend {
                msg: crate::MsgKind::Resume,
                to_cluster: 1,
                words: 6,
            },
        ));
        m.observe(&TraceEvent::instant(
            9,
            1,
            0,
            EventKind::Window {
                stage: WindowStage::Transit,
                peer_cluster: 0,
                words: 32,
            },
        ));
        assert_eq!(m.events, 3);
        assert_eq!(m.busy_cycles, 40);
        assert_eq!(m.msgs_sent, 1);
        assert_eq!(m.msg_size.count, 1);
        assert_eq!(m.window_words[WindowStage::Transit.index()], 32);
    }

    #[test]
    fn des_throughput_from_dispatch_span_and_counter() {
        let mut m = PhaseMetrics::default();
        // Fewer than two dispatches: no span, throughput 0.
        m.observe(&TraceEvent::instant(
            100,
            0,
            0,
            EventKind::DesDispatch {
                queue_depth: 1,
                events_processed: 1,
            },
        ));
        assert_eq!(m.des_throughput_per_mcycle(), 0);
        // 5 dispatches over cycles 100..=500: span 400, 5M/400 = 12500.
        for (i, at) in [200u64, 300, 400, 500].iter().enumerate() {
            m.observe(&TraceEvent::instant(
                *at,
                0,
                0,
                EventKind::DesDispatch {
                    queue_depth: 1,
                    events_processed: 2 + i as u64,
                },
            ));
        }
        assert_eq!(m.des_dispatches, 5);
        assert_eq!(m.des_events_processed, 5);
        assert_eq!(m.des_first_dispatch_at, 100);
        assert_eq!(m.des_last_dispatch_at, 500);
        assert_eq!(m.des_throughput_per_mcycle(), 5_000_000 / 400);
        // Schedule events raise the lifetime counter but not the dispatch span.
        m.observe(&TraceEvent::instant(
            600,
            0,
            0,
            EventKind::DesSchedule {
                queue_depth: 2,
                events_processed: 9,
            },
        ));
        assert_eq!(m.des_events_processed, 9);
        assert_eq!(m.des_dispatches, 5);
    }
}
