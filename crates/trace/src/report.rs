//! Degradation reporting: how much a fault plan cost, in one table row.
//!
//! A [`DegradationReport`] compares one faulted run against its healthy
//! baseline: makespan inflation, reliable-layer traffic (retransmits,
//! dead letters), packets that took a detour around dead links, and how
//! many times the machine reconfigured. Rendering is pure integer
//! formatting so two identical runs produce byte-identical reports (the
//! property the fault-sweep smoke test checks).

use crate::Cycles;

/// Summary of one faulted run versus its healthy baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationReport {
    /// Human label for the fault mix (e.g. `"link-only"`).
    pub label: String,
    /// Makespan of the faulted run, cycles.
    pub makespan: Cycles,
    /// Makespan of the healthy baseline, cycles.
    pub healthy_makespan: Cycles,
    /// Tasks submitted.
    pub tasks: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Reliable-layer retransmits.
    pub retransmits: u64,
    /// Messages dead-lettered after exhausting their retransmit budget.
    pub dead_letters: u64,
    /// Packets routed around a dead link.
    pub rerouted_packets: u64,
    /// Machine reconfigurations (PE/link/memory fault handling).
    pub reconfigurations: u64,
}

impl DegradationReport {
    /// Makespan as permille of the healthy baseline (1000 = no slowdown).
    /// Integer arithmetic keeps the rendering byte-stable.
    pub fn slowdown_permille(&self) -> u64 {
        if self.healthy_makespan == 0 {
            return 1000;
        }
        self.makespan.saturating_mul(1000) / self.healthy_makespan
    }

    /// Column header matching [`DegradationReport::row`].
    pub fn header() -> String {
        format!(
            "{:<12} {:>10} {:>9} {:>9} {:>7} {:>8} {:>8} {:>9}\n{}",
            "fault mix",
            "makespan",
            "vs 1.000",
            "done",
            "retrans",
            "deadltr",
            "reroute",
            "reconfig",
            "-".repeat(79),
        )
    }

    /// One table row; stable width-aligned rendering.
    pub fn row(&self) -> String {
        let pm = self.slowdown_permille();
        format!(
            "{:<12} {:>10} {:>5}.{:03} {:>5}/{:<3} {:>7} {:>8} {:>8} {:>9}",
            self.label,
            self.makespan,
            pm / 1000,
            pm % 1000,
            self.completed,
            self.tasks,
            self.retransmits,
            self.dead_letters,
            self.rerouted_packets,
            self.reconfigurations,
        )
    }

    /// Render a header plus one row per report.
    pub fn render(reports: &[DegradationReport]) -> String {
        let mut out = String::new();
        out.push_str(&Self::header());
        out.push('\n');
        for r in reports {
            out.push_str(&r.row());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: &str, makespan: Cycles) -> DegradationReport {
        DegradationReport {
            label: label.to_string(),
            makespan,
            healthy_makespan: 10_000,
            tasks: 64,
            completed: 64,
            retransmits: 3,
            dead_letters: 1,
            rerouted_packets: 12,
            reconfigurations: 2,
        }
    }

    #[test]
    fn slowdown_is_integer_permille() {
        assert_eq!(sample("x", 10_000).slowdown_permille(), 1000);
        assert_eq!(sample("x", 15_500).slowdown_permille(), 1550);
        assert_eq!(sample("x", 10_001).slowdown_permille(), 1000);
        let mut r = sample("x", 5);
        r.healthy_makespan = 0;
        assert_eq!(r.slowdown_permille(), 1000);
    }

    #[test]
    fn rendering_is_deterministic_and_row_matches_header() {
        let rows = vec![sample("healthy", 10_000), sample("combined", 13_750)];
        let a = DegradationReport::render(&rows);
        let b = DegradationReport::render(&rows);
        assert_eq!(a, b);
        assert!(a.contains("fault mix"));
        assert!(a.contains("combined"));
        assert!(a.contains("1.375"));
        assert!(a.contains("64/64"));
    }
}
