//! Sinks: where events go.
//!
//! [`TraceSink`] is the recording interface; [`RingRecorder`] is the
//! bounded in-memory implementation, [`NoopSink`] discards everything.
//! Instrumented code holds a [`TraceHandle`] — a cheap, cloneable,
//! optionally-empty reference to a shared sink. A disabled handle makes
//! every emit a branch on `None`: the event value is never even built.

use crate::event::TraceEvent;
use crate::metrics::Metrics;
use crate::Cycles;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A consumer of trace events.
pub trait TraceSink: Send {
    /// Enter a (possibly already-interned) scenario phase at simulated
    /// time `at`; returns the phase's interned id.
    fn begin_phase(&mut self, name: &str, at: Cycles) -> u16;

    /// Record one event. The sink stamps `ev.phase`.
    fn record(&mut self, ev: TraceEvent);
}

/// A sink that discards everything (for measuring instrumentation paths or
/// explicitly opting out while keeping a live handle).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn begin_phase(&mut self, _name: &str, _at: Cycles) -> u16 {
        0
    }

    fn record(&mut self, _ev: TraceEvent) {}
}

/// Name of the implicit phase active before any `begin_phase` call.
pub const STARTUP_PHASE: &str = "startup";

/// Bounded ring-buffer recorder with per-phase metrics.
///
/// Keeps the newest `capacity` events (dropping the oldest and counting
/// them); metrics fold in every event regardless of retention. Task
/// latencies are derived by pairing `Task{Created}` / `Task{Completed}`
/// events as they arrive.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    phases: Vec<String>,
    current_phase: u16,
    /// (phase id, entry time) in order of `begin_phase` calls.
    phase_marks: Vec<(u16, Cycles)>,
    metrics: Metrics,
    /// Open tasks: (task id, creation time); scanned linearly (small).
    open_tasks: Vec<(u32, Cycles)>,
    /// Largest event timestamp seen (end of spans included).
    high_water: Cycles,
}

impl RingRecorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            phases: vec![STARTUP_PHASE.to_string()],
            current_phase: 0,
            phase_marks: vec![(0, 0)],
            metrics: Metrics::default(),
            open_tasks: Vec::new(),
            high_water: 0,
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Interned phase names; index = phase id.
    pub fn phases(&self) -> &[String] {
        &self.phases
    }

    /// Name of a phase id (or `"?"` for an unknown id).
    pub fn phase_name(&self, id: u16) -> &str {
        self.phases
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Phase entry marks: (phase id, entry time), in entry order.
    pub fn phase_marks(&self) -> &[(u16, Cycles)] {
        &self.phase_marks
    }

    /// Per-phase aggregates.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Largest timestamp observed (span ends included).
    pub fn high_water(&self) -> Cycles {
        self.high_water
    }

    /// Byte-serialize the retained event stream (fixed little-endian
    /// layout). Two runs recording identical events produce identical
    /// bytes — the determinism property the integration tests check.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 51 + 16);
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        for ev in &self.events {
            ev.encode_into(&mut out);
        }
        out
    }
}

impl TraceSink for RingRecorder {
    fn begin_phase(&mut self, name: &str, at: Cycles) -> u16 {
        let id = match self.phases.iter().position(|p| p == name) {
            Some(i) => i as u16,
            None => {
                self.phases.push(name.to_string());
                (self.phases.len() - 1) as u16
            }
        };
        self.current_phase = id;
        self.phase_marks.push((id, at));
        id
    }

    fn record(&mut self, mut ev: TraceEvent) {
        ev.phase = self.current_phase;
        self.high_water = self.high_water.max(ev.at + ev.dur);
        self.metrics.phase_mut(ev.phase).observe(&ev);
        if let crate::event::EventKind::Task { task, stage } = ev.kind {
            match stage {
                crate::event::TaskStage::Created => self.open_tasks.push((task, ev.at)),
                crate::event::TaskStage::Completed => {
                    if let Some(i) = self.open_tasks.iter().position(|&(t, _)| t == task) {
                        let (_, created) = self.open_tasks.swap_remove(i);
                        self.metrics
                            .phase_mut(ev.phase)
                            .task_latency
                            .record(ev.at.saturating_sub(created));
                    }
                }
                _ => {}
            }
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// A shared, lockable recorder (what [`TraceHandle::ring`] hands back).
pub type SharedRecorder = Arc<Mutex<RingRecorder>>;

/// A cheap handle instrumented code holds.
///
/// Cloning shares the underlying sink. The default handle is disabled:
/// [`TraceHandle::emit`] is then a single `None` check and the closure
/// building the event is never called.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TraceHandle {
    /// The disabled (zero-cost) handle.
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// A handle over an arbitrary shared sink.
    pub fn new(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        TraceHandle { inner: Some(sink) }
    }

    /// A handle recording into a fresh [`RingRecorder`] of `capacity`
    /// events, plus the shared recorder for later inspection/export.
    pub fn ring(capacity: usize) -> (Self, SharedRecorder) {
        let rec = Arc::new(Mutex::new(RingRecorder::new(capacity)));
        let sink: Arc<Mutex<dyn TraceSink>> = rec.clone();
        (TraceHandle { inner: Some(sink) }, rec)
    }

    /// Whether events are being consumed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record the event `f` builds — `f` runs only when enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.inner {
            sink.lock().unwrap_or_else(|e| e.into_inner()).record(f());
        }
    }

    /// Enter scenario phase `name` at simulated time `at`.
    pub fn begin_phase(&self, name: &str, at: Cycles) {
        if let Some(sink) = &self.inner {
            sink.lock()
                .unwrap_or_else(|e| e.into_inner())
                .begin_phase(name, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CostKind, EventKind, TaskStage};

    fn busy(at: Cycles, count: u64) -> TraceEvent {
        TraceEvent::span(
            at,
            count,
            0,
            1,
            EventKind::PeBusy {
                cost: CostKind::Flop,
                count,
            },
        )
    }

    #[test]
    fn disabled_handle_never_runs_the_closure() {
        let h = TraceHandle::disabled();
        let mut ran = false;
        h.emit(|| {
            ran = true;
            busy(0, 1)
        });
        assert!(!ran);
        assert!(!h.is_enabled());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let (h, rec) = TraceHandle::ring(3);
        for i in 0..5 {
            h.emit(|| busy(i, 1));
        }
        let r = rec.lock().unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let first = r.events().next().unwrap();
        assert_eq!(first.at, 2, "oldest two were dropped");
        // Metrics saw all five events despite the drops.
        assert_eq!(r.metrics().phases[0].events, 5);
    }

    #[test]
    fn phases_are_interned_and_stamped() {
        let (h, rec) = TraceHandle::ring(16);
        h.emit(|| busy(0, 1));
        h.begin_phase("solve", 10);
        h.emit(|| busy(10, 1));
        h.begin_phase("solve", 20);
        h.emit(|| busy(20, 1));
        let r = rec.lock().unwrap();
        assert_eq!(r.phases(), &["startup".to_string(), "solve".to_string()]);
        let phases: Vec<u16> = r.events().map(|e| e.phase).collect();
        assert_eq!(phases, vec![0, 1, 1]);
        assert_eq!(r.phase_marks(), &[(0, 0), (1, 10), (1, 20)]);
    }

    #[test]
    fn task_latency_pairs_created_and_completed() {
        let (h, rec) = TraceHandle::ring(16);
        h.emit(|| {
            TraceEvent::instant(
                100,
                0,
                0,
                EventKind::Task {
                    task: 7,
                    stage: TaskStage::Created,
                },
            )
        });
        h.emit(|| {
            TraceEvent::instant(
                250,
                0,
                0,
                EventKind::Task {
                    task: 7,
                    stage: TaskStage::Completed,
                },
            )
        });
        let r = rec.lock().unwrap();
        let lat = &r.metrics().phases[0].task_latency;
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 150);
    }

    #[test]
    fn encode_is_deterministic() {
        let run = || {
            let (h, rec) = TraceHandle::ring(8);
            h.begin_phase("p", 1);
            for i in 0..4 {
                h.emit(|| busy(i * 3, i));
            }
            let r = rec.lock().unwrap();
            r.encode()
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }
}
