//! The typed event vocabulary.
//!
//! Events are small `Copy` records so the hot recording path is a bounds
//! check and a memcpy. Everything is numeric: names (phases) are interned
//! by the recorder, message/cost kinds are closed enums mirroring the
//! paper's vocabulary.

use crate::Cycles;

/// Sentinel: event is not tied to one PE (cluster- or machine-level).
pub const NO_PE: u32 = u32::MAX;

/// Sentinel: event is not tied to one cluster (machine- or DES-level).
pub const NO_CLUSTER: u32 = u32::MAX;

/// The seven kernel message types of the paper's system programmer's VM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// Initiate a batch of tasks on a cluster.
    InitiateTask,
    /// A task paused (e.g. waiting on a window).
    PauseNotify,
    /// Resume a paused task.
    Resume,
    /// A task terminated.
    TerminateNotify,
    /// Remote procedure call request.
    RemoteCall,
    /// Remote procedure call reply.
    RemoteReturn,
    /// Ship a code image to a cluster.
    LoadCode,
}

impl MsgKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::InitiateTask => "initiate_task",
            MsgKind::PauseNotify => "pause_notify",
            MsgKind::Resume => "resume",
            MsgKind::TerminateNotify => "terminate_notify",
            MsgKind::RemoteCall => "remote_call",
            MsgKind::RemoteReturn => "remote_return",
            MsgKind::LoadCode => "load_code",
        }
    }

    fn code(self) -> u8 {
        match self {
            MsgKind::InitiateTask => 0,
            MsgKind::PauseNotify => 1,
            MsgKind::Resume => 2,
            MsgKind::TerminateNotify => 3,
            MsgKind::RemoteCall => 4,
            MsgKind::RemoteReturn => 5,
            MsgKind::LoadCode => 6,
        }
    }
}

/// PE work classes (mirrors `fem2_machine::CostClass`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostKind {
    /// Floating-point operation.
    Flop,
    /// Integer/control operation.
    IntOp,
    /// Shared-memory word access.
    MemWord,
    /// Message format-and-send overhead.
    MsgSend,
    /// Message decode-and-dispatch overhead.
    MsgDispatch,
    /// Task activation-record creation.
    TaskCreate,
    /// Context switch.
    ContextSwitch,
}

impl CostKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::Flop => "flop",
            CostKind::IntOp => "int_op",
            CostKind::MemWord => "mem_word",
            CostKind::MsgSend => "msg_send",
            CostKind::MsgDispatch => "msg_dispatch",
            CostKind::TaskCreate => "task_create",
            CostKind::ContextSwitch => "context_switch",
        }
    }

    fn code(self) -> u8 {
        match self {
            CostKind::Flop => 0,
            CostKind::IntOp => 1,
            CostKind::MemWord => 2,
            CostKind::MsgSend => 3,
            CostKind::MsgDispatch => 4,
            CostKind::TaskCreate => 5,
            CostKind::ContextSwitch => 6,
        }
    }
}

/// Stages of the remote-window protocol (request → gather → transit →
/// scatter), as charged by the NA-VM's window cost model (E3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WindowStage {
    /// Accessor ships the window descriptor to the owning cluster.
    Request,
    /// Owner gathers the selected words from its shared memory.
    Gather,
    /// The payload crosses the network.
    Transit,
    /// Accessor scatters/stores the payload locally.
    Scatter,
}

impl WindowStage {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            WindowStage::Request => "request",
            WindowStage::Gather => "gather",
            WindowStage::Transit => "transit",
            WindowStage::Scatter => "scatter",
        }
    }

    /// Stable index, usable as an array offset.
    pub fn index(self) -> usize {
        match self {
            WindowStage::Request => 0,
            WindowStage::Gather => 1,
            WindowStage::Transit => 2,
            WindowStage::Scatter => 3,
        }
    }
}

/// Task lifecycle transitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskStage {
    /// Activation record created.
    Created,
    /// Assigned to a PE and running.
    Dispatched,
    /// Ran to completion.
    Completed,
    /// Killed by a PE fault (will be re-queued).
    Faulted,
    /// A completion arrived for a superseded epoch and was discarded.
    Stale,
}

impl TaskStage {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskStage::Created => "created",
            TaskStage::Dispatched => "dispatched",
            TaskStage::Completed => "completed",
            TaskStage::Faulted => "faulted",
            TaskStage::Stale => "stale",
        }
    }

    fn code(self) -> u8 {
        match self {
            TaskStage::Created => 0,
            TaskStage::Dispatched => 1,
            TaskStage::Completed => 2,
            TaskStage::Faulted => 3,
            TaskStage::Stale => 4,
        }
    }
}

/// What happened.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// DES: an event was scheduled; `at` is the *fire* time.
    DesSchedule {
        /// Queue depth after insertion.
        queue_depth: u32,
        /// Engine lifetime pop count at the moment of scheduling, so
        /// trace-based throughput (events per cycle or second) can be
        /// computed per phase.
        events_processed: u64,
    },
    /// DES: the next event was popped for dispatch at `at`.
    DesDispatch {
        /// Queue depth after removal.
        queue_depth: u32,
        /// Engine lifetime pop count including this dispatch.
        events_processed: u64,
    },
    /// A PE executed `count` operations of one class; `dur` is the busy
    /// span (service start to completion, after any queueing on the PE).
    PeBusy {
        /// Work class.
        cost: CostKind,
        /// Operation count.
        count: u64,
    },
    /// Kernel message sent; `dur` spans send initiation to arrival.
    MsgSend {
        /// Message type.
        msg: MsgKind,
        /// Destination cluster.
        to_cluster: u32,
        /// Wire size (header + body), words.
        words: u64,
    },
    /// Kernel message decoded on the destination kernel PE.
    MsgRecv {
        /// Message type.
        msg: MsgKind,
        /// Source cluster.
        from_cluster: u32,
        /// Wire size (header + body), words.
        words: u64,
    },
    /// One stage of the remote-window protocol; `dur` is the stage cost.
    Window {
        /// Which stage.
        stage: WindowStage,
        /// The other cluster involved (owner for request/transit seen from
        /// the accessor; accessor for gather seen from the owner).
        peer_cluster: u32,
        /// Words moved or touched by this stage.
        words: u64,
    },
    /// Heap / cluster-memory allocation.
    Alloc {
        /// Words allocated.
        words: u64,
        /// Words in use after the allocation.
        in_use: u64,
    },
    /// Heap / cluster-memory free.
    Free {
        /// Words freed.
        words: u64,
        /// Words in use after the free.
        in_use: u64,
    },
    /// A message occupied network links; `dur` is first-word-out to
    /// last-word-in.
    LinkTransfer {
        /// Destination cluster.
        to_cluster: u32,
        /// Payload words.
        words: u64,
        /// Packets after segmentation.
        packets: u32,
    },
    /// Task lifecycle transition.
    Task {
        /// Kernel task id.
        task: u32,
        /// The transition.
        stage: TaskStage,
    },
    /// Application-level command span (console sessions), `task` = sequence
    /// number of the command.
    AppCommand {
        /// Command sequence number within the session.
        seq: u32,
    },
    /// A network link died or degraded.
    LinkFault {
        /// Link id in the topology's link-id scheme.
        link: u32,
        /// Slowdown factor; 0 means the link is dead.
        degrade: u32,
    },
    /// The reliable-delivery layer re-sent an unacknowledged message.
    Retransmit {
        /// Message type.
        msg: MsgKind,
        /// Destination cluster.
        to_cluster: u32,
        /// Attempt number (1 = first retransmit).
        attempt: u32,
    },
    /// A message exhausted its retransmit budget and was dead-lettered.
    DeadLetter {
        /// Message type.
        msg: MsgKind,
        /// Destination cluster.
        to_cluster: u32,
    },
    /// A transiently failed PE rejoined the free pool.
    PeRecover,
    /// A network link was restored to full health (revived and/or
    /// un-degraded); detoured routes snap back to the primary path.
    LinkRecover {
        /// Link id in the topology's link-id scheme.
        link: u32,
    },
    /// A cluster-memory bank failed, shrinking the heap arena.
    MemFault {
        /// Words removed from the arena.
        words: u64,
        /// Words of live allocations invalidated by the failure.
        lost: u64,
    },
    /// A budgeted run was aborted by its supervisor. `cause` is the abort
    /// cause code (0 cycles, 1 events, 2 wall deadline, 3 cancelled).
    RunAbort {
        /// Abort cause code.
        cause: u8,
    },
}

/// One recorded event.
///
/// `phase` is assigned by the recorder (the interned id of the scenario
/// phase current at record time); instrumentation sites leave it 0.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// Simulated cycle the event starts at.
    pub at: Cycles,
    /// Span length in cycles; 0 for instantaneous events.
    pub dur: Cycles,
    /// Cluster id, or [`NO_CLUSTER`].
    pub cluster: u32,
    /// PE index within the cluster, or [`NO_PE`].
    pub pe: u32,
    /// Interned phase id (stamped by the recorder).
    pub phase: u16,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// An instantaneous event.
    pub fn instant(at: Cycles, cluster: u32, pe: u32, kind: EventKind) -> Self {
        TraceEvent {
            at,
            dur: 0,
            cluster,
            pe,
            phase: 0,
            kind,
        }
    }

    /// A span `[at, at + dur)`.
    pub fn span(at: Cycles, dur: Cycles, cluster: u32, pe: u32, kind: EventKind) -> Self {
        TraceEvent {
            at,
            dur,
            cluster,
            pe,
            phase: 0,
            kind,
        }
    }

    /// Short display name of the event kind.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            EventKind::DesSchedule { .. } => "des_schedule",
            EventKind::DesDispatch { .. } => "des_dispatch",
            EventKind::PeBusy { cost, .. } => cost.name(),
            EventKind::MsgSend { msg, .. } => msg.name(),
            EventKind::MsgRecv { .. } => "msg_recv",
            EventKind::Window { stage, .. } => stage.name(),
            EventKind::Alloc { .. } => "alloc",
            EventKind::Free { .. } => "free",
            EventKind::LinkTransfer { .. } => "link_transfer",
            EventKind::Task { stage, .. } => stage.name(),
            EventKind::AppCommand { .. } => "command",
            EventKind::LinkFault { .. } => "link_fault",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::DeadLetter { .. } => "dead_letter",
            EventKind::PeRecover => "pe_recover",
            EventKind::LinkRecover { .. } => "link_recover",
            EventKind::MemFault { .. } => "mem_fault",
            EventKind::RunAbort { .. } => "run_abort",
        }
    }

    /// Append a fixed-width little-endian encoding to `out`.
    ///
    /// The encoding is a pure function of the event, so two runs recording
    /// the same events produce byte-identical streams — the property the
    /// trace determinism test checks.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at.to_le_bytes());
        out.extend_from_slice(&self.dur.to_le_bytes());
        out.extend_from_slice(&self.cluster.to_le_bytes());
        out.extend_from_slice(&self.pe.to_le_bytes());
        out.extend_from_slice(&self.phase.to_le_bytes());
        let (tag, a, b, c): (u8, u64, u64, u64) = match self.kind {
            EventKind::DesSchedule {
                queue_depth,
                events_processed,
            } => (0, queue_depth as u64, events_processed, 0),
            EventKind::DesDispatch {
                queue_depth,
                events_processed,
            } => (1, queue_depth as u64, events_processed, 0),
            EventKind::PeBusy { cost, count } => (2, cost.code() as u64, count, 0),
            EventKind::MsgSend {
                msg,
                to_cluster,
                words,
            } => (3, msg.code() as u64, to_cluster as u64, words),
            EventKind::MsgRecv {
                msg,
                from_cluster,
                words,
            } => (4, msg.code() as u64, from_cluster as u64, words),
            EventKind::Window {
                stage,
                peer_cluster,
                words,
            } => (5, stage.index() as u64, peer_cluster as u64, words),
            EventKind::Alloc { words, in_use } => (6, words, in_use, 0),
            EventKind::Free { words, in_use } => (7, words, in_use, 0),
            EventKind::LinkTransfer {
                to_cluster,
                words,
                packets,
            } => (8, to_cluster as u64, words, packets as u64),
            EventKind::Task { task, stage } => (9, task as u64, stage.code() as u64, 0),
            EventKind::AppCommand { seq } => (10, seq as u64, 0, 0),
            EventKind::LinkFault { link, degrade } => (11, link as u64, degrade as u64, 0),
            EventKind::Retransmit {
                msg,
                to_cluster,
                attempt,
            } => (12, msg.code() as u64, to_cluster as u64, attempt as u64),
            EventKind::DeadLetter { msg, to_cluster } => {
                (13, msg.code() as u64, to_cluster as u64, 0)
            }
            EventKind::PeRecover => (14, 0, 0, 0),
            EventKind::MemFault { words, lost } => (15, words, lost, 0),
            EventKind::LinkRecover { link } => (16, link as u64, 0, 0),
            EventKind::RunAbort { cause } => (17, cause as u64, 0, 0),
        };
        out.push(tag);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_stable_and_distinguishes_events() {
        let a = TraceEvent::span(
            10,
            5,
            1,
            2,
            EventKind::PeBusy {
                cost: CostKind::Flop,
                count: 3,
            },
        );
        let b = TraceEvent::span(
            10,
            5,
            1,
            2,
            EventKind::PeBusy {
                cost: CostKind::IntOp,
                count: 3,
            },
        );
        let mut ea = Vec::new();
        let mut ea2 = Vec::new();
        let mut eb = Vec::new();
        a.encode_into(&mut ea);
        a.encode_into(&mut ea2);
        b.encode_into(&mut eb);
        assert_eq!(ea, ea2);
        assert_ne!(ea, eb);
        assert_eq!(ea.len(), 8 + 8 + 4 + 4 + 2 + 1 + 24);
    }

    #[test]
    fn names_cover_all_message_kinds() {
        let all = [
            MsgKind::InitiateTask,
            MsgKind::PauseNotify,
            MsgKind::Resume,
            MsgKind::TerminateNotify,
            MsgKind::RemoteCall,
            MsgKind::RemoteReturn,
            MsgKind::LoadCode,
        ];
        let names: std::collections::BTreeSet<_> = all.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 7, "distinct names for the 7 paper messages");
    }
}
