//! Exporters: Chrome `trace_event` JSON and a plain-text per-phase table.
//!
//! The JSON loads in `chrome://tracing` and Perfetto. Mapping:
//! - **pid** = cluster id (process-name metadata labels it `cluster N`);
//!   machine-level events (no cluster) use [`SIM_PID`], scenario phase
//!   spans use [`PHASE_PID`].
//! - **tid** = PE index within the cluster; cluster-level activity
//!   (kernel protocol, network, heap) rides the [`CONTROL_TID`] lane.
//! - **ts/dur** are simulated cycles, exported 1 cycle = 1 µs.
//!
//! Only activity that is serialized by the model becomes `X` (complete)
//! spans — PE busy spans, scenario phases, console commands — so spans on
//! a lane always nest. Messages, window stages, heap ops, and transfers
//! are instant events carrying their duration in `args`.

use crate::event::{EventKind, TraceEvent, NO_CLUSTER, NO_PE};
use crate::sink::RingRecorder;

/// `pid` for machine-level events not tied to a cluster (DES queue).
pub const SIM_PID: u32 = 1_000_000;

/// `pid` for scenario phase spans.
pub const PHASE_PID: u32 = 1_000_001;

/// `tid` for cluster-level (non-PE) activity within a cluster `pid`.
pub const CONTROL_TID: u32 = 999;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pid_of(ev: &TraceEvent) -> u32 {
    if ev.cluster == NO_CLUSTER {
        SIM_PID
    } else {
        ev.cluster
    }
}

fn tid_of(ev: &TraceEvent) -> u32 {
    if ev.cluster == NO_CLUSTER {
        0
    } else if ev.pe == NO_PE {
        CONTROL_TID
    } else {
        ev.pe
    }
}

fn args_of(ev: &TraceEvent) -> String {
    match ev.kind {
        EventKind::DesSchedule {
            queue_depth,
            events_processed,
        }
        | EventKind::DesDispatch {
            queue_depth,
            events_processed,
        } => {
            format!("{{\"queue_depth\":{queue_depth},\"events_processed\":{events_processed}}}")
        }
        EventKind::PeBusy { count, .. } => format!("{{\"count\":{count}}}"),
        EventKind::MsgSend {
            to_cluster, words, ..
        } => {
            format!(
                "{{\"to_cluster\":{to_cluster},\"words\":{words},\"dur\":{}}}",
                ev.dur
            )
        }
        EventKind::MsgRecv {
            from_cluster,
            words,
            ..
        } => {
            format!("{{\"from_cluster\":{from_cluster},\"words\":{words}}}")
        }
        EventKind::Window {
            peer_cluster,
            words,
            ..
        } => {
            format!(
                "{{\"peer_cluster\":{peer_cluster},\"words\":{words},\"dur\":{}}}",
                ev.dur
            )
        }
        EventKind::Alloc { words, in_use } | EventKind::Free { words, in_use } => {
            format!("{{\"words\":{words},\"in_use\":{in_use}}}")
        }
        EventKind::LinkTransfer {
            to_cluster,
            words,
            packets,
        } => {
            format!(
                "{{\"to_cluster\":{to_cluster},\"words\":{words},\"packets\":{packets},\"dur\":{}}}",
                ev.dur
            )
        }
        EventKind::Task { task, .. } => format!("{{\"task\":{task}}}"),
        EventKind::AppCommand { seq } => format!("{{\"seq\":{seq}}}"),
        EventKind::LinkFault { link, degrade } => {
            format!("{{\"link\":{link},\"degrade\":{degrade}}}")
        }
        EventKind::Retransmit {
            to_cluster,
            attempt,
            ..
        } => {
            format!("{{\"to_cluster\":{to_cluster},\"attempt\":{attempt}}}")
        }
        EventKind::DeadLetter { to_cluster, .. } => {
            format!("{{\"to_cluster\":{to_cluster}}}")
        }
        EventKind::PeRecover => "{}".to_string(),
        EventKind::LinkRecover { link } => format!("{{\"link\":{link}}}"),
        EventKind::MemFault { words, lost } => {
            format!("{{\"words\":{words},\"lost\":{lost}}}")
        }
        EventKind::RunAbort { cause } => format!("{{\"cause\":{cause}}}"),
    }
}

fn cat_of(ev: &TraceEvent) -> &'static str {
    match ev.kind {
        EventKind::DesSchedule { .. } | EventKind::DesDispatch { .. } => "des",
        EventKind::PeBusy { .. } => "pe",
        EventKind::MsgSend { .. } | EventKind::MsgRecv { .. } => "kernel_msg",
        EventKind::Window { .. } => "window",
        EventKind::Alloc { .. } | EventKind::Free { .. } => "heap",
        EventKind::LinkTransfer { .. } => "network",
        EventKind::Task { .. } => "task",
        EventKind::AppCommand { .. } => "command",
        EventKind::LinkFault { .. }
        | EventKind::LinkRecover { .. }
        | EventKind::PeRecover
        | EventKind::MemFault { .. }
        | EventKind::RunAbort { .. } => "fault",
        EventKind::Retransmit { .. } | EventKind::DeadLetter { .. } => "reliable",
    }
}

/// Whether the event renders as a complete (`X`) span. Only families whose
/// spans are serialized per lane qualify, so spans always nest.
fn is_span(ev: &TraceEvent) -> bool {
    matches!(
        ev.kind,
        EventKind::PeBusy { .. } | EventKind::AppCommand { .. }
    )
}

/// Render the recorder as Chrome `trace_event` JSON.
pub fn trace_json(rec: &RingRecorder) -> String {
    let mut events = Vec::new();

    // Process/thread name metadata.
    let mut seen: Vec<(u32, u32)> = Vec::new();
    for ev in rec.events() {
        let (pid, tid) = (pid_of(ev), tid_of(ev));
        if !seen.contains(&(pid, tid)) {
            seen.push((pid, tid));
        }
    }
    seen.sort_unstable();
    let mut named_pids: Vec<u32> = Vec::new();
    for &(pid, tid) in &seen {
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            let pname = if pid == SIM_PID {
                "simulator".to_string()
            } else {
                format!("cluster {pid}")
            };
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ));
        }
        let tname = if pid == SIM_PID {
            "event queue".to_string()
        } else if tid == CONTROL_TID {
            "kernel/net".to_string()
        } else {
            format!("pe {tid}")
        };
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{tname}\"}}}}"
        ));
    }
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PHASE_PID},\"tid\":0,\
         \"args\":{{\"name\":\"scenario phases\"}}}}"
    ));

    // Scenario phase spans, from entry marks.
    let marks = rec.phase_marks();
    for (i, &(phase, start)) in marks.iter().enumerate() {
        let end = marks
            .get(i + 1)
            .map(|&(_, t)| t)
            .unwrap_or(rec.high_water());
        let dur = end.saturating_sub(start);
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\
             \"pid\":{PHASE_PID},\"tid\":0,\"args\":{{}}}}",
            esc(rec.phase_name(phase)),
        ));
    }

    // The recorded events.
    for ev in rec.events() {
        let (pid, tid) = (pid_of(ev), tid_of(ev));
        let (name, cat, args) = (ev.name(), cat_of(ev), args_of(ev));
        if is_span(ev) {
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                ev.at, ev.dur,
            ));
        } else {
            events.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                ev.at,
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}},\
         \"traceEvents\":[\n{}\n]}}\n",
        rec.dropped(),
        events.join(",\n"),
    )
}

/// Render per-phase counters and histograms as a plain-text table.
pub fn phase_table(rec: &RingRecorder) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>9} {:>12} {:>7} {:>10} {:>9} {:>8} {:>7} {:>7} {:>24}\n",
        "phase",
        "events",
        "busy_cyc",
        "msgs",
        "msg_words",
        "transfers",
        "packets",
        "allocs",
        "frees",
        "window r/g/t/s words"
    ));
    let metrics = rec.metrics();
    for (id, pm) in metrics.phases.iter().enumerate() {
        if pm.events == 0 {
            continue;
        }
        let w = pm.window_words;
        out.push_str(&format!(
            "{:<12} {:>9} {:>12} {:>7} {:>10} {:>9} {:>8} {:>7} {:>7} {:>24}\n",
            rec.phase_name(id as u16),
            pm.events,
            pm.busy_cycles,
            pm.msgs_sent,
            pm.msg_words,
            pm.transfers,
            pm.packets,
            pm.allocs,
            pm.frees,
            format!("{}/{}/{}/{}", w[0], w[1], w[2], w[3]),
        ));
        if pm.des_dispatches > 0 {
            out.push_str(&format!(
                "  des: dispatches {} events_processed {} span {} cyc throughput {} evt/Mcyc\n",
                pm.des_dispatches,
                pm.des_events_processed,
                pm.des_last_dispatch_at
                    .saturating_sub(pm.des_first_dispatch_at),
                pm.des_throughput_per_mcycle(),
            ));
        }
        if pm.any_fault_activity() {
            out.push_str(&format!(
                "  faults: link {} link_recover {} mem {} pe_recover {} | retransmits {} dead_letters {} stale {}\n",
                pm.link_faults,
                pm.link_recoveries,
                pm.mem_faults,
                pm.pe_recoveries,
                pm.retransmits,
                pm.dead_letters,
                pm.stale_tasks,
            ));
        }
    }
    out.push('\n');
    for (id, pm) in metrics.phases.iter().enumerate() {
        if pm.events == 0 {
            continue;
        }
        out.push_str(&format!(
            "phase {} histograms (log2 buckets)\n",
            rec.phase_name(id as u16)
        ));
        out.push_str(&format!(
            "  msg_size_words : {} (mean {}, max {})\n",
            pm.msg_size.summarize(),
            pm.msg_size.mean(),
            pm.msg_size.max
        ));
        out.push_str(&format!(
            "  queue_depth    : {} (mean {}, max {})\n",
            pm.queue_depth.summarize(),
            pm.queue_depth.mean(),
            pm.queue_depth.max
        ));
        out.push_str(&format!(
            "  task_latency   : {} (mean {}, max {})\n",
            pm.task_latency.summarize(),
            pm.task_latency.mean(),
            pm.task_latency.max
        ));
    }
    if rec.dropped() > 0 {
        out.push_str(&format!(
            "\n({} events dropped by the ring buffer; counters above are exact)\n",
            rec.dropped()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CostKind, MsgKind, TaskStage, WindowStage};
    use crate::sink::TraceHandle;

    fn sample_recorder() -> crate::sink::SharedRecorder {
        let (h, rec) = TraceHandle::ring(1024);
        h.begin_phase("assembly", 0);
        h.emit(|| {
            TraceEvent::span(
                0,
                40,
                0,
                1,
                EventKind::PeBusy {
                    cost: CostKind::Flop,
                    count: 10,
                },
            )
        });
        h.emit(|| {
            TraceEvent::span(
                40,
                8,
                0,
                1,
                EventKind::PeBusy {
                    cost: CostKind::MemWord,
                    count: 4,
                },
            )
        });
        h.emit(|| {
            TraceEvent::span(
                5,
                60,
                0,
                NO_PE,
                EventKind::MsgSend {
                    msg: MsgKind::InitiateTask,
                    to_cluster: 1,
                    words: 12,
                },
            )
        });
        h.emit(|| {
            TraceEvent::instant(
                65,
                1,
                NO_PE,
                EventKind::MsgRecv {
                    msg: MsgKind::InitiateTask,
                    from_cluster: 0,
                    words: 12,
                },
            )
        });
        h.begin_phase("solve", 100);
        h.emit(|| {
            TraceEvent::span(
                100,
                20,
                1,
                NO_PE,
                EventKind::Window {
                    stage: WindowStage::Transit,
                    peer_cluster: 0,
                    words: 64,
                },
            )
        });
        h.emit(|| {
            TraceEvent::instant(
                100,
                NO_CLUSTER,
                NO_PE,
                EventKind::DesSchedule {
                    queue_depth: 3,
                    events_processed: 7,
                },
            )
        });
        h.emit(|| {
            TraceEvent::instant(
                110,
                0,
                NO_PE,
                EventKind::Task {
                    task: 1,
                    stage: TaskStage::Created,
                },
            )
        });
        h.emit(|| {
            TraceEvent::instant(
                150,
                0,
                NO_PE,
                EventKind::Task {
                    task: 1,
                    stage: TaskStage::Completed,
                },
            )
        });
        rec
    }

    #[test]
    fn json_has_expected_records_and_mapping() {
        let rec = sample_recorder();
        let json = trace_json(&rec.lock().unwrap());
        // Families present.
        assert!(json.contains("\"cat\":\"pe\""));
        assert!(json.contains("initiate_task"));
        assert!(json.contains("\"cat\":\"window\""));
        assert!(json.contains("\"name\":\"transit\""));
        // PE busy span on cluster 0 / pe 1.
        assert!(json.contains("\"ph\":\"X\",\"ts\":0,\"dur\":40,\"pid\":0,\"tid\":1"));
        // Cluster-level message on the control lane.
        assert!(json.contains(&format!("\"tid\":{CONTROL_TID}")));
        // DES event on the simulator pseudo-process.
        assert!(json.contains(&format!("\"pid\":{SIM_PID}")));
        // Phase spans.
        assert!(json.contains("\"name\":\"assembly\",\"cat\":\"phase\""));
        assert!(json.contains("\"name\":\"solve\",\"cat\":\"phase\""));
    }

    #[test]
    fn phase_table_lists_both_phases() {
        let rec = sample_recorder();
        let table = phase_table(&rec.lock().unwrap());
        assert!(table.contains("assembly"));
        assert!(table.contains("solve"));
        assert!(table.contains("msg_size_words"));
        assert!(table.contains("task_latency"));
    }

    #[test]
    fn exporter_handles_empty_recorder() {
        let rec = crate::sink::RingRecorder::new(4);
        let json = trace_json(&rec);
        assert!(json.contains("traceEvents"));
        let table = phase_table(&rec);
        assert!(table.contains("phase"));
    }
}
