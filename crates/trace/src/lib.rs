//! # fem2-trace — event-level tracing for the simulated plane
//!
//! The FEM-2 design method rests on *measuring* storage, processing, and
//! communication patterns of candidate organizations. Aggregate counters
//! (`fem2-machine::stats`) say how much; this crate records **when, where,
//! and in what order**: every DES dispatch, PE busy span, kernel message,
//! window-protocol stage, heap operation, and network transfer, stamped
//! with simulated cycle time, cluster/PE, and scenario phase.
//!
//! Design points:
//! - **Observation only.** Instrumentation never changes simulated state or
//!   timing; with the sink disabled the simulated plane is bit-identical to
//!   an uninstrumented build.
//! - **Zero cost when off.** Instrumented code holds a [`TraceHandle`]; a
//!   disabled handle is a `None` and [`TraceHandle::emit`] never builds the
//!   event (the closure is not called).
//! - **Bounded memory.** [`RingRecorder`] keeps the newest `capacity`
//!   events and counts what it dropped; per-phase metrics are aggregated
//!   from *every* event, including dropped ones.
//! - **Deterministic.** Recording is in simulation order; identical runs
//!   produce byte-identical [`RingRecorder::encode`] streams.
//!
//! Export with [`chrome::trace_json`] (loadable in `chrome://tracing` /
//! Perfetto) or [`chrome::phase_table`] (plain text).

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod report;
pub mod sink;

pub use event::{
    CostKind, EventKind, MsgKind, TaskStage, TraceEvent, WindowStage, NO_CLUSTER, NO_PE,
};
pub use metrics::{Histogram, Metrics, PhaseMetrics};
pub use report::DegradationReport;
pub use sink::{NoopSink, RingRecorder, SharedRecorder, TraceHandle, TraceSink};

/// Simulated time in machine cycles (mirrors `fem2_machine::Cycles`; this
/// crate sits below the machine crate so it declares its own alias).
pub type Cycles = u64;
