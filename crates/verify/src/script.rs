//! The scenario script: a static, analyzable description of what a scenario
//! will ask of the kernel and the machine.
//!
//! Scenarios in this repository are Rust code, so they cannot be analyzed
//! directly; instead each scenario *lowers* to a [`ScenarioScript`] — a flat
//! list of [`Op`]s in global program order, one textual line per op. The
//! text is the scenario description the analyzer's diagnostics span into
//! (line N of the rendered description is op N), so a finding always points
//! at a concrete, human-readable step.
//!
//! Per-task program order is the order of a task's ops within the global
//! list; ops of different tasks are concurrent unless a rendezvous orders
//! them.

use crate::diag::Span;
use fem2_kernel::MessageKind;

/// One step of a scenario, as seen by the kernel/machine layers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Initiate `replications` replications of `task` on `cluster`.
    Initiate {
        /// Task name (unique per script).
        task: String,
        /// Hosting cluster.
        cluster: u32,
        /// Replication count K of the initiate message.
        replications: u32,
    },
    /// `task` pauses itself (parent notified).
    Pause {
        /// The pausing task.
        task: String,
    },
    /// Resume the paused `task`.
    Resume {
        /// The resumed task.
        task: String,
    },
    /// `task` terminates (parent notified, activation record reclaimed).
    Terminate {
        /// The terminating task.
        task: String,
    },
    /// A raw kernel message from `from` to `to` (for protocol checking of
    /// arbitrary sequences; the lowered scenarios use the typed ops above).
    Message {
        /// Sending task.
        from: String,
        /// Subject/recipient task.
        to: String,
        /// Which of the seven kinds.
        kind: MessageKind,
    },
    /// `caller` issues a remote procedure call with correlation `call_id`.
    RemoteCall {
        /// The calling task.
        caller: String,
        /// Correlation id; must be returned exactly once.
        call_id: u64,
    },
    /// The remote procedure return matching `call_id`.
    RemoteReturn {
        /// Correlation id of the matching call.
        call_id: u64,
    },
    /// `task` opens window `window` over some array.
    WindowOpen {
        /// The opening task.
        task: String,
        /// Window name.
        window: String,
    },
    /// `from` sends `words` through `window` to `to` and blocks until the
    /// matching receive (rendezvous).
    WindowSend {
        /// Sending task.
        from: String,
        /// Receiving task.
        to: String,
        /// Window name.
        window: String,
        /// Payload size.
        words: u64,
    },
    /// `task` receives from `from` through `window`, blocking until the
    /// matching send (rendezvous).
    WindowRecv {
        /// Receiving task.
        task: String,
        /// Expected sender.
        from: String,
        /// Window name.
        window: String,
    },
    /// `task` closes `window`.
    WindowClose {
        /// The closing task.
        task: String,
        /// Window name.
        window: String,
    },
    /// Allocate `words` words of heap on `cluster` (live for the rest of
    /// the scenario: the analyzer's worst-case storage model).
    Alloc {
        /// Hosting cluster.
        cluster: u32,
        /// Demand in words.
        words: u64,
        /// What the storage is for (named in diagnostics).
        what: String,
    },
}

impl Op {
    /// The one-line scenario-description rendering of this op.
    pub fn describe(&self) -> String {
        match self {
            Op::Initiate {
                task,
                cluster,
                replications,
            } => format!("initiate {task} x{replications} on cluster {cluster}"),
            Op::Pause { task } => format!("pause {task}"),
            Op::Resume { task } => format!("resume {task}"),
            Op::Terminate { task } => format!("terminate {task}"),
            Op::Message { from, to, kind } => {
                format!("message '{}' from {from} to {to}", kind.name())
            }
            Op::RemoteCall { caller, call_id } => {
                format!("remote call #{call_id} by {caller}")
            }
            Op::RemoteReturn { call_id } => format!("remote return #{call_id}"),
            Op::WindowOpen { task, window } => format!("{task} opens window {window}"),
            Op::WindowSend {
                from,
                to,
                window,
                words,
            } => format!("window {window}: {from} -> {to} ({words} words)"),
            Op::WindowRecv { task, from, window } => {
                format!("window {window}: {task} <- {from}")
            }
            Op::WindowClose { task, window } => format!("{task} closes window {window}"),
            Op::Alloc {
                cluster,
                words,
                what,
            } => format!("alloc {words} words on cluster {cluster} for {what}"),
        }
    }
}

/// A lowered scenario: named ops plus the description text diagnostics
/// span into.
#[derive(Clone, Debug)]
pub struct ScenarioScript {
    /// Scenario name (shown in diagnostics as the "file" of a span).
    pub name: String,
    ops: Vec<Op>,
}

impl ScenarioScript {
    /// An empty script named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioScript {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Append an op; returns the span of its description line.
    pub fn push(&mut self, op: Op) -> Span {
        self.ops.push(op);
        Span::line(self.ops.len() as u32)
    }

    /// The ops with their spans, in global program order.
    pub fn ops(&self) -> impl Iterator<Item = (&Op, Span)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (op, Span::line(i as u32 + 1)))
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The scenario description: one line per op, in order. Line `n`
    /// (1-based) describes op `n`, which is what diagnostic spans index.
    pub fn source(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.describe());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_match_source_lines() {
        let mut s = ScenarioScript::new("t");
        let a = s.push(Op::Initiate {
            task: "w0".into(),
            cluster: 0,
            replications: 1,
        });
        let b = s.push(Op::Terminate { task: "w0".into() });
        assert_eq!(a, Span::line(1));
        assert_eq!(b, Span::line(2));
        let src = s.source();
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(lines[0], "initiate w0 x1 on cluster 0");
        assert_eq!(lines[1], "terminate w0");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn describe_covers_all_ops() {
        let ops = [
            Op::Pause { task: "a".into() },
            Op::Resume { task: "a".into() },
            Op::Message {
                from: "a".into(),
                to: "b".into(),
                kind: MessageKind::Resume,
            },
            Op::RemoteCall {
                caller: "a".into(),
                call_id: 7,
            },
            Op::RemoteReturn { call_id: 7 },
            Op::WindowOpen {
                task: "a".into(),
                window: "halo".into(),
            },
            Op::WindowSend {
                from: "a".into(),
                to: "b".into(),
                window: "halo".into(),
                words: 8,
            },
            Op::WindowRecv {
                task: "b".into(),
                from: "a".into(),
                window: "halo".into(),
            },
            Op::WindowClose {
                task: "a".into(),
                window: "halo".into(),
            },
            Op::Alloc {
                cluster: 1,
                words: 100,
                what: "vectors".into(),
            },
        ];
        for op in ops {
            assert!(!op.describe().is_empty());
        }
    }
}
