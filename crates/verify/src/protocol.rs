//! Pass 1: kernel-protocol conformance.
//!
//! Replays a scenario script's message sequence through the
//! [`ProtocolAutomaton`] exported by `fem2-kernel`, tracking one
//! [`ProtocolState`] per task: Initiate/Terminate pairing, pause/resume
//! legality, no traffic to (or from) tasks that were never initiated, and
//! the window open → exchange → close ordering. Remote call/return
//! correlation ids must pair exactly.

use crate::diag::{Report, Severity, Span};
use crate::script::{Op, ScenarioScript};
use fem2_kernel::{MessageKind, ProtocolAutomaton, ProtocolState};
use fem2_machine::MachineConfig;
use std::collections::BTreeMap;

const PASS: &str = "protocol";

/// Run the protocol pass, appending findings to `report`.
pub fn check(script: &ScenarioScript, machine: &MachineConfig, report: &mut Report) {
    let mut states: BTreeMap<&str, ProtocolState> = BTreeMap::new();
    // (task, window) -> line the window was opened on.
    let mut windows: BTreeMap<(&str, &str), Span> = BTreeMap::new();
    // call_id -> (caller, line) of the open remote call.
    let mut calls: BTreeMap<u64, (&str, Span)> = BTreeMap::new();

    for (op, span) in script.ops() {
        match op {
            Op::Initiate {
                task,
                cluster,
                replications,
            } => {
                if *cluster >= machine.clusters {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!(
                            "task '{task}' initiated on cluster {cluster}, but the machine \
                             has only clusters 0..{}",
                            machine.clusters
                        ),
                    );
                }
                if *replications == 0 {
                    report.push(
                        Severity::Warning,
                        PASS,
                        Some(span),
                        format!("task '{task}' initiated with zero replications"),
                    );
                }
                step(&mut states, task, MessageKind::InitiateTask, span, report);
            }
            Op::Pause { task } => step(&mut states, task, MessageKind::PauseNotify, span, report),
            Op::Resume { task } => step(&mut states, task, MessageKind::Resume, span, report),
            Op::Terminate { task } => {
                step(
                    &mut states,
                    task,
                    MessageKind::TerminateNotify,
                    span,
                    report,
                );
            }
            Op::Message { from, to, kind } => {
                require_active(&states, from, "send a message", span, report);
                step(&mut states, to, *kind, span, report);
            }
            Op::RemoteCall { caller, call_id } => {
                step(&mut states, caller, MessageKind::RemoteCall, span, report);
                if let Some((prev_caller, prev)) = calls.insert(*call_id, (caller, span)) {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!(
                            "remote call #{call_id} by '{caller}' reuses a correlation id \
                             still open from '{prev_caller}' (line {})",
                            prev.line
                        ),
                    );
                }
            }
            Op::RemoteReturn { call_id } => match calls.remove(call_id) {
                Some((caller, _)) => {
                    step(&mut states, caller, MessageKind::RemoteReturn, span, report);
                }
                None => report.push(
                    Severity::Error,
                    PASS,
                    Some(span),
                    format!("remote return #{call_id} has no matching open remote call"),
                ),
            },
            Op::WindowOpen { task, window } => {
                require_active(&states, task, "open a window", span, report);
                if windows.insert((task, window), span).is_some() {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!("task '{task}' opens window '{window}' twice"),
                    );
                }
            }
            Op::WindowSend {
                from, to, window, ..
            } => {
                require_active(&states, from, "exchange through a window", span, report);
                require_open(&windows, from, window, span, report);
                require_open(&windows, to, window, span, report);
            }
            Op::WindowRecv { task, from, window } => {
                require_active(&states, task, "exchange through a window", span, report);
                require_open(&windows, task, window, span, report);
                require_open(&windows, from, window, span, report);
            }
            Op::WindowClose { task, window } => {
                if windows.remove(&(task.as_str(), window.as_str())).is_none() {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!("task '{task}' closes window '{window}' it never opened"),
                    );
                }
            }
            Op::Alloc { .. } => {}
        }
    }

    // End-of-scenario hygiene.
    for ((task, window), span) in &windows {
        report.push(
            Severity::Warning,
            PASS,
            Some(*span),
            format!("task '{task}' leaves window '{window}' open at scenario end"),
        );
    }
    for (call_id, (caller, span)) in &calls {
        report.push(
            Severity::Warning,
            PASS,
            Some(*span),
            format!("remote call #{call_id} by '{caller}' is never returned"),
        );
    }
    for (task, st) in &states {
        if matches!(st, ProtocolState::Active | ProtocolState::Paused) {
            report.push(
                Severity::Warning,
                PASS,
                None,
                format!("task '{task}' is never terminated (ends the scenario {st})"),
            );
        }
    }
}

/// Apply `kind` to the automaton state of `task`, reporting a violation as
/// an error that names the task.
fn step<'s>(
    states: &mut BTreeMap<&'s str, ProtocolState>,
    task: &'s str,
    kind: MessageKind,
    span: Span,
    report: &mut Report,
) {
    let cur = states
        .get(task)
        .copied()
        .unwrap_or(ProtocolState::Uninitiated);
    match ProtocolAutomaton::step(cur, kind) {
        Ok(next) => {
            states.insert(task, next);
        }
        Err(v) => report.push(
            Severity::Error,
            PASS,
            Some(span),
            format!("task '{task}': {v}"),
        ),
    }
}

fn require_active(
    states: &BTreeMap<&str, ProtocolState>,
    task: &str,
    what: &str,
    span: Span,
    report: &mut Report,
) {
    let st = states
        .get(task)
        .copied()
        .unwrap_or(ProtocolState::Uninitiated);
    if st != ProtocolState::Active {
        report.push(
            Severity::Error,
            PASS,
            Some(span),
            format!("task '{task}' cannot {what} while {st}"),
        );
    }
}

fn require_open(
    windows: &BTreeMap<(&str, &str), Span>,
    task: &str,
    window: &str,
    span: Span,
    report: &mut Report,
) {
    if !windows.contains_key(&(task, window)) {
        report.push(
            Severity::Error,
            PASS,
            Some(span),
            format!("task '{task}' exchanges through window '{window}' without opening it"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &ScenarioScript) -> Report {
        let mut r = Report::new(script.name.clone(), script.source());
        check(script, &MachineConfig::fem2_default(), &mut r);
        r
    }

    fn msgs(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.message.as_str()).collect()
    }

    #[test]
    fn clean_lifecycle_with_window() {
        let mut s = ScenarioScript::new("ok");
        for t in ["a", "b"] {
            s.push(Op::Initiate {
                task: t.into(),
                cluster: 0,
                replications: 1,
            });
        }
        for t in ["a", "b"] {
            s.push(Op::WindowOpen {
                task: t.into(),
                window: "w".into(),
            });
        }
        s.push(Op::WindowSend {
            from: "a".into(),
            to: "b".into(),
            window: "w".into(),
            words: 4,
        });
        s.push(Op::WindowRecv {
            task: "b".into(),
            from: "a".into(),
            window: "w".into(),
        });
        for t in ["a", "b"] {
            s.push(Op::WindowClose {
                task: t.into(),
                window: "w".into(),
            });
            s.push(Op::Terminate { task: t.into() });
        }
        let r = run(&s);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn send_to_never_initiated_task_is_an_error() {
        let mut s = ScenarioScript::new("ghost");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::Message {
            from: "a".into(),
            to: "ghost".into(),
            kind: MessageKind::Resume,
        });
        s.push(Op::Terminate { task: "a".into() });
        let r = run(&s);
        assert_eq!(r.error_count(), 1);
        assert!(msgs(&r)[0].contains("ghost"), "{}", r.render());
        assert!(msgs(&r)[0].contains("uninitiated"));
    }

    #[test]
    fn double_initiate_and_double_terminate_rejected() {
        let mut s = ScenarioScript::new("dup");
        for _ in 0..2 {
            s.push(Op::Initiate {
                task: "a".into(),
                cluster: 0,
                replications: 1,
            });
        }
        for _ in 0..2 {
            s.push(Op::Terminate { task: "a".into() });
        }
        let r = run(&s);
        assert_eq!(r.error_count(), 2, "{}", r.render());
    }

    #[test]
    fn pause_resume_ordering_enforced() {
        let mut s = ScenarioScript::new("pr");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::Resume { task: "a".into() }); // not paused: error
        s.push(Op::Pause { task: "a".into() });
        s.push(Op::Resume { task: "a".into() }); // fine
        s.push(Op::Terminate { task: "a".into() });
        let r = run(&s);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.diagnostics[0].span, Some(Span::line(2)));
    }

    #[test]
    fn window_ordering_enforced() {
        let mut s = ScenarioScript::new("w");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::WindowSend {
            from: "a".into(),
            to: "a".into(),
            window: "w".into(),
            words: 1,
        }); // never opened (2 findings: from + to are the same closed window)
        s.push(Op::WindowClose {
            task: "a".into(),
            window: "w".into(),
        }); // never opened
        s.push(Op::Terminate { task: "a".into() });
        let r = run(&s);
        assert!(r.error_count() >= 2, "{}", r.render());
    }

    #[test]
    fn unterminated_task_and_open_window_warn() {
        let mut s = ScenarioScript::new("leak");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::WindowOpen {
            task: "a".into(),
            window: "w".into(),
        });
        let r = run(&s);
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.warning_count(), 2, "{}", r.render());
    }

    #[test]
    fn remote_call_return_pairing() {
        let mut s = ScenarioScript::new("rpc");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::RemoteCall {
            caller: "a".into(),
            call_id: 1,
        });
        s.push(Op::RemoteReturn { call_id: 1 });
        s.push(Op::RemoteReturn { call_id: 9 }); // no matching call
        s.push(Op::RemoteCall {
            caller: "a".into(),
            call_id: 2,
        }); // never returned
        s.push(Op::Terminate { task: "a".into() });
        let r = run(&s);
        assert_eq!(r.error_count(), 1, "{}", r.render());
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn initiate_on_missing_cluster_rejected() {
        let mut s = ScenarioScript::new("cluster");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 99,
            replications: 1,
        });
        s.push(Op::Terminate { task: "a".into() });
        let r = run(&s);
        assert_eq!(r.error_count(), 1);
        assert!(msgs(&r)[0].contains("cluster 99"));
    }
}
