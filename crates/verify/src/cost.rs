//! Static cost bounds: an abstract interpreter over [`ScenarioScript`].
//!
//! The paper's premise is that FEM-2 programs are analyzable *before* they
//! touch the machine. The other passes prove safety; this one proves
//! **cost**: walking the lowered script (spawn fan-out, window-exchange
//! structure, per-cluster allocations) against the [`MachineConfig`] yields
//! sound upper bounds on total DES events, simulated cycles, kernel
//! messages, peak per-cluster memory words, and per-link traffic — or an
//! explicit [`CostVerdict::Unbounded`] when no bound can be established
//! (remote calls carry no static work profile).
//!
//! # Soundness argument (the serial-sum bound)
//!
//! Simulated time only advances at primitive barriers, and after every
//! primitive completes, every resource's busy-until time (PE `free_at`,
//! link free time) is at most the new `now`: each hop's link occupancy ends
//! no later than the packet's arrival, barriers take the max over arrivals,
//! and every charged PE completes at or before the barrier. Therefore the
//! makespan of a run is at most the **serial sum** of each primitive's
//! isolated duration, and an isolated duration is at most the sum of its
//! component charges (`count × unit cost`) plus its transmit bounds. The
//! modeler accumulates exactly that serial sum, so
//! `CostReport::sim_cycles >= elapsed` for every run the script describes.
//!
//! The transmit bound for a `words`-word cross-cluster message is
//! `p·occ + h·(occ + latency)` where `p` is the packet count, `occ` the
//! worst per-packet link occupancy, and `h` the topology's worst-case hop
//! count *including fault detours* (crossbar re-routes via an intermediate
//! cluster, two hops). Pipelined store-and-forward delivery finishes in
//! `h·(occ + latency) + (p−1)·occ`, which the bound dominates; link
//! contention is covered by the serial sum (every competitor's occupancy is
//! part of its own isolated duration). The bound assumes healthy links:
//! a degraded link multiplies occupancy dynamically, which no static
//! analysis of the script can see (fault plans are runtime inputs), and
//! none of the statically admitted job kinds carry one.

use std::collections::BTreeMap;

use fem2_machine::{CostClass, MachineConfig, Network, Topology};
use serde::json::Value;
use serde::Serialize;

use crate::diag::Span;
use crate::script::{Op, ScenarioScript};

/// Parameters the script itself cannot carry: how many sweeps the window
/// traffic repeats. The lowered solve script describes one red-black sweep;
/// a CG run performs one per iteration, capped by `max_iters`.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Multiplier applied to window-exchange ops (`WindowSend`,
    /// `WindowRecv`); control ops (spawn, open/close, terminate) are
    /// charged once.
    pub sweep_iters: u64,
}

impl CostParams {
    /// One sweep: bound the script exactly as written.
    pub fn single_sweep() -> Self {
        CostParams { sweep_iters: 1 }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::single_sweep()
    }
}

/// Whether a bound could be established.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CostVerdict {
    /// Every reported number is a sound upper bound.
    Bounded,
    /// No bound exists; the numbers cover only the boundable prefix.
    Unbounded {
        /// Why the analysis gave up (names the op).
        reason: String,
        /// The script line of the offending op.
        span: Span,
    },
}

/// Upper bounds attributed to one named phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseCost {
    /// Phase name (`spawn`, `exchange`, `solve`, …).
    pub name: String,
    /// Simulated-cycle bound for work charged in this phase.
    pub sim_cycles: u64,
    /// DES-event bound for this phase.
    pub des_events: u64,
    /// Kernel-message bound for this phase.
    pub messages: u64,
}

/// Sound upper bounds for one scenario, with per-phase breakdown.
#[derive(Clone, Debug)]
pub struct CostReport {
    /// What was analyzed.
    pub subject: String,
    /// Per-phase bounds, in first-charge order.
    pub phases: Vec<PhaseCost>,
    /// Total DES-event bound (two events — schedule and dispatch — per
    /// kernel message; plate runs drive the machine directly and process
    /// zero DES events, so this is trivially sound for them).
    pub des_events: u64,
    /// Total simulated-cycle bound (the serial sum).
    pub sim_cycles: u64,
    /// Total kernel-message bound.
    pub messages: u64,
    /// Peak per-cluster memory bound: the busiest cluster's words.
    pub peak_memory_words: u64,
    /// Per-cluster memory words, indexed by cluster.
    pub cluster_memory_words: Vec<u64>,
    /// Payload words per link that carries traffic, as `(link id, words)`
    /// pairs sorted by link id. Sparse: the link id space can be quadratic
    /// in clusters (crossbar), but a script touches O(routes used) links.
    pub link_traffic_words: Vec<(usize, u64)>,
    /// Size of the link id space (dense rendering upper bound).
    pub link_id_space: usize,
    /// Whether the bounds are sound or the script defeated the analysis.
    pub verdict: CostVerdict,
}

impl CostReport {
    /// True when every number is a sound upper bound.
    pub fn is_bounded(&self) -> bool {
        self.verdict == CostVerdict::Bounded
    }

    /// The most-trafficked link, as `(link id, payload words)`.
    pub fn busiest_link(&self) -> Option<(usize, u64)> {
        self.link_traffic_words
            .iter()
            .copied()
            .max_by_key(|&(i, w)| (w, std::cmp::Reverse(i)))
            .filter(|&(_, w)| w > 0)
    }

    /// Render the cost table, deterministic for golden comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("cost bounds for {}:\n", self.subject));
        out.push_str(&format!(
            "  {:<12} {:>14} {:>12} {:>12}\n",
            "phase", "sim cycles", "DES events", "messages"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<12} {:>14} {:>12} {:>12}\n",
                p.name, p.sim_cycles, p.des_events, p.messages
            ));
        }
        out.push_str(&format!(
            "  {:<12} {:>14} {:>12} {:>12}\n",
            "TOTAL", self.sim_cycles, self.des_events, self.messages
        ));
        let busiest = match self.busiest_link() {
            Some((id, words)) => format!(", busiest link #{id} carries <= {words} words"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  peak memory <= {} words on the busiest cluster{busiest}\n",
            self.peak_memory_words
        ));
        match &self.verdict {
            CostVerdict::Bounded => out.push_str("  verdict: BOUNDED\n"),
            CostVerdict::Unbounded { reason, span } => {
                out.push_str(&format!(
                    "  verdict: UNBOUNDED at line {}: {reason}\n",
                    span.line
                ));
            }
        }
        out
    }
}

impl Serialize for CostReport {
    fn to_value(&self) -> Value {
        let verdict = match &self.verdict {
            CostVerdict::Bounded => Value::Str("bounded".into()),
            CostVerdict::Unbounded { reason, span } => Value::Obj(vec![
                ("unbounded".into(), Value::Str(reason.clone())),
                ("line".into(), Value::UInt(u64::from(span.line))),
            ]),
        };
        Value::Obj(vec![
            ("subject".into(), Value::Str(self.subject.clone())),
            ("des_events".into(), Value::UInt(self.des_events)),
            ("sim_cycles".into(), Value::UInt(self.sim_cycles)),
            ("messages".into(), Value::UInt(self.messages)),
            (
                "peak_memory_words".into(),
                Value::UInt(self.peak_memory_words),
            ),
            (
                "cluster_memory_words".into(),
                Value::Arr(
                    self.cluster_memory_words
                        .iter()
                        .map(|&w| Value::UInt(w))
                        .collect(),
                ),
            ),
            (
                "link_traffic_words".into(),
                // Rendered dense over the id space so the JSON shape is
                // independent of which links happened to carry traffic.
                Value::Arr({
                    let mut dense = vec![Value::UInt(0); self.link_id_space];
                    for &(link, w) in &self.link_traffic_words {
                        dense[link] = Value::UInt(w);
                    }
                    dense
                }),
            ),
            (
                "phases".into(),
                Value::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("name".into(), Value::Str(p.name.clone())),
                                ("sim_cycles".into(), Value::UInt(p.sim_cycles)),
                                ("des_events".into(), Value::UInt(p.des_events)),
                                ("messages".into(), Value::UInt(p.messages)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("verdict".into(), verdict),
        ])
    }
}

/// Accumulates the serial-sum bound. Layers above the script IR (the plate
/// lowering in `fem2-core`) use this directly to add numeric work the
/// script does not carry (elementwise profiles, reduction trees).
pub struct CostModeler {
    subject: String,
    machine: MachineConfig,
    network: Network,
    worst_hops: u64,
    phases: Vec<PhaseCost>,
    current: usize,
    cluster_memory_words: Vec<u64>,
    link_traffic_words: BTreeMap<usize, u64>,
    link_id_space: usize,
    verdict: CostVerdict,
}

impl CostModeler {
    /// A fresh modeler for `subject` on `machine`, with an empty first
    /// phase named `total`.
    pub fn new(subject: impl Into<String>, machine: &MachineConfig) -> Self {
        let network = Network::new(machine);
        let links = network.link_count();
        let mut m = CostModeler {
            subject: subject.into(),
            machine: machine.clone(),
            network,
            worst_hops: worst_hops(machine),
            phases: Vec::new(),
            current: 0,
            cluster_memory_words: vec![0; machine.clusters as usize],
            link_traffic_words: BTreeMap::new(),
            link_id_space: links,
            verdict: CostVerdict::Bounded,
        };
        m.begin_phase("total");
        m
    }

    /// Switch to (or create) the named phase; subsequent charges land
    /// there. A `total` phase that was never charged is dropped on finish.
    pub fn begin_phase(&mut self, name: &str) {
        if let Some(i) = self.phases.iter().position(|p| p.name == name) {
            self.current = i;
            return;
        }
        self.phases.push(PhaseCost {
            name: name.into(),
            sim_cycles: 0,
            des_events: 0,
            messages: 0,
        });
        self.current = self.phases.len() - 1;
    }

    /// Charge `count` units of `class` (serialized PE work).
    pub fn charge(&mut self, class: CostClass, count: u64) {
        let unit = class.cycles(&self.machine.cost);
        self.phases[self.current].sim_cycles = self.phases[self.current]
            .sim_cycles
            .saturating_add(unit.saturating_mul(count));
    }

    /// Bound one `words`-word transfer from cluster `from` to cluster
    /// `to`. Same-cluster transfers cost only the copy cycles; cross-
    /// cluster transfers add a kernel message, two DES events, the worst-
    /// case transmit duration, and payload attribution along the healthy
    /// route.
    pub fn message(&mut self, from: u32, to: u32, words: u64) {
        self.message_times(from, to, words, 1);
    }

    /// [`message`](Self::message), `count` times.
    pub fn message_times(&mut self, from: u32, to: u32, words: u64, count: u64) {
        if count == 0 {
            return;
        }
        if from == to {
            let wpc = u64::from(self.machine.words_per_cycle.max(1));
            let copy = words.div_ceil(wpc).max(1);
            let p = &mut self.phases[self.current];
            p.sim_cycles = p.sim_cycles.saturating_add(copy.saturating_mul(count));
            return;
        }
        let tx = self.tx_bound(words);
        let p = &mut self.phases[self.current];
        p.sim_cycles = p.sim_cycles.saturating_add(tx.saturating_mul(count));
        p.messages = p.messages.saturating_add(count);
        p.des_events = p.des_events.saturating_add(2 * count);
        if let Some(route) = self.network.route_links(from, to) {
            for link in route {
                let w = self.link_traffic_words.entry(link).or_insert(0);
                *w = w.saturating_add(words.saturating_mul(count));
            }
        }
    }

    /// Worst-case cycles for one isolated `words`-word cross-cluster
    /// transmit: packet count times worst occupancy, plus per-hop
    /// store-and-forward latency over the topology's worst route.
    pub fn tx_bound(&self, words: u64) -> u64 {
        let mpw = self.machine.max_packet_words.max(1);
        let wpc = u64::from(self.machine.words_per_cycle.max(1));
        let packets = words.div_ceil(mpw).max(1);
        let chunk = words.min(mpw);
        let occ = (chunk + self.machine.header_words).div_ceil(wpc).max(1);
        packets.saturating_mul(occ).saturating_add(
            self.worst_hops
                .saturating_mul(occ + self.machine.link_latency),
        )
    }

    /// Record `words` allocated on `cluster` (allocations are exact, not
    /// bounds: the lowering emits one `Alloc` per actual arena claim).
    pub fn alloc(&mut self, cluster: u32, words: u64) {
        if let Some(w) = self.cluster_memory_words.get_mut(cluster as usize) {
            *w = w.saturating_add(words);
        }
    }

    /// Give up: record why no bound exists. First reason wins.
    pub fn unbounded(&mut self, reason: impl Into<String>, span: Span) {
        if self.verdict == CostVerdict::Bounded {
            self.verdict = CostVerdict::Unbounded {
                reason: reason.into(),
                span,
            };
        }
    }

    /// Walk a script, charging each op under `params`. Window-exchange
    /// traffic multiplies by `params.sweep_iters`; everything else is
    /// charged once. Tasks map to clusters via their `Initiate`; traffic
    /// involving a never-initiated task is bounded as worst-case
    /// cross-cluster (the protocol pass reports the script error).
    pub fn walk_script(&mut self, script: &ScenarioScript, params: &CostParams) {
        let sweeps = params.sweep_iters.max(1);
        let mut cluster_of: BTreeMap<&str, u32> = BTreeMap::new();
        let far = self.machine.clusters.saturating_sub(1);
        for (op, span) in script.ops() {
            match op {
                Op::Initiate {
                    task,
                    cluster,
                    replications,
                } => {
                    cluster_of.insert(task.as_str(), *cluster);
                    self.begin_phase("spawn");
                    let reps = u64::from((*replications).max(1));
                    // Coordinator formats the initiate, the wire carries an
                    // 8-word activation record, the hosting kernel PE
                    // creates the task.
                    self.charge(CostClass::MsgSend, reps);
                    self.message_times(0, *cluster, 8, reps);
                    self.charge(CostClass::TaskCreate, reps);
                }
                Op::Pause { task } | Op::Resume { task } | Op::Terminate { task } => {
                    let c = cluster_of.get(task.as_str()).copied().unwrap_or(far);
                    self.begin_phase("control");
                    self.charge(CostClass::MsgSend, 1);
                    self.message(0, c, 1);
                    self.charge(CostClass::MsgDispatch, 1);
                    self.charge(CostClass::ContextSwitch, 1);
                }
                Op::Message { from, to, .. } => {
                    let cf = cluster_of.get(from.as_str()).copied().unwrap_or(0);
                    let ct = cluster_of.get(to.as_str()).copied().unwrap_or(far);
                    self.begin_phase("control");
                    self.charge(CostClass::MsgSend, 1);
                    self.message(cf, ct, 1);
                    self.charge(CostClass::MsgDispatch, 1);
                }
                Op::RemoteCall { caller, .. } => {
                    self.unbounded(
                        format!(
                            "remote call by '{caller}' carries no static work profile; \
                             the callee's cost cannot be bounded from the script"
                        ),
                        span,
                    );
                }
                Op::RemoteReturn { .. } => {
                    self.unbounded(
                        "remote return resumes a caller whose remaining cost \
                         cannot be bounded from the script",
                        span,
                    );
                }
                Op::WindowOpen { .. } | Op::WindowClose { .. } => {
                    self.begin_phase("exchange");
                    self.charge(CostClass::IntOp, 1);
                }
                Op::WindowSend {
                    from, to, words, ..
                } => {
                    let cf = cluster_of.get(from.as_str()).copied().unwrap_or(0);
                    let ct = cluster_of.get(to.as_str()).copied().unwrap_or(far);
                    self.begin_phase("exchange");
                    if cf == ct {
                        // Same-cluster exchange is a shared-memory copy on
                        // the hosting cluster's kernel PE.
                        self.charge(CostClass::MemWord, words.saturating_mul(sweeps));
                    } else {
                        self.charge(CostClass::MsgSend, sweeps);
                        self.message_times(cf, ct, *words, sweeps);
                    }
                }
                Op::WindowRecv { .. } => {
                    self.begin_phase("exchange");
                    self.charge(CostClass::MsgDispatch, sweeps);
                }
                Op::Alloc { cluster, words, .. } => {
                    self.alloc(*cluster, *words);
                }
            }
        }
    }

    /// Consume the modeler into its report.
    pub fn finish(mut self) -> CostReport {
        self.phases.retain(|p| {
            p.name != "total" || p.sim_cycles > 0 || p.des_events > 0 || p.messages > 0
        });
        let totals = self.phases.iter().fold((0u64, 0u64, 0u64), |acc, p| {
            (
                acc.0.saturating_add(p.sim_cycles),
                acc.1.saturating_add(p.des_events),
                acc.2.saturating_add(p.messages),
            )
        });
        CostReport {
            subject: self.subject,
            peak_memory_words: self.cluster_memory_words.iter().copied().max().unwrap_or(0),
            cluster_memory_words: self.cluster_memory_words,
            link_traffic_words: self.link_traffic_words.into_iter().collect(),
            link_id_space: self.link_id_space,
            sim_cycles: totals.0,
            des_events: totals.1,
            messages: totals.2,
            verdict: self.verdict,
            phases: self.phases,
        }
    }
}

/// Worst-case hop count between any two clusters, fault detours included:
/// the crossbar's repair path routes via an intermediate cluster (2 hops),
/// the ring may have to walk the long way around, a mesh XY detour adds at
/// most one extra row and column, a torus detour may take the long way
/// around each dimension (`d - 1` hops per dimension of extent `d`), and a
/// fat-tree detour through an alternate core is still the full up-down
/// path (4 hops when more than one pod exists).
fn worst_hops(cfg: &MachineConfig) -> u64 {
    let n = u64::from(cfg.clusters.max(1));
    match &cfg.topology {
        Topology::Bus => 1,
        Topology::Crossbar => {
            if n >= 3 {
                2
            } else {
                1
            }
        }
        Topology::Ring => (n - 1).max(1),
        Topology::Mesh2D { width } => {
            let w = u64::from((*width).max(1));
            let h = n.div_ceil(w);
            (w - 1) + (h - 1) + 2
        }
        Topology::Torus { dims } => dims
            .iter()
            .map(|&d| u64::from(d.max(1)) - 1)
            .sum::<u64>()
            .max(1),
        Topology::FatTree { radix } => {
            if n > u64::from((*radix).max(1)) {
                4
            } else {
                2
            }
        }
    }
}

/// The cost pass: bound `script` on `machine` under `params`.
pub fn check_cost(
    script: &ScenarioScript,
    machine: &MachineConfig,
    params: &CostParams,
) -> CostReport {
    let mut m = CostModeler::new(script.name.clone(), machine);
    m.walk_script(script, params);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_kernel::MessageKind;

    fn machine() -> MachineConfig {
        MachineConfig::fem2_default()
    }

    #[test]
    fn empty_script_is_bounded_and_free() {
        let r = check_cost(
            &ScenarioScript::new("empty"),
            &machine(),
            &CostParams::single_sweep(),
        );
        assert!(r.is_bounded());
        assert_eq!(r.sim_cycles, 0);
        assert_eq!(r.des_events, 0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.peak_memory_words, 0);
        assert!(r.busiest_link().is_none());
    }

    #[test]
    fn remote_call_defeats_the_bound() {
        let mut s = ScenarioScript::new("rpc");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 0,
            replications: 1,
        });
        s.push(Op::RemoteCall {
            caller: "a".into(),
            call_id: 1,
        });
        let r = check_cost(&s, &machine(), &CostParams::single_sweep());
        assert!(!r.is_bounded());
        let CostVerdict::Unbounded { reason, span } = &r.verdict else {
            panic!("expected unbounded");
        };
        assert!(reason.contains("'a'"), "{reason}");
        assert_eq!(span.line, 2);
        assert!(r.render().contains("UNBOUNDED at line 2"));
    }

    #[test]
    fn sweeps_multiply_window_traffic_only() {
        let mut s = ScenarioScript::new("sweepy");
        for (t, c) in [("a", 0u32), ("b", 1u32)] {
            s.push(Op::Initiate {
                task: t.into(),
                cluster: c,
                replications: 1,
            });
            s.push(Op::WindowOpen {
                task: t.into(),
                window: "w".into(),
            });
        }
        s.push(Op::WindowSend {
            from: "a".into(),
            to: "b".into(),
            window: "w".into(),
            words: 16,
        });
        s.push(Op::WindowRecv {
            task: "b".into(),
            from: "a".into(),
            window: "w".into(),
        });
        let one = check_cost(&s, &machine(), &CostParams { sweep_iters: 1 });
        let ten = check_cost(&s, &machine(), &CostParams { sweep_iters: 10 });
        assert_eq!(ten.messages, one.messages + 9, "send repeats per sweep");
        let spawn = |r: &CostReport| {
            r.phases
                .iter()
                .find(|p| p.name == "spawn")
                .expect("spawn phase")
                .clone()
        };
        assert_eq!(spawn(&one), spawn(&ten), "spawn is charged once");
        assert!(ten.sim_cycles > one.sim_cycles);
    }

    #[test]
    fn same_cluster_exchange_is_not_a_message() {
        let mut s = ScenarioScript::new("local");
        for t in ["a", "b"] {
            s.push(Op::Initiate {
                task: t.into(),
                cluster: 0,
                replications: 1,
            });
        }
        s.push(Op::WindowSend {
            from: "a".into(),
            to: "b".into(),
            window: "w".into(),
            words: 64,
        });
        let r = check_cost(&s, &machine(), &CostParams::single_sweep());
        assert_eq!(r.messages, 0);
        assert_eq!(r.des_events, 0);
        assert!(r.sim_cycles > 0, "the copy still costs cycles");
    }

    #[test]
    fn allocations_accumulate_per_cluster() {
        let mut s = ScenarioScript::new("mem");
        s.push(Op::Alloc {
            cluster: 1,
            words: 100,
            what: "x".into(),
        });
        s.push(Op::Alloc {
            cluster: 1,
            words: 50,
            what: "y".into(),
        });
        s.push(Op::Alloc {
            cluster: 2,
            words: 120,
            what: "z".into(),
        });
        let r = check_cost(&s, &machine(), &CostParams::single_sweep());
        assert_eq!(r.cluster_memory_words, vec![0, 150, 120, 0]);
        assert_eq!(r.peak_memory_words, 150);
    }

    #[test]
    fn cross_cluster_traffic_lands_on_links() {
        let mut s = ScenarioScript::new("wire");
        for (t, c) in [("a", 0u32), ("b", 3u32)] {
            s.push(Op::Initiate {
                task: t.into(),
                cluster: c,
                replications: 1,
            });
        }
        s.push(Op::Message {
            from: "a".into(),
            to: "b".into(),
            kind: MessageKind::Resume,
        });
        let r = check_cost(&s, &machine(), &CostParams::single_sweep());
        // Spawn of b (0->3, 8 words) plus the 1-word data message.
        assert!(r.messages >= 2);
        assert_eq!(r.des_events, 2 * r.messages);
        let (link, words) = r.busiest_link().expect("traffic was attributed");
        assert!(words >= 8, "spawn payload on link {link}: {words}");
    }

    #[test]
    fn tx_bound_dominates_the_network_estimate() {
        let cfg = machine();
        let net = Network::new(&cfg);
        let m = CostModeler::new("tx", &cfg);
        for words in [0u64, 1, 7, 255, 256, 257, 10_000] {
            for to in 1..cfg.clusters {
                assert!(
                    m.tx_bound(words) >= net.estimate(0, to, words),
                    "tx_bound({words}) must dominate the contention-free estimate"
                );
            }
        }
    }

    #[test]
    fn tx_bound_dominates_on_torus_and_fat_tree() {
        let mut torus = machine();
        torus.clusters = 64;
        torus.topology = Topology::Torus {
            dims: vec![4, 4, 4],
        };
        let mut fat = machine();
        fat.clusters = 64;
        fat.topology = Topology::FatTree { radix: 8 };
        for cfg in [torus, fat] {
            cfg.validate().unwrap();
            let net = Network::new(&cfg);
            let m = CostModeler::new("tx", &cfg);
            for words in [0u64, 1, 255, 257, 10_000] {
                for to in 1..cfg.clusters {
                    assert!(
                        m.tx_bound(words) >= net.estimate(0, to, words),
                        "tx_bound({words}) must dominate on {}",
                        cfg.topology.name()
                    );
                }
            }
        }
    }

    #[test]
    fn link_attribution_is_sparse_in_the_id_space() {
        // A crossbar's link id space is quadratic, but a script that uses
        // two routes must record exactly the links those routes touch.
        let mut cfg = machine();
        cfg.clusters = 64;
        cfg.topology = Topology::Crossbar;
        cfg.validate().unwrap();
        let mut s = ScenarioScript::new("sparse");
        for (t, c) in [("a", 0u32), ("b", 63u32)] {
            s.push(Op::Initiate {
                task: t.into(),
                cluster: c,
                replications: 1,
            });
        }
        let r = check_cost(&s, &cfg, &CostParams::single_sweep());
        assert_eq!(r.link_id_space, 64 * 64);
        assert_eq!(
            r.link_traffic_words.len(),
            1,
            "one cross-cluster route touches one crossbar link: {:?}",
            r.link_traffic_words
        );
        assert_eq!(r.busiest_link(), Some((63, 8)));
    }

    #[test]
    fn report_json_shape() {
        let mut s = ScenarioScript::new("json");
        s.push(Op::Initiate {
            task: "a".into(),
            cluster: 1,
            replications: 1,
        });
        let v = check_cost(&s, &machine(), &CostParams::single_sweep()).to_value();
        assert_eq!(v.get_field("subject").unwrap(), &Value::Str("json".into()));
        assert_eq!(
            v.get_field("verdict").unwrap(),
            &Value::Str("bounded".into())
        );
        for key in ["des_events", "sim_cycles", "messages", "peak_memory_words"] {
            assert!(
                matches!(v.get_field(key), Ok(Value::UInt(_))),
                "{key} must serialize as an unsigned integer"
            );
        }
    }
}
