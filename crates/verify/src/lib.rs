//! # fem2-verify — static analysis of FEM-2 scenarios and layer grammars
//!
//! The paper specifies each virtual-machine layer formally precisely so the
//! specifications can be *analyzed*, not just admired. This crate is that
//! analyzer: it consumes a scenario lowered to a [`ScenarioScript`] (plus
//! the [`MachineConfig`] it will run on) or a layer's H-graph [`Grammar`],
//! and emits structured diagnostics — [`Severity::Error`] /
//! [`Severity::Warning`] / [`Severity::Info`] with source spans into the
//! scenario description — **without executing the simulation**.
//!
//! Four passes:
//!
//! 1. [`protocol`] — kernel-protocol conformance: every message sequence is
//!    replayed through the finite automaton `fem2-kernel` exports next to
//!    its message types (initiate/terminate pairing, pause/resume legality,
//!    no traffic to never-initiated tasks, window open → exchange → close);
//! 2. [`deadlock`] — static wait-for analysis of window exchanges: sends
//!    and receives are matched pairwise, unmatched halves are reported, and
//!    a cycle in the rendezvous event graph is reported with the shortest
//!    counterexample wait chain;
//! 3. [`storage`] — worst-case per-cluster heap and activation-record
//!    demand versus the configured arena (the `MemFault` class, caught
//!    before any cycle is simulated);
//! 4. [`grammar`] — well-formedness of the layer grammars themselves:
//!    unreachable nonterminals, duplicate (unused) productions, and
//!    non-productive rules.
//!
//! ```
//! use fem2_verify::{check_script, lower::{solve_script, SolveShape}};
//! use fem2_machine::MachineConfig;
//!
//! let machine = MachineConfig::fem2_default();
//! let script = solve_script(
//!     "plate 32x32",
//!     &machine,
//!     machine.total_workers(),
//!     SolveShape { unknowns: 32 * 32, vectors: 5, halo_words: 32 },
//! );
//! let report = check_script(&script, &machine);
//! assert!(report.is_clean(), "{report}");
//! ```

#![forbid(unsafe_code)]

pub mod cost;
pub mod deadlock;
pub mod diag;
pub mod grammar;
pub mod lower;
pub mod protocol;
pub mod script;
pub mod storage;

pub use cost::{check_cost, CostModeler, CostParams, CostReport, CostVerdict, PhaseCost};
pub use diag::{Diagnostic, Report, Severity, Span};
pub use script::{Op, ScenarioScript};

use fem2_hgraph::Grammar;
use fem2_machine::MachineConfig;

/// Run passes 1–3 (protocol, deadlock, storage) over one scenario script.
pub fn check_script(script: &ScenarioScript, machine: &MachineConfig) -> Report {
    let mut report = Report::new(script.name.clone(), script.source());
    protocol::check(script, machine, &mut report);
    deadlock::check(script, &mut report);
    storage::check(script, machine, &mut report);
    report
}

/// Run pass 4 (well-formedness) over one grammar.
pub fn check_grammar(grammar: &Grammar) -> Report {
    grammar::check(grammar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_hgraph::{AtomKind, Shape};

    #[test]
    fn check_script_runs_all_three_passes() {
        let mut s = ScenarioScript::new("multi");
        // Protocol error (never initiated), deadlock error (self-exchange
        // needs an open window too), storage error (oversized alloc).
        s.push(Op::WindowSend {
            from: "a".into(),
            to: "a".into(),
            window: "w".into(),
            words: 1,
        });
        s.push(Op::Alloc {
            cluster: 0,
            words: u64::MAX / 2,
            what: "the moon".into(),
        });
        let r = check_script(&s, &MachineConfig::fem2_default());
        let passes: std::collections::BTreeSet<&str> =
            r.diagnostics.iter().map(|d| d.pass).collect();
        assert!(passes.contains("protocol"), "{}", r.render());
        assert!(passes.contains("deadlock"), "{}", r.render());
        assert!(passes.contains("storage"), "{}", r.render());
    }

    #[test]
    fn check_grammar_delegates_to_pass_four() {
        let g = Grammar::builder("g")
            .rule("Root", Shape::node(AtomKind::Int))
            .rule("Orphan", Shape::node(AtomKind::Sym))
            .build()
            .unwrap();
        let r = check_grammar(&g);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn empty_script_is_clean() {
        let s = ScenarioScript::new("empty");
        let r = check_script(&s, &MachineConfig::fem2_default());
        assert!(r.is_clean(), "{}", r.render());
    }
}
