//! Pass 3: worst-case storage bounds per cluster.
//!
//! Sums, per cluster, everything the script can have live at once — every
//! [`Op::Alloc`] (the analyzer's model is worst-case: nothing is freed
//! before scenario end) plus one activation record per initiated task
//! replication — and compares the total against the configured arena
//! ([`MachineConfig::memory_per_cluster`]). Exceeding the arena is the
//! static form of the `MemFault` class the fault plane injects dynamically:
//! caught here, it costs zero simulated cycles.

use crate::diag::{Report, Severity, Span};
use crate::script::{Op, ScenarioScript};
use fem2_machine::MachineConfig;
use std::collections::BTreeMap;

const PASS: &str = "storage";

/// Modeled size of one task activation record, in words: header, saved
/// registers, and the argument area the kernel copies in on initiate.
pub const ACTIVATION_RECORD_WORDS: u64 = 64;

/// Fraction of the arena above which demand draws a warning (7/8).
const WARN_NUM: u64 = 7;
const WARN_DEN: u64 = 8;

/// Run the storage pass, appending findings to `report`.
pub fn check(script: &ScenarioScript, machine: &MachineConfig, report: &mut Report) {
    if let Err(e) = machine.validate() {
        report.push(
            Severity::Error,
            PASS,
            None,
            format!("machine configuration is invalid: {e}"),
        );
        return;
    }

    // Per-cluster demand, plus the span of the largest single contribution
    // so the diagnostic has a line to point at.
    let mut demand: BTreeMap<u32, u64> = BTreeMap::new();
    let mut biggest: BTreeMap<u32, (u64, Span, String)> = BTreeMap::new();
    let mut note = |cluster: u32, words: u64, span: Span, what: String| {
        *demand.entry(cluster).or_insert(0) += words;
        let e = biggest.entry(cluster).or_insert((0, span, String::new()));
        if words > e.0 {
            *e = (words, span, what);
        }
    };

    for (op, span) in script.ops() {
        match op {
            Op::Alloc {
                cluster,
                words,
                what,
            } => {
                if *cluster >= machine.clusters {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!(
                            "allocation of {words} words targets cluster {cluster}, but the \
                             machine has only clusters 0..{}",
                            machine.clusters
                        ),
                    );
                } else {
                    note(*cluster, *words, span, what.clone());
                }
            }
            Op::Initiate {
                task,
                cluster,
                replications,
            } if *cluster < machine.clusters => {
                note(
                    *cluster,
                    ACTIVATION_RECORD_WORDS * u64::from(*replications),
                    span,
                    format!("activation record of '{task}'"),
                );
            }
            _ => {}
        }
    }

    let capacity = machine.memory_per_cluster;
    let mut worst: Option<(u32, u64)> = None;
    for (&cluster, &words) in &demand {
        if worst.is_none_or(|(_, w)| words > w) {
            worst = Some((cluster, words));
        }
        if words > capacity {
            let (big_words, big_span, big_what) = &biggest[&cluster];
            report.push(
                Severity::Error,
                PASS,
                Some(*big_span),
                format!(
                    "cluster {cluster} worst-case demand is {words} words but its arena \
                     is {capacity} words ({} words over); largest contribution is \
                     {big_words} words for {big_what}",
                    words - capacity
                ),
            );
        } else if u128::from(words) * u128::from(WARN_DEN)
            > u128::from(capacity) * u128::from(WARN_NUM)
        {
            report.push(
                Severity::Warning,
                PASS,
                None,
                format!(
                    "cluster {cluster} worst-case demand {words} words exceeds {}/{} of \
                     its {capacity}-word arena",
                    WARN_NUM, WARN_DEN
                ),
            );
        }
    }
    if let Some((cluster, words)) = worst {
        report.push(
            Severity::Info,
            PASS,
            None,
            format!(
                "worst-case storage: {words} of {capacity} words on cluster {cluster} \
                 ({}%)",
                u128::from(words) * 100 / u128::from(capacity.max(1))
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &ScenarioScript, machine: &MachineConfig) -> Report {
        let mut r = Report::new(script.name.clone(), script.source());
        check(script, machine, &mut r);
        r
    }

    fn alloc(s: &mut ScenarioScript, cluster: u32, words: u64) {
        s.push(Op::Alloc {
            cluster,
            words,
            what: "test block".into(),
        });
    }

    #[test]
    fn within_bounds_is_clean_with_info() {
        let m = MachineConfig::fem2_default();
        let mut s = ScenarioScript::new("small");
        alloc(&mut s, 0, 1000);
        let r = run(&s, &m);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.diagnostics.len(), 1, "one info summary");
        assert_eq!(r.diagnostics[0].severity, Severity::Info);
    }

    #[test]
    fn over_arena_is_an_error_naming_the_cluster() {
        let m = MachineConfig::fem1_style(4); // 64 Kwords per cluster
        let mut s = ScenarioScript::new("big");
        alloc(&mut s, 2, (64 << 10) + 1);
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 1, "{}", r.render());
        let msg = &r.diagnostics[0].message;
        assert!(msg.contains("cluster 2"), "{msg}");
        assert!(msg.contains("1 words over"), "{msg}");
        assert!(msg.contains("test block"), "actionable: {msg}");
    }

    #[test]
    fn demand_accumulates_across_allocs_and_activation_records() {
        let m = MachineConfig::fem1_style(1); // one 64 Kword cluster
        let cap = 64 << 10;
        let mut s = ScenarioScript::new("sum");
        s.push(Op::Initiate {
            task: "t".into(),
            cluster: 0,
            replications: 1,
        });
        alloc(&mut s, 0, cap - ACTIVATION_RECORD_WORDS); // exactly fills
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 0, "{}", r.render());
        let mut s2 = ScenarioScript::new("sum2");
        s2.push(Op::Initiate {
            task: "t".into(),
            cluster: 0,
            replications: 1,
        });
        alloc(&mut s2, 0, cap - ACTIVATION_RECORD_WORDS + 1); // one word over
        let r2 = run(&s2, &m);
        assert_eq!(r2.error_count(), 1, "{}", r2.render());
    }

    #[test]
    fn near_capacity_warns() {
        let m = MachineConfig::fem1_style(1);
        let cap: u64 = 64 << 10;
        let mut s = ScenarioScript::new("near");
        alloc(&mut s, 0, cap * 15 / 16); // 93%: above 7/8, below capacity
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.warning_count(), 1, "{}", r.render());
    }

    #[test]
    fn invalid_machine_reported() {
        let mut m = MachineConfig::fem2_default();
        m.clusters = 0;
        let s = ScenarioScript::new("cfg");
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics[0].message.contains("invalid"));
    }

    #[test]
    fn alloc_on_missing_cluster_rejected() {
        let m = MachineConfig::fem2_default();
        let mut s = ScenarioScript::new("oob");
        alloc(&mut s, 17, 10);
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics[0].message.contains("cluster 17"));
    }

    #[test]
    fn replications_scale_activation_demand() {
        let m = MachineConfig::fem1_style(1);
        let cap: u64 = 64 << 10;
        let k = (cap / ACTIVATION_RECORD_WORDS) as u32 + 1;
        let mut s = ScenarioScript::new("many");
        s.push(Op::Initiate {
            task: "swarm".into(),
            cluster: 0,
            replications: k,
        });
        let r = run(&s, &m);
        assert_eq!(r.error_count(), 1, "{}", r.render());
        assert!(r.diagnostics[0].message.contains("swarm"));
    }
}
