//! Canonical lowering of a distributed solve to a [`ScenarioScript`].
//!
//! The plate scenarios (and the console's SOLVE commands) all share one
//! communication skeleton: a crew of tasks block-mapped over the clusters,
//! each owning a contiguous row share of the unknowns, exchanging halos
//! with its neighbours each sweep through a window. [`solve_script`]
//! produces exactly that skeleton — initiations, per-cluster worst-case
//! vector storage (mirroring `NaVm`'s row-block array distribution),
//! window open, a red-black halo exchange (even-indexed pairs first, so the
//! rendezvous order is provably acyclic), window close, terminations — so
//! the analyzer checks the same structure the runtime will execute.

use crate::script::{Op, ScenarioScript};
use fem2_machine::MachineConfig;
use fem2_navm::TaskSet;

/// The shape of a distributed solve, for lowering.
#[derive(Clone, Copy, Debug)]
pub struct SolveShape {
    /// Unknowns in the system (rows of the distributed vectors).
    pub unknowns: u64,
    /// Number of solver vectors simultaneously live (CG keeps five:
    /// b, x, r, p, Ap).
    pub vectors: u64,
    /// Words exchanged per halo (one boundary row).
    pub halo_words: u64,
}

/// Lower a `tasks`-way distributed solve on `machine` to a script.
pub fn solve_script(
    name: impl Into<String>,
    machine: &MachineConfig,
    tasks: u32,
    shape: SolveShape,
) -> ScenarioScript {
    let mut s = ScenarioScript::new(name);
    let tasks = tasks.max(1);
    let clusters = machine.clusters.max(1);
    let set = TaskSet::new(tasks, clusters);
    let task_name = |t: u32| format!("task{t}");

    // 1. Initiate the crew, one task per replication on its home cluster.
    for t in set.iter() {
        s.push(Op::Initiate {
            task: task_name(t.0),
            cluster: set.cluster_of(t),
            replications: 1,
        });
    }

    // 2. Worst-case vector storage per cluster: each task's row share times
    //    the live vector count, exactly as `NaVm` row-block-allocates.
    for c in 0..clusters {
        let rows: u64 = set
            .tasks_on(c)
            .iter()
            .map(|&t| set.share(shape.unknowns as usize, t).len() as u64)
            .sum();
        let words = rows * shape.vectors;
        if words > 0 {
            s.push(Op::Alloc {
                cluster: c,
                words,
                what: format!(
                    "{} solver vectors of {} unknowns",
                    shape.vectors, shape.unknowns
                ),
            });
        }
    }

    // 3. Halo windows between neighbouring tasks with non-empty shares.
    let has_rows = |t: u32| {
        !set.share(shape.unknowns as usize, fem2_navm::TaskHandle(t))
            .is_empty()
    };
    let mut neighbours: Vec<(u32, u32)> = Vec::new();
    for t in 0..tasks.saturating_sub(1) {
        if has_rows(t) && has_rows(t + 1) {
            neighbours.push((t, t + 1));
        }
    }
    let exchanging: Vec<u32> = {
        let mut v: Vec<u32> = neighbours.iter().flat_map(|&(a, b)| [a, b]).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &t in &exchanging {
        s.push(Op::WindowOpen {
            task: task_name(t),
            window: "halo".into(),
        });
    }
    // Red-black phasing: pairs starting at an even task, then the odd ones.
    // Within a pair, the lower task sends first and the upper replies, so
    // no task's rendezvous order can close a cycle.
    for parity in [0, 1] {
        for &(a, b) in neighbours.iter().filter(|(a, _)| a % 2 == parity) {
            s.push(Op::WindowSend {
                from: task_name(a),
                to: task_name(b),
                window: "halo".into(),
                words: shape.halo_words,
            });
            s.push(Op::WindowRecv {
                task: task_name(b),
                from: task_name(a),
                window: "halo".into(),
            });
            s.push(Op::WindowSend {
                from: task_name(b),
                to: task_name(a),
                window: "halo".into(),
                words: shape.halo_words,
            });
            s.push(Op::WindowRecv {
                task: task_name(a),
                from: task_name(b),
                window: "halo".into(),
            });
        }
    }
    for &t in &exchanging {
        s.push(Op::WindowClose {
            task: task_name(t),
            window: "halo".into(),
        });
    }

    // 4. Orderly shutdown.
    for t in set.iter() {
        s.push(Op::Terminate {
            task: task_name(t.0),
        });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_script;

    fn shape(n: u64) -> SolveShape {
        SolveShape {
            unknowns: n,
            vectors: 5,
            halo_words: 32,
        }
    }

    #[test]
    fn lowered_solve_is_clean_on_the_default_machine() {
        let m = MachineConfig::fem2_default();
        let s = solve_script("plate", &m, m.total_workers(), shape(32 * 32));
        let r = check_script(&s, &m);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn lowered_solve_is_clean_across_machines_and_sizes() {
        for m in [
            MachineConfig::fem1_style(16),
            MachineConfig::clustered(1, 8, fem2_machine::Topology::Crossbar),
            MachineConfig::clustered(8, 4, fem2_machine::Topology::Ring),
        ] {
            for n in [1u64, 9, 100, 1024] {
                let s = solve_script("sweep", &m, m.total_workers(), shape(n));
                let r = check_script(&s, &m);
                assert!(r.is_clean(), "machine {}: {}", m.describe(), r.render());
            }
        }
    }

    #[test]
    fn storage_mirrors_row_block_distribution() {
        let m = MachineConfig::fem2_default();
        let s = solve_script("alloc", &m, 8, shape(100));
        let allocs: Vec<u64> = s
            .ops()
            .filter_map(|(op, _)| match op {
                Op::Alloc { words, .. } => Some(*words),
                _ => None,
            })
            .collect();
        // 8 tasks over 4 clusters, 2 tasks each. 100 rows split 8 ways is
        // 13 rows for tasks 0..4 and 12 for tasks 4..8 (earlier tasks take
        // the remainder), so clusters get 26/26/24/24 rows, times 5 vectors.
        assert_eq!(allocs, vec![130, 130, 120, 120]);
        let total: u64 = allocs.iter().sum();
        assert_eq!(total, 100 * 5, "shares partition the unknowns exactly");
    }

    #[test]
    fn more_tasks_than_unknowns_still_clean() {
        let m = MachineConfig::fem2_default();
        let s = solve_script("tiny", &m, 28, shape(3));
        let r = check_script(&s, &m);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn oversized_problem_rejected_with_cluster_named() {
        let m = MachineConfig::fem1_style(4); // 64 Kwords per cluster
        let s = solve_script("huge", &m, 4, shape(300 * 300));
        let r = check_script(&s, &m);
        assert!(r.error_count() >= 1, "{}", r.render());
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.message.contains("cluster") && d.message.contains("arena")),
            "{}",
            r.render()
        );
    }
}
