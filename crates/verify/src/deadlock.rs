//! Pass 2: static window-exchange deadlock detection.
//!
//! Window exchanges are rendezvous: a [`Op::WindowSend`] blocks its sender
//! until the matching [`Op::WindowRecv`] runs, and vice versa. The pass
//! first matches sends with receives — the k-th send from A to B through
//! window W pairs with the k-th receive by B from A through W; leftovers
//! are *unmatched pairs*, reported as errors because the blocked task can
//! never proceed.
//!
//! Each matched pair is one rendezvous *event*. Both halves complete
//! simultaneously, so event `e` must wait for every event that precedes
//! either half in its task's program order: the pass draws an edge
//! `e1 -> e2` whenever some task participates in both with `e1` first. A
//! cycle in this event graph is a set of rendezvous all waiting on each
//! other — a guaranteed deadlock — and the diagnostic spells out the
//! shortest such cycle as a wait chain naming the tasks involved.

use crate::diag::{Report, Severity, Span};
use crate::script::{Op, ScenarioScript};
use std::collections::BTreeMap;

const PASS: &str = "deadlock";

/// One half of a rendezvous, as collected from the script.
#[derive(Clone, Debug)]
struct Half {
    /// Position in the participant's program order (index into its op list).
    seq: usize,
    span: Span,
}

/// A matched rendezvous event.
#[derive(Clone, Debug)]
struct Event {
    from: String,
    to: String,
    window: String,
    send: Half,
    recv: Half,
}

/// Run the deadlock pass, appending findings to `report`.
pub fn check(script: &ScenarioScript, report: &mut Report) {
    // (from, to, window) -> FIFO of unmatched halves.
    let mut sends: BTreeMap<(String, String, String), Vec<Half>> = BTreeMap::new();
    let mut recvs: BTreeMap<(String, String, String), Vec<Half>> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    // task -> ordered (seq, event index) participations.
    let mut participation: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();

    let bump = |task: &str, map: &mut BTreeMap<String, usize>| -> usize {
        let c = map.entry(task.to_string()).or_insert(0);
        let v = *c;
        *c += 1;
        v
    };
    let mut counters: BTreeMap<String, usize> = BTreeMap::new();

    for (op, span) in script.ops() {
        match op {
            Op::WindowSend {
                from, to, window, ..
            } => {
                let seq = bump(from, &mut counters);
                if from == to {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!(
                            "task '{from}' exchanges with itself through window '{window}': \
                             the rendezvous can never complete"
                        ),
                    );
                    continue;
                }
                let key = (from.clone(), to.clone(), window.clone());
                let half = Half { seq, span };
                if let Some(r) = recvs.get_mut(&key).and_then(pop_front) {
                    push_event(
                        &mut events,
                        &mut participation,
                        Event {
                            from: from.clone(),
                            to: to.clone(),
                            window: window.clone(),
                            send: half,
                            recv: r,
                        },
                    );
                } else {
                    sends.entry(key).or_default().push(half);
                }
            }
            Op::WindowRecv { task, from, window } => {
                let seq = bump(task, &mut counters);
                if task == from {
                    report.push(
                        Severity::Error,
                        PASS,
                        Some(span),
                        format!(
                            "task '{task}' receives from itself through window '{window}': \
                             the rendezvous can never complete"
                        ),
                    );
                    continue;
                }
                let key = (from.clone(), task.clone(), window.clone());
                let half = Half { seq, span };
                if let Some(s) = sends.get_mut(&key).and_then(pop_front) {
                    push_event(
                        &mut events,
                        &mut participation,
                        Event {
                            from: from.clone(),
                            to: task.clone(),
                            window: window.clone(),
                            send: s,
                            recv: half,
                        },
                    );
                } else {
                    recvs.entry(key).or_default().push(half);
                }
            }
            // Every other op advances its task's program order so that
            // rendezvous positions stay comparable.
            Op::Pause { task }
            | Op::Resume { task }
            | Op::Terminate { task }
            | Op::WindowOpen { task, .. }
            | Op::WindowClose { task, .. } => {
                bump(task, &mut counters);
            }
            Op::Initiate { task, .. } => {
                bump(task, &mut counters);
            }
            Op::Message { from, .. } => {
                bump(from, &mut counters);
            }
            Op::RemoteCall { caller, .. } => {
                bump(caller, &mut counters);
            }
            Op::RemoteReturn { .. } | Op::Alloc { .. } => {}
        }
    }

    // Unmatched halves: the blocked task can never proceed.
    for ((from, to, window), halves) in &sends {
        for h in halves {
            report.push(
                Severity::Error,
                PASS,
                Some(h.span),
                format!(
                    "unmatched window send: '{from}' -> '{to}' through '{window}' has no \
                     matching receive; '{from}' blocks forever"
                ),
            );
        }
    }
    for ((from, to, window), halves) in &recvs {
        for h in halves {
            report.push(
                Severity::Error,
                PASS,
                Some(h.span),
                format!(
                    "unmatched window receive: '{to}' <- '{from}' through '{window}' has no \
                     matching send; '{to}' blocks forever"
                ),
            );
        }
    }

    // Wait-for edges between events sharing a participant.
    let n = events.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for parts in participation.values_mut() {
        parts.sort_unstable();
        for w in parts.windows(2) {
            adj[w[0].1].push(w[1].1);
        }
    }

    if let Some(cycle) = shortest_cycle(&adj) {
        let first = &events[cycle[0]];
        let mut chain = String::new();
        for (i, &e) in cycle.iter().enumerate() {
            let ev = &events[e];
            if i > 0 {
                chain.push_str(", then ");
            }
            chain.push_str(&format!(
                "'{}' -> '{}' through '{}' (line {})",
                ev.from, ev.to, ev.window, ev.send.span.line
            ));
        }
        let tasks: Vec<&str> = {
            let mut t: Vec<&str> = cycle
                .iter()
                .flat_map(|&e| [events[e].from.as_str(), events[e].to.as_str()])
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        report.push(
            Severity::Error,
            PASS,
            Some(first.send.span),
            format!(
                "window-exchange deadlock among tasks {}: each rendezvous waits on the \
                 next: {chain}, which waits on the first",
                tasks
                    .iter()
                    .map(|t| format!("'{t}'"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
    }
}

fn pop_front(v: &mut Vec<Half>) -> Option<Half> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

fn push_event(
    events: &mut Vec<Event>,
    participation: &mut BTreeMap<String, Vec<(usize, usize)>>,
    ev: Event,
) {
    let idx = events.len();
    participation
        .entry(ev.from.clone())
        .or_default()
        .push((ev.send.seq, idx));
    participation
        .entry(ev.to.clone())
        .or_default()
        .push((ev.recv.seq, idx));
    events.push(ev);
}

/// Shortest directed cycle in `adj`, as the list of nodes in order, or
/// `None` for an acyclic graph. BFS from each node; fine at script scale.
fn shortest_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut best: Option<Vec<usize>> = None;
    for start in 0..n {
        // BFS over successors looking for a path back to `start`.
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if v == start {
                    // Reconstruct start -> ... -> u, cycle closes u -> start.
                    let mut path = vec![u];
                    let mut cur = u;
                    while let Some(p) = prev[cur] {
                        path.push(p);
                        cur = p;
                    }
                    if cur != start {
                        path.push(start);
                    }
                    path.reverse();
                    if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &ScenarioScript) -> Report {
        let mut r = Report::new(script.name.clone(), script.source());
        check(script, &mut r);
        r
    }

    fn send(s: &mut ScenarioScript, from: &str, to: &str) {
        s.push(Op::WindowSend {
            from: from.into(),
            to: to.into(),
            window: "w".into(),
            words: 1,
        });
    }

    fn recv(s: &mut ScenarioScript, task: &str, from: &str) {
        s.push(Op::WindowRecv {
            task: task.into(),
            from: from.into(),
            window: "w".into(),
        });
    }

    #[test]
    fn matched_exchange_is_clean() {
        let mut s = ScenarioScript::new("ok");
        send(&mut s, "a", "b");
        recv(&mut s, "b", "a");
        send(&mut s, "b", "a");
        recv(&mut s, "a", "b");
        let r = run(&s);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn two_task_head_to_head_send_deadlocks() {
        // Both send first, then receive: the classic exchange deadlock.
        let mut s = ScenarioScript::new("dl");
        send(&mut s, "a", "b");
        send(&mut s, "b", "a");
        recv(&mut s, "b", "a");
        recv(&mut s, "a", "b");
        let r = run(&s);
        assert_eq!(r.error_count(), 1, "{}", r.render());
        let m = &r.diagnostics[0].message;
        assert!(m.contains("deadlock"), "{m}");
        assert!(m.contains("'a'") && m.contains("'b'"), "names tasks: {m}");
    }

    #[test]
    fn three_task_ring_deadlocks() {
        // a waits on b, b waits on c, c waits on a.
        let mut s = ScenarioScript::new("ring");
        send(&mut s, "a", "b");
        send(&mut s, "b", "c");
        send(&mut s, "c", "a");
        recv(&mut s, "b", "a");
        recv(&mut s, "c", "b");
        recv(&mut s, "a", "c");
        let r = run(&s);
        assert_eq!(r.error_count(), 1, "{}", r.render());
        let m = &r.diagnostics[0].message;
        assert!(m.contains("'a'") && m.contains("'b'") && m.contains("'c'"));
    }

    #[test]
    fn red_black_ordering_is_clean() {
        // Even tasks send first; odd tasks receive first. Acyclic.
        let mut s = ScenarioScript::new("rb");
        send(&mut s, "t0", "t1");
        recv(&mut s, "t1", "t0");
        send(&mut s, "t1", "t0");
        recv(&mut s, "t0", "t1");
        send(&mut s, "t2", "t1");
        recv(&mut s, "t1", "t2");
        send(&mut s, "t1", "t2");
        recv(&mut s, "t2", "t1");
        let r = run(&s);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unmatched_send_and_recv_reported() {
        let mut s = ScenarioScript::new("orphan");
        send(&mut s, "a", "b"); // no recv
        recv(&mut s, "c", "d"); // no send
        let r = run(&s);
        assert_eq!(r.error_count(), 2, "{}", r.render());
        assert!(r.diagnostics[0].message.contains("unmatched window send"));
        assert!(r.diagnostics[1]
            .message
            .contains("unmatched window receive"));
    }

    #[test]
    fn self_exchange_rejected() {
        let mut s = ScenarioScript::new("selfie");
        send(&mut s, "a", "a");
        let r = run(&s);
        assert_eq!(r.error_count(), 1);
        assert!(r.diagnostics[0].message.contains("itself"));
    }

    #[test]
    fn shortest_cycle_prefers_small_cycles() {
        // Graph: 0->1->2->0 and 3->4->3; shortest is the 2-cycle.
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![3]];
        let c = shortest_cycle(&adj).unwrap();
        assert_eq!(c.len(), 2);
    }
}
