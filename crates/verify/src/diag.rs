//! Structured diagnostics with source spans into the scenario description.
//!
//! Every analysis pass reports through [`Report`]: a list of
//! [`Diagnostic`]s, each carrying a severity, the pass that produced it, and
//! optionally a [`Span`] pointing at the line of the scenario description it
//! concerns. Rendering excerpts the offending line, compiler-style, so a
//! diagnostic is actionable without re-deriving the scenario by hand.

use serde::json::Value;
use serde::Serialize;
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Observation only; never blocks dispatch.
    Info,
    /// Suspicious but runnable; blocks dispatch unless warnings are allowed.
    Warning,
    /// A definite violation; always blocks dispatch.
    Error,
}

impl Severity {
    /// Lowercase name, as rendered.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.name().into())
    }
}

/// A source span: a 1-based line of the scenario description.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Span {
    /// 1-based line number into [`Report::source`].
    pub line: u32,
}

impl Span {
    /// Span covering line `line` (1-based).
    pub fn line(line: u32) -> Self {
        Span { line }
    }
}

/// One finding of one analysis pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which pass produced it: `protocol`, `deadlock`, `storage`, `grammar`.
    pub pass: &'static str,
    /// The finding, naming the tasks/clusters/nonterminals involved.
    pub message: String,
    /// Where in the scenario description it points, when it has a location.
    pub span: Option<Span>,
}

impl Serialize for Diagnostic {
    /// The machine-readable form shared by the serve layer's HTTP
    /// rejection bodies and `fem2-report --check --json`: the severity as
    /// `kind`, the producing pass, the message, and the 1-based source
    /// line (`null` for findings with no location).
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), self.severity.to_value()),
            ("pass".into(), Value::Str(self.pass.into())),
            ("message".into(), Value::Str(self.message.clone())),
            (
                "line".into(),
                match self.span {
                    Some(s) => Value::UInt(u64::from(s.line)),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// The outcome of analyzing one subject (a scenario script or a grammar).
#[derive(Clone, Debug)]
pub struct Report {
    /// What was analyzed (scenario or grammar name).
    pub subject: String,
    /// The scenario description the spans index into (empty for grammars).
    pub source: String,
    /// All findings, in pass order then discovery order. Deterministic.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject` over `source`.
    pub fn new(subject: impl Into<String>, source: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            source: source.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(
        &mut self,
        severity: Severity,
        pass: &'static str,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            pass,
            message: message.into(),
            span,
        });
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// No errors and no warnings (info findings don't spoil cleanliness).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warning_count() == 0
    }

    /// Whether this report blocks scenario dispatch. Errors always block;
    /// warnings block unless `allow_warnings`.
    pub fn blocks(&self, allow_warnings: bool) -> bool {
        self.error_count() > 0 || (!allow_warnings && self.warning_count() > 0)
    }

    /// Merge another report's findings (used to combine passes).
    pub fn absorb(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Render compiler-style, excerpting the scenario line each spanned
    /// diagnostic points at. Deterministic for golden-file comparison.
    pub fn render(&self) -> String {
        let lines: Vec<&str> = self.source.lines().collect();
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.pass, d.message));
            if let Some(span) = d.span {
                out.push_str(&format!("  --> {}:{}\n", self.subject, span.line));
                if let Some(text) = lines.get(span.line as usize - 1) {
                    out.push_str(&format!("   | {text}\n"));
                }
            }
        }
        out.push_str(&format!(
            "{}: {} ({} error(s), {} warning(s))\n",
            self.subject,
            self.status(),
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl Report {
    /// The status word of this report, as rendered and as serialized:
    /// `REJECTED`, `PASSED WITH WARNINGS`, or `CLEAN`.
    pub fn status(&self) -> &'static str {
        if self.error_count() > 0 {
            "REJECTED"
        } else if self.warning_count() > 0 {
            "PASSED WITH WARNINGS"
        } else {
            "CLEAN"
        }
    }
}

impl Serialize for Report {
    /// The machine-readable report: subject, status, counts, and every
    /// diagnostic in [`Diagnostic`]'s JSON form. The scenario source is
    /// not embedded (it can be large); spans carry the line numbers.
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("subject".into(), Value::Str(self.subject.clone())),
            ("status".into(), Value::Str(self.status().into())),
            ("errors".into(), Value::UInt(self.error_count() as u64)),
            ("warnings".into(), Value::UInt(self.warning_count() as u64)),
            (
                "diagnostics".into(),
                Value::Arr(self.diagnostics.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut r = Report::new("s", "line one\nline two");
        assert!(r.is_clean());
        assert!(!r.blocks(false));
        r.push(Severity::Info, "storage", None, "fyi");
        assert!(r.is_clean(), "info does not spoil cleanliness");
        r.push(Severity::Warning, "protocol", Some(Span::line(2)), "hm");
        assert!(!r.is_clean());
        assert!(r.blocks(false));
        assert!(!r.blocks(true), "allow_warnings passes warnings");
        r.push(Severity::Error, "deadlock", Some(Span::line(1)), "bad");
        assert!(r.blocks(true), "errors always block");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn render_excerpts_spanned_lines() {
        let mut r = Report::new("demo", "alpha\nbeta");
        r.push(Severity::Error, "protocol", Some(Span::line(2)), "oops");
        let text = r.render();
        assert!(text.contains("error[protocol]: oops"));
        assert!(text.contains("--> demo:2"));
        assert!(text.contains("| beta"));
        assert!(text.contains("REJECTED"));
    }

    #[test]
    fn render_status_lines() {
        let clean = Report::new("a", "").render();
        assert!(clean.contains("CLEAN"));
        let mut warn = Report::new("b", "");
        warn.push(Severity::Warning, "storage", None, "w");
        assert!(warn.render().contains("PASSED WITH WARNINGS"));
    }

    #[test]
    fn diagnostic_json_form_is_kind_pass_message_line() {
        let mut r = Report::new("demo", "alpha\nbeta");
        r.push(Severity::Error, "deadlock", Some(Span::line(2)), "cycle");
        r.push(Severity::Info, "storage", None, "fyi");
        let json = serde_json::to_string(&r).unwrap();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get_field("subject").unwrap(), &Value::Str("demo".into()));
        assert_eq!(
            v.get_field("status").unwrap(),
            &Value::Str("REJECTED".into())
        );
        assert_eq!(v.get_field("errors").unwrap(), &Value::UInt(1));
        let diags = match v.get_field("diagnostics").unwrap() {
            Value::Arr(items) => items,
            other => panic!("diagnostics must be an array, got {other:?}"),
        };
        assert_eq!(diags.len(), 2);
        assert_eq!(
            diags[0].get_field("kind").unwrap(),
            &Value::Str("error".into())
        );
        assert_eq!(
            diags[0].get_field("pass").unwrap(),
            &Value::Str("deadlock".into())
        );
        assert_eq!(
            diags[0].get_field("message").unwrap(),
            &Value::Str("cycle".into())
        );
        assert_eq!(diags[0].get_field("line").unwrap(), &Value::UInt(2));
        assert_eq!(diags[1].get_field("line").unwrap(), &Value::Null);
    }

    #[test]
    fn status_word_matches_render() {
        let mut r = Report::new("s", "");
        assert_eq!(r.status(), "CLEAN");
        r.push(Severity::Warning, "storage", None, "w");
        assert_eq!(r.status(), "PASSED WITH WARNINGS");
        r.push(Severity::Error, "protocol", None, "e");
        assert_eq!(r.status(), "REJECTED");
        assert!(r.render().contains(r.status()));
    }
}
