//! Pass 4: H-graph grammar well-formedness.
//!
//! The layer grammars are the formal backbone of the design method; this
//! pass keeps them honest. Three checks per grammar:
//!
//! * **reachability** — every nonterminal must be reachable from the start
//!   symbol (the first-declared production); unreachable ones are dead
//!   spec text (warning);
//! * **unused productions** — two identical alternatives of one rule mean
//!   the later one can never be the reason a value conforms (warning);
//! * **productivity** — a least-fixpoint pass marks nonterminals some
//!   *finite* object can conform to; the rest are satisfiable only by
//!   cyclic data under the coinductive semantics, which is legal here but
//!   worth flagging (warning), since a spec author usually intends at
//!   least one base case.

use crate::diag::{Report, Severity};
use fem2_hgraph::Grammar;
use std::collections::BTreeSet;

const PASS: &str = "grammar";

/// Analyze one grammar, returning its report.
pub fn check(grammar: &Grammar) -> Report {
    let mut report = Report::new(format!("grammar '{}'", grammar.name()), String::new());

    let Some(start) = grammar.start() else {
        report.push(
            Severity::Warning,
            PASS,
            None,
            "grammar has no productions at all",
        );
        return report;
    };

    // Reachability from the start symbol.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut work = vec![start];
    while let Some(nt) = work.pop() {
        if reachable.insert(nt) {
            work.extend(grammar.referenced_by(nt));
        }
    }
    for nt in grammar.declaration_order() {
        if !reachable.contains(nt) {
            report.push(
                Severity::Warning,
                PASS,
                None,
                format!("nonterminal '{nt}' is unreachable from the start symbol '{start}'"),
            );
        }
    }

    // Unused productions: alternatives shadowed by an identical earlier one.
    for nt in grammar.declaration_order() {
        let described = grammar.describe_alternatives(nt);
        for (i, d) in described.iter().enumerate() {
            if described[..i].contains(d) {
                report.push(
                    Severity::Warning,
                    PASS,
                    None,
                    format!(
                        "alternative {} of '{nt}' duplicates an earlier alternative \
                         ({d}) and can never be used",
                        i + 1
                    ),
                );
            }
        }
    }

    // Productivity: least fixpoint of "some alternative's requirements are
    // all already productive".
    let mut productive: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        for nt in grammar.declaration_order() {
            if productive.contains(nt) {
                continue;
            }
            let alts = grammar.alternative_count(nt);
            let ok = (0..alts).any(|a| {
                grammar
                    .alternative_requires(nt, a)
                    .iter()
                    .all(|r| productive.contains(r))
            });
            if ok {
                productive.insert(nt);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for nt in grammar.declaration_order() {
        if !productive.contains(nt) {
            report.push(
                Severity::Warning,
                PASS,
                None,
                format!(
                    "nonterminal '{nt}' is non-productive: no finite object conforms \
                     (only cyclic data can, under the coinductive semantics)"
                ),
            );
        }
    }

    if report.diagnostics.is_empty() {
        report.push(
            Severity::Info,
            PASS,
            None,
            format!(
                "{} production(s), all reachable and productive",
                grammar.rule_count()
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fem2_hgraph::{AtomKind, Shape};

    #[test]
    fn empty_grammar_warns() {
        let g = Grammar::builder("void").build().unwrap();
        let r = check(&g);
        assert_eq!(r.warning_count(), 1);
        assert!(r.diagnostics[0].message.contains("no productions"));
    }

    #[test]
    fn healthy_grammar_is_clean() {
        let g = Grammar::builder("list")
            .rule("List", Shape::node(AtomKind::Int).arc_opt("next", "List"))
            .build()
            .unwrap();
        let r = check(&g);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unreachable_nonterminal_flagged() {
        let g = Grammar::builder("dead")
            .rule("Root", Shape::node(AtomKind::Sym))
            .rule("Orphan", Shape::node(AtomKind::Int))
            .build()
            .unwrap();
        let r = check(&g);
        assert_eq!(r.warning_count(), 1, "{}", r.render());
        assert!(r.diagnostics[0].message.contains("'Orphan'"));
        assert!(r.diagnostics[0].message.contains("'Root'"));
    }

    #[test]
    fn duplicate_alternative_flagged() {
        let g = Grammar::builder("dup")
            .rule("Val", Shape::node(AtomKind::Int))
            .rule("Val", Shape::node(AtomKind::Int))
            .build()
            .unwrap();
        let r = check(&g);
        assert_eq!(r.warning_count(), 1, "{}", r.render());
        assert!(r.diagnostics[0].message.contains("duplicates"));
    }

    #[test]
    fn self_referential_required_arc_is_non_productive() {
        let g = Grammar::builder("ring")
            .rule("Ring", Shape::node(AtomKind::Int).arc("next", "Ring"))
            .build()
            .unwrap();
        let r = check(&g);
        assert_eq!(r.warning_count(), 1, "{}", r.render());
        assert!(r.diagnostics[0].message.contains("non-productive"));
        assert!(r.diagnostics[0].message.contains("'Ring'"));
    }

    #[test]
    fn base_case_restores_productivity() {
        let g = Grammar::builder("tree")
            .rule("Tree", Shape::node(AtomKind::Int).arc("left", "Tree"))
            .rule("Tree", Shape::node(AtomKind::Sym)) // leaf base case
            .build()
            .unwrap();
        let r = check(&g);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn mutual_recursion_without_base_case_flagged() {
        let g = Grammar::builder("mutual")
            .rule("A", Shape::node(AtomKind::Int).arc("b", "B"))
            .rule("B", Shape::node(AtomKind::Int).arc("a", "A"))
            .build()
            .unwrap();
        let r = check(&g);
        assert_eq!(r.warning_count(), 2, "{}", r.render());
    }
}
