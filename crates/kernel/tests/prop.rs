//! Property tests for the kernel: every initiated task terminates, the
//! simulation is deterministic, and accounting balances — under random
//! workloads, placements, and fault plans.

use fem2_kernel::{CodeBlock, KernelSim, TaskState, WorkProfile};
use fem2_machine::fault::{FaultEvent, FaultPlan};
use fem2_machine::{Machine, MachineConfig, PeId, Topology};
use proptest::prelude::*;

fn sim(clusters: u32, pes: u32) -> KernelSim {
    KernelSim::new(Machine::new(MachineConfig::clustered(
        clusters,
        pes,
        Topology::Crossbar,
    )))
}

/// Topologies for the 8-cluster shard-identity matrix, including the
/// multi-hop torus and fat-tree networks.
fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Crossbar),
        Just(Topology::Ring),
        Just(Topology::Torus { dims: vec![2, 4] }),
        Just(Topology::Torus {
            dims: vec![2, 2, 2],
        }),
        Just(Topology::FatTree { radix: 2 }),
        Just(Topology::FatTree { radix: 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the batch shape, every created task runs to completion and
    /// its locals are reclaimed.
    #[test]
    fn all_tasks_complete_and_memory_balances(
        batches in proptest::collection::vec((0u32..3, 1u32..20, 1u64..2000), 1..8),
    ) {
        let mut k = sim(3, 4);
        let code = k.register_code(CodeBlock::new(
            "w",
            32,
            WorkProfile { flops: 100, int_ops: 10, mem_words: 5 },
            16,
        ));
        let mut expected = 0u64;
        for &(cluster, reps, stagger) in &batches {
            k.initiate(stagger, cluster, code, reps, None, 4);
            expected += reps as u64;
        }
        k.run();
        prop_assert!(k.all_done());
        prop_assert_eq!(k.completions().len() as u64, expected);
        // Only loaded code images remain allocated.
        let code_words = k.code_store().get(code).words;
        for c in 0..3 {
            let used = k.machine.memory(c).used();
            prop_assert!(used == 0 || used == code_words, "cluster {c}: {used}");
        }
    }

    /// The kernel simulation replays identically.
    #[test]
    fn kernel_deterministic(
        batches in proptest::collection::vec((0u32..2, 1u32..10, 1u64..500), 1..6),
    ) {
        let run = || {
            let mut k = sim(2, 3);
            let code = k.register_code(CodeBlock::new(
                "w",
                16,
                WorkProfile { flops: 250, int_ops: 25, mem_words: 10 },
                8,
            ));
            for &(cluster, reps, at) in &batches {
                k.initiate(at, cluster, code, reps, None, 0);
            }
            let makespan = k.run();
            (makespan, k.completions().to_vec(), k.machine.stats.total())
        };
        prop_assert_eq!(run(), run());
    }

    /// Work conservation under faults: every task still completes as long
    /// as each cluster keeps at least one PE, and makespan never improves
    /// when PEs die.
    #[test]
    fn faults_never_lose_work(
        reps in 4u32..24,
        kill_idx in proptest::collection::btree_set(1u32..4, 0..3),
        kill_at in 1u64..50_000,
    ) {
        let build = |plan: &FaultPlan| {
            let mut k = sim(1, 4);
            let code = k.register_code(CodeBlock::new(
                "w",
                16,
                WorkProfile { flops: 2000, int_ops: 100, mem_words: 50 },
                8,
            ));
            k.initiate(0, 0, code, reps, None, 0);
            k.inject_faults(plan);
            let makespan = k.run();
            (makespan, k.completions().len(), k.all_done())
        };
        let (healthy, done_h, all_h) = build(&FaultPlan::none());
        prop_assert!(all_h);
        prop_assert_eq!(done_h as u32, reps);
        let events: Vec<FaultEvent> = kill_idx
            .iter()
            .map(|&i| FaultEvent::kill_pe(kill_at, PeId::new(0, i)))
            .collect();
        let (faulted, done_f, all_f) = build(&FaultPlan::new(events));
        prop_assert!(all_f, "all tasks complete despite faults");
        prop_assert_eq!(done_f as u32, reps);
        prop_assert!(faulted >= healthy, "faults cannot speed the batch up");
    }

    /// The sharded kernel is bitwise-identical to the sequential engine on
    /// every topology — including the torus and fat-tree networks — at
    /// several shard counts: same makespan, completion stream, machine
    /// statistics, and event count.
    #[test]
    fn sharded_kernel_matches_sequential_on_every_topology(
        topo in topo_strategy(),
        batches in proptest::collection::vec((0u32..8, 1u32..6, 1u64..2000), 1..5),
    ) {
        let run = |shards: u32| {
            let mut cfg = MachineConfig::clustered(8, 3, topo.clone());
            cfg.des_shards = shards;
            let mut k = KernelSim::new(Machine::new(cfg));
            let code = k.register_code(CodeBlock::new(
                "w",
                16,
                WorkProfile { flops: 120, int_ops: 12, mem_words: 6 },
                8,
            ));
            for &(cluster, reps, at) in &batches {
                k.initiate(at, cluster, code, reps, None, 4);
            }
            let makespan = k.run();
            (
                makespan,
                k.completions().to_vec(),
                k.machine.stats.total(),
                k.machine.events,
            )
        };
        let oracle = run(1);
        for shards in [2u32, 4, 8] {
            prop_assert_eq!(&run(shards), &oracle, "shards={}", shards);
        }
    }

    /// Completion timestamps are non-decreasing in completion order, and no
    /// task completes before it could have been created.
    #[test]
    fn completion_order_sane(reps in 1u32..40, at in 0u64..10_000) {
        let mut k = sim(2, 4);
        let code = k.register_code(CodeBlock::new(
            "w",
            16,
            WorkProfile { flops: 300, int_ops: 0, mem_words: 0 },
            8,
        ));
        k.initiate(at, 0, code, reps, None, 0);
        k.run();
        let comps = k.completions();
        prop_assert_eq!(comps.len() as u32, reps);
        for w in comps.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "completion times ordered");
        }
        for &(task, t) in comps {
            let rec = k.task(task);
            prop_assert_eq!(rec.state, TaskState::Done);
            prop_assert!(t >= rec.created_at);
            prop_assert!(t > at, "cannot finish before the batch arrived");
        }
    }
}
