//! The per-cluster kernel loop over the simulated machine.
//!
//! [`KernelSim`] is the system programmer's VM in motion: kernel messages
//! travel the network, arrive in a cluster's input queue, are decoded by the
//! cluster's kernel PE (one [`fem2_machine::CostClass::MsgDispatch`] each),
//! and their effects — task creation, scheduling, pause/resume, RPC — are
//! charged to whichever PEs perform them. "Messages arriving in the input
//! queue of any cluster can be processed by any available PE": the ready
//! queue is cluster-wide and the dispatcher hands tasks to the
//! earliest-free surviving worker PE.
//!
//! Semantics notes (documented simplifications of the 1983 design):
//!
//! * a paused task restarts its work profile when resumed (pause points
//!   inside a profile are not modeled);
//! * a PE failure re-queues the task that was running on it; the work
//!   already charged to the dead PE is lost, and the task re-runs in full;
//! * code blocks are auto-loaded on first use when
//!   [`KernelConfig::auto_load_code`] is set (the default), otherwise an
//!   explicit [`KernelMessage::LoadCode`] is required and initiating an
//!   unloaded block drops the request.

use crate::activation::{ActivationRecord, TaskId, TaskState};
use crate::codeblock::{CodeBlock, CodeId, CodeStore};
use crate::message::{KernelMessage, MessageKind};
use fem2_machine::fault::FaultPlan;
use fem2_machine::{CostClass, Cycles, EventQueue, Machine, PeId, Words};
use fem2_trace::{EventKind, TaskStage, TraceEvent, TraceHandle, NO_PE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Policy knobs for the kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Auto-load code blocks on first initiate/call at a cluster.
    pub auto_load_code: bool,
    /// Payload of pause/terminate notifications and RPC results, in words.
    pub notify_words: Words,
    /// Cycles the cluster spends reconfiguring after a PE fault before its
    /// re-queued work is redispatched.
    pub reconfig_cycles: Cycles,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            auto_load_code: true,
            notify_words: 2,
            reconfig_cycles: 500,
        }
    }
}

/// Kernel events on the discrete-event queue.
#[derive(Clone, Debug)]
enum KEvent {
    /// A message arrives in `to`'s input queue (`from` is the sender, kept
    /// for receive-side tracing).
    Arrive {
        from: u32,
        to: u32,
        msg: KernelMessage,
    },
    /// Cluster `cluster`'s kernel PE finished decoding the message at the
    /// head of the input queue.
    Decoded { cluster: u32 },
    /// A task finished its charged work on a PE.
    TaskComplete { task: TaskId, pe: PeId, epoch: u32 },
    /// Try to hand ready tasks to available PEs.
    Dispatch { cluster: u32 },
    /// A planned hardware fault fires.
    Fault { pe: PeId },
}

/// Per-cluster kernel state.
#[derive(Debug, Default)]
struct ClusterState {
    /// Queued (sender, message) pairs awaiting decode.
    input: VecDeque<(u32, KernelMessage)>,
    kernel_busy: bool,
    ready: VecDeque<TaskId>,
    loaded: BTreeSet<CodeId>,
}

/// The kernel simulation: a [`Machine`] plus the seven-message kernel
/// protocol, task scheduling, and fault reconfiguration.
pub struct KernelSim {
    /// The simulated hardware (public for inspection; mutate through the
    /// kernel API).
    pub machine: Machine,
    /// Kernel policy.
    pub config: KernelConfig,
    queue: EventQueue<KEvent>,
    clusters: Vec<ClusterState>,
    code: CodeStore,
    tasks: Vec<ActivationRecord>,
    /// Which task each PE is currently running.
    running: BTreeMap<PeId, TaskId>,
    /// (task, completion time) in completion order.
    completions: Vec<(TaskId, Cycles)>,
    /// Parent notifications delivered: (child task, arrival time).
    notifications: Vec<(TaskId, Cycles)>,
    /// RPC returns received: call_id -> arrival time.
    rpc_returns: BTreeMap<u64, Cycles>,
    /// RPC worker tasks: task -> (call_id, reply cluster).
    rpc_tasks: BTreeMap<TaskId, (u64, u32)>,
    /// Messages processed, by kind.
    msg_counts: BTreeMap<MessageKind, u64>,
    /// Requests dropped (unloaded code, OOM, bad state).
    pub dropped: u64,
}

impl KernelSim {
    /// A kernel over `machine` with default policy.
    pub fn new(machine: Machine) -> Self {
        let clusters = (0..machine.config.clusters)
            .map(|_| ClusterState::default())
            .collect();
        KernelSim {
            machine,
            config: KernelConfig::default(),
            queue: EventQueue::new(),
            clusters,
            code: CodeStore::new(),
            tasks: Vec::new(),
            running: BTreeMap::new(),
            completions: Vec::new(),
            notifications: Vec::new(),
            rpc_returns: BTreeMap::new(),
            rpc_tasks: BTreeMap::new(),
            msg_counts: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Attach a trace sink: machine-level events, DES queue events, kernel
    /// messages, and task lifecycle transitions all flow to it.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.machine.set_trace(trace.clone());
        self.queue.set_trace(trace);
    }

    /// Register a code block with the global program store.
    pub fn register_code(&mut self, block: CodeBlock) -> CodeId {
        self.code.register(block)
    }

    /// The global program store.
    pub fn code_store(&self) -> &CodeStore {
        &self.code
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Send a kernel message from cluster `from` to cluster `to` at time
    /// `at`. The sender's kernel PE is charged the format-and-send cost and
    /// the network carries the wire size.
    pub fn send(&mut self, at: Cycles, from: u32, to: u32, msg: KernelMessage) {
        let kpe = self.machine.kernel_pe(from);
        let send_done = self
            .machine
            .charge(at, kpe, CostClass::MsgSend, 1)
            .unwrap_or(at);
        let code = &self.code;
        let wire = msg.wire_words(|c| code.get(c).words);
        let arrival = self.machine.transmit(send_done, from, to, wire);
        let kind = msg.kind().trace_kind();
        self.machine.trace.emit(|| {
            TraceEvent::span(
                at,
                arrival - at,
                from,
                NO_PE,
                EventKind::MsgSend {
                    msg: kind,
                    to_cluster: to,
                    words: wire,
                },
            )
        });
        self.queue
            .schedule(arrival, KEvent::Arrive { from, to, msg });
    }

    /// Convenience: initiate `k` replications of `code` on `cluster`,
    /// injected locally at time `at` (a user request arriving at the
    /// cluster).
    pub fn initiate(
        &mut self,
        at: Cycles,
        cluster: u32,
        code: CodeId,
        k: u32,
        parent: Option<TaskId>,
        args_words: Words,
    ) {
        self.send(
            at,
            cluster,
            cluster,
            KernelMessage::InitiateTask {
                code,
                replications: k,
                parent,
                args_words,
            },
        );
    }

    /// Schedule a fault plan: each planned PE failure becomes an event.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        let mut p = plan.clone();
        let all = p.due(u64::MAX);
        for f in all {
            self.queue.schedule(f.at, KEvent::Fault { pe: f.pe });
        }
    }

    /// Run to quiescence; returns the machine makespan.
    pub fn run(&mut self) -> Cycles {
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        self.machine.makespan()
    }

    /// Completions in completion order.
    pub fn completions(&self) -> &[(TaskId, Cycles)] {
        &self.completions
    }

    /// Parent notifications in arrival order.
    pub fn notifications(&self) -> &[(TaskId, Cycles)] {
        &self.notifications
    }

    /// RPC return arrival times by call id.
    pub fn rpc_returns(&self) -> &BTreeMap<u64, Cycles> {
        &self.rpc_returns
    }

    /// Processed message counts by kind.
    pub fn msg_counts(&self) -> &BTreeMap<MessageKind, u64> {
        &self.msg_counts
    }

    /// A task's activation record.
    pub fn task(&self, id: TaskId) -> &ActivationRecord {
        &self.tasks[id.0 as usize]
    }

    /// Total tasks created.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// True if every created task has terminated.
    pub fn all_done(&self) -> bool {
        self.tasks.iter().all(|t| t.state == TaskState::Done)
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: Cycles, ev: KEvent) {
        match ev {
            KEvent::Arrive { from, to, msg } => {
                self.clusters[to as usize].input.push_back((from, msg));
                self.pump(now, to);
            }
            KEvent::Decoded { cluster } => {
                let (from, msg) = self.clusters[cluster as usize]
                    .input
                    .pop_front()
                    .expect("decoded event without queued message");
                self.clusters[cluster as usize].kernel_busy = false;
                *self.msg_counts.entry(msg.kind()).or_insert(0) += 1;
                self.machine.stats.kernel_msg();
                let kind = msg.kind().trace_kind();
                let code = &self.code;
                let wire = msg.wire_words(|c| code.get(c).words);
                self.machine.trace.emit(|| {
                    TraceEvent::instant(
                        now,
                        cluster,
                        NO_PE,
                        EventKind::MsgRecv {
                            msg: kind,
                            from_cluster: from,
                            words: wire,
                        },
                    )
                });
                self.execute(now, cluster, msg);
                self.pump(now, cluster);
            }
            KEvent::TaskComplete { task, pe, epoch } => {
                self.task_complete(now, task, pe, epoch);
            }
            KEvent::Dispatch { cluster } => {
                self.dispatch(now, cluster);
            }
            KEvent::Fault { pe } => {
                self.fault(now, pe);
            }
        }
    }

    /// Start the kernel PE on the next queued message if it is idle.
    fn pump(&mut self, now: Cycles, cluster: u32) {
        let st = &mut self.clusters[cluster as usize];
        if st.kernel_busy || st.input.is_empty() {
            return;
        }
        st.kernel_busy = true;
        let kpe = self.machine.kernel_pe(cluster);
        let done = self
            .machine
            .charge(now, kpe, CostClass::MsgDispatch, 1)
            .unwrap_or(now);
        self.queue.schedule(done, KEvent::Decoded { cluster });
    }

    fn ensure_loaded(&mut self, now: Cycles, cluster: u32, code: CodeId) -> bool {
        if self.clusters[cluster as usize].loaded.contains(&code) {
            return true;
        }
        if !self.config.auto_load_code {
            return false;
        }
        self.load_code(now, cluster, code)
    }

    fn load_code(&mut self, now: Cycles, cluster: u32, code: CodeId) -> bool {
        let words = self.code.get(code).words;
        if self.machine.alloc_at(now, cluster, words).is_err() {
            return false;
        }
        let kpe = self.machine.kernel_pe(cluster);
        let _ = self.machine.charge(now, kpe, CostClass::MemWord, words);
        self.clusters[cluster as usize].loaded.insert(code);
        true
    }

    fn execute(&mut self, now: Cycles, cluster: u32, msg: KernelMessage) {
        match msg {
            KernelMessage::InitiateTask {
                code,
                replications,
                parent,
                args_words,
            } => {
                if !self.ensure_loaded(now, cluster, code) {
                    self.dropped += 1;
                    return;
                }
                let kpe = self.machine.kernel_pe(cluster);
                let locals = self.code.get(code).locals_words + args_words;
                let mut created_any = false;
                for _ in 0..replications {
                    if self.machine.alloc_at(now, cluster, locals).is_err() {
                        self.dropped += 1;
                        continue;
                    }
                    let create_done = self
                        .machine
                        .charge(now, kpe, CostClass::TaskCreate, 1)
                        .unwrap_or(now);
                    let id = TaskId(self.tasks.len() as u64);
                    self.tasks.push(ActivationRecord::new(
                        id,
                        code,
                        cluster,
                        parent,
                        locals,
                        create_done,
                    ));
                    self.machine.trace.emit(|| {
                        TraceEvent::instant(
                            create_done,
                            cluster,
                            NO_PE,
                            EventKind::Task {
                                task: id.0 as u32,
                                stage: TaskStage::Created,
                            },
                        )
                    });
                    self.clusters[cluster as usize].ready.push_back(id);
                    created_any = true;
                }
                if created_any {
                    // Dispatch once the kernel PE has finished creating the
                    // activation records.
                    let at = self
                        .machine
                        .pe(self.machine.kernel_pe(cluster))
                        .unwrap()
                        .free_at;
                    self.queue.schedule(at, KEvent::Dispatch { cluster });
                }
            }
            KernelMessage::PauseNotify { task } => {
                let rec = &mut self.tasks[task.0 as usize];
                if rec.state == TaskState::Running {
                    rec.epoch += 1; // invalidate the in-flight completion
                    rec.transition(TaskState::Paused);
                    // Free the PE's association (its charged time stands).
                    self.running.retain(|_, t| *t != task);
                    let parent = rec.parent;
                    self.notify_parent(now, cluster, task, parent);
                } else {
                    self.dropped += 1;
                }
            }
            KernelMessage::Resume { task } => {
                let rec = &mut self.tasks[task.0 as usize];
                if rec.state == TaskState::Paused {
                    rec.transition(TaskState::Ready);
                    let c = rec.cluster;
                    self.clusters[c as usize].ready.push_back(task);
                    self.queue.schedule(now, KEvent::Dispatch { cluster: c });
                } else {
                    self.dropped += 1;
                }
            }
            KernelMessage::TerminateNotify { task } => {
                let rec = &mut self.tasks[task.0 as usize];
                match rec.state {
                    TaskState::Done => {
                        // Notification of an already-completed child: record
                        // its delivery to the parent.
                        self.notifications.push((task, now));
                    }
                    TaskState::Running | TaskState::Ready | TaskState::Paused => {
                        // Forced termination.
                        rec.epoch += 1;
                        let state = rec.state;
                        rec.transition(TaskState::Done);
                        rec.completed_at = Some(now);
                        let c = rec.cluster;
                        let locals = rec.locals_words;
                        let parent = rec.parent;
                        if state == TaskState::Ready {
                            self.clusters[c as usize].ready.retain(|t| *t != task);
                        }
                        self.running.retain(|_, t| *t != task);
                        self.machine.free_at(now, c, locals);
                        self.completions.push((task, now));
                        self.notify_parent(now, cluster, task, parent);
                    }
                }
            }
            KernelMessage::RemoteCall {
                call_id,
                code,
                args_words,
                caller,
                reply_cluster,
            } => {
                if !self.ensure_loaded(now, cluster, code) {
                    self.dropped += 1;
                    return;
                }
                let locals = self.code.get(code).locals_words + args_words;
                if self.machine.alloc_at(now, cluster, locals).is_err() {
                    self.dropped += 1;
                    return;
                }
                let kpe = self.machine.kernel_pe(cluster);
                let create_done = self
                    .machine
                    .charge(now, kpe, CostClass::TaskCreate, 1)
                    .unwrap_or(now);
                let id = TaskId(self.tasks.len() as u64);
                let mut rec =
                    ActivationRecord::new(id, code, cluster, Some(caller), locals, create_done);
                // RPC workers do not send TerminateNotify; they reply.
                rec.parent = None;
                self.tasks.push(rec);
                self.machine.trace.emit(|| {
                    TraceEvent::instant(
                        create_done,
                        cluster,
                        NO_PE,
                        EventKind::Task {
                            task: id.0 as u32,
                            stage: TaskStage::Created,
                        },
                    )
                });
                self.rpc_tasks.insert(id, (call_id, reply_cluster));
                self.clusters[cluster as usize].ready.push_back(id);
                self.queue
                    .schedule(create_done, KEvent::Dispatch { cluster });
            }
            KernelMessage::RemoteReturn { call_id, .. } => {
                self.rpc_returns.insert(call_id, now);
            }
            KernelMessage::LoadCode { code } => {
                if !self.load_code(now, cluster, code) {
                    self.dropped += 1;
                }
            }
        }
    }

    fn notify_parent(
        &mut self,
        now: Cycles,
        from_cluster: u32,
        child: TaskId,
        parent: Option<TaskId>,
    ) {
        if let Some(p) = parent {
            let pc = self.tasks.get(p.0 as usize).map(|r| r.cluster);
            if let Some(pc) = pc {
                if pc == from_cluster {
                    // Local notification: no network message.
                    self.notifications.push((child, now));
                } else {
                    self.send(
                        now,
                        from_cluster,
                        pc,
                        KernelMessage::TerminateNotify { task: child },
                    );
                }
            }
        }
    }

    /// Hand ready tasks to available worker PEs.
    fn dispatch(&mut self, now: Cycles, cluster: u32) {
        loop {
            if self.clusters[cluster as usize].ready.is_empty() {
                return;
            }
            // An eligible worker that is free *now*.
            let Some(pe) = self
                .machine
                .worker_pes(cluster)
                .into_iter()
                .filter(|&pe| {
                    self.machine
                        .pe(pe)
                        .map(|p| p.available(now))
                        .unwrap_or(false)
                })
                .min_by_key(|pe| pe.index)
            else {
                return;
            };
            let task = self.clusters[cluster as usize].ready.pop_front().unwrap();
            let rec = &mut self.tasks[task.0 as usize];
            rec.transition(TaskState::Running);
            rec.epoch += 1;
            let epoch = rec.epoch;
            let work = self.code.get(rec.code).work;
            self.machine.trace.emit(|| {
                TraceEvent::instant(
                    now,
                    pe.cluster,
                    pe.index,
                    EventKind::Task {
                        task: task.0 as u32,
                        stage: TaskStage::Dispatched,
                    },
                )
            });
            let _ = self.machine.charge(now, pe, CostClass::ContextSwitch, 1);
            let _ = self.machine.charge(now, pe, CostClass::IntOp, work.int_ops);
            let _ = self
                .machine
                .charge(now, pe, CostClass::MemWord, work.mem_words);
            let done = self
                .machine
                .charge(now, pe, CostClass::Flop, work.flops)
                .unwrap_or(now);
            self.running.insert(pe, task);
            self.queue
                .schedule(done, KEvent::TaskComplete { task, pe, epoch });
        }
    }

    fn task_complete(&mut self, now: Cycles, task: TaskId, pe: PeId, epoch: u32) {
        let rec = &mut self.tasks[task.0 as usize];
        if rec.epoch != epoch || rec.state != TaskState::Running {
            return; // stale completion (pause, kill, or fault intervened)
        }
        rec.transition(TaskState::Done);
        rec.completed_at = Some(now);
        let cluster = rec.cluster;
        let locals = rec.locals_words;
        let parent = rec.parent;
        self.running.remove(&pe);
        self.machine.free_at(now, cluster, locals);
        self.machine.trace.emit(|| {
            TraceEvent::instant(
                now,
                pe.cluster,
                pe.index,
                EventKind::Task {
                    task: task.0 as u32,
                    stage: TaskStage::Completed,
                },
            )
        });
        self.completions.push((task, now));
        self.notify_parent(now, cluster, task, parent);
        if let Some((call_id, reply_cluster)) = self.rpc_tasks.remove(&task) {
            self.send(
                now,
                cluster,
                reply_cluster,
                KernelMessage::RemoteReturn {
                    call_id,
                    result_words: self.config.notify_words,
                },
            );
        }
        self.queue.schedule(now, KEvent::Dispatch { cluster });
    }

    fn fault(&mut self, now: Cycles, pe: PeId) {
        match self.machine.fail_pe(pe) {
            Ok(()) => {}
            Err(_) => {
                // Cluster dead: any running/ready work there is lost; drop it.
                self.dropped += 1;
            }
        }
        if let Some(task) = self.running.remove(&pe) {
            self.machine.trace.emit(|| {
                TraceEvent::instant(
                    now,
                    pe.cluster,
                    pe.index,
                    EventKind::Task {
                        task: task.0 as u32,
                        stage: TaskStage::Faulted,
                    },
                )
            });
            let rec = &mut self.tasks[task.0 as usize];
            if rec.state == TaskState::Running {
                rec.epoch += 1; // invalidate in-flight completion
                rec.transition(TaskState::Ready);
                let c = rec.cluster;
                self.clusters[c as usize].ready.push_back(task);
                self.queue.schedule(
                    now + self.config.reconfig_cycles,
                    KEvent::Dispatch { cluster: c },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codeblock::WorkProfile;
    use fem2_machine::{MachineConfig, Topology};

    fn sim(clusters: u32, pes: u32) -> KernelSim {
        let m = Machine::new(MachineConfig::clustered(clusters, pes, Topology::Crossbar));
        KernelSim::new(m)
    }

    fn small_code(k: &mut KernelSim) -> CodeId {
        k.register_code(CodeBlock::new(
            "work",
            64,
            WorkProfile {
                flops: 100,
                int_ops: 10,
                mem_words: 20,
            },
            16,
        ))
    }

    #[test]
    fn initiate_runs_tasks_to_completion() {
        let mut k = sim(1, 4);
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 6, None, 8);
        let makespan = k.run();
        assert!(makespan > 0);
        assert_eq!(k.completions().len(), 6);
        assert!(k.all_done());
        assert_eq!(k.task_count(), 6);
        // Locals were freed.
        assert!(k.machine.memory(0).used() > 0, "code image stays loaded");
        let code_words = k.code_store().get(code).words;
        assert_eq!(k.machine.memory(0).used(), code_words);
    }

    #[test]
    fn replications_run_in_parallel_across_workers() {
        // 3 workers, 3 tasks: total time ≈ one task, not three.
        let mut k3 = sim(1, 4);
        let c3 = small_code(&mut k3);
        k3.initiate(0, 0, c3, 3, None, 0);
        let t3 = k3.run();

        let mut k1 = sim(1, 2); // one worker
        let c1 = small_code(&mut k1);
        k1.initiate(0, 0, c1, 3, None, 0);
        let t1 = k1.run();
        // Two extra serialized task bodies (~490 cycles each) separate the
        // one-worker run from the three-worker run.
        assert!(
            t1 >= t3 + 900,
            "serial {t1} should trail parallel {t3} by two task bodies"
        );
    }

    #[test]
    fn message_counts_by_kind() {
        let mut k = sim(1, 4);
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 2, None, 0);
        k.run();
        assert_eq!(k.msg_counts()[&MessageKind::InitiateTask], 1);
    }

    #[test]
    fn parent_is_notified_of_child_termination() {
        let mut k = sim(2, 4);
        let code = small_code(&mut k);
        // Create the parent on cluster 0.
        k.initiate(0, 0, code, 1, None, 0);
        k.run();
        let parent = TaskId(0);
        // Children on cluster 1 with a cross-cluster parent.
        k.send(
            k.now(),
            0,
            1,
            KernelMessage::InitiateTask {
                code,
                replications: 2,
                parent: Some(parent),
                args_words: 0,
            },
        );
        k.run();
        // Two remote TerminateNotify messages were delivered at cluster 0.
        assert_eq!(k.notifications().len(), 2);
        assert_eq!(k.msg_counts()[&MessageKind::TerminateNotify], 2);
    }

    #[test]
    fn unloaded_code_dropped_without_autoload() {
        let mut k = sim(1, 2);
        k.config.auto_load_code = false;
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 1, None, 0);
        k.run();
        assert_eq!(k.completions().len(), 0);
        assert_eq!(k.dropped, 1);
        // Explicit load then initiate works (staggered so the load's larger
        // wire size does not reorder it behind the initiate).
        k.send(k.now(), 0, 0, KernelMessage::LoadCode { code });
        k.initiate(k.now() + 10_000, 0, code, 1, None, 0);
        k.run();
        assert_eq!(k.completions().len(), 1);
        assert_eq!(k.msg_counts()[&MessageKind::LoadCode], 1);
    }

    #[test]
    fn remote_call_returns_to_caller() {
        let mut k = sim(2, 4);
        let code = small_code(&mut k);
        k.send(
            0,
            0,
            1,
            KernelMessage::RemoteCall {
                call_id: 42,
                code,
                args_words: 16,
                caller: TaskId(999),
                reply_cluster: 0,
            },
        );
        k.run();
        assert!(k.rpc_returns().contains_key(&42));
        assert_eq!(k.msg_counts()[&MessageKind::RemoteCall], 1);
        assert_eq!(k.msg_counts()[&MessageKind::RemoteReturn], 1);
        // The RPC worker task completed but sent no TerminateNotify.
        assert_eq!(k.completions().len(), 1);
        assert_eq!(k.notifications().len(), 0);
    }

    #[test]
    fn pause_then_resume_reruns_task() {
        let mut k = sim(1, 4);
        // A long task so the pause lands while it is running.
        let code = k.register_code(CodeBlock::new("long", 16, WorkProfile::flops(1_000_000), 8));
        k.initiate(0, 0, code, 1, None, 0);
        // Pause shortly after it starts.
        k.send(500, 0, 0, KernelMessage::PauseNotify { task: TaskId(0) });
        k.run();
        assert_eq!(k.task(TaskId(0)).state, TaskState::Paused);
        assert_eq!(k.completions().len(), 0, "paused before completion");
        // Resume; the task restarts and completes.
        k.send(k.now(), 0, 0, KernelMessage::Resume { task: TaskId(0) });
        k.run();
        assert_eq!(k.task(TaskId(0)).state, TaskState::Done);
        assert_eq!(k.completions().len(), 1);
    }

    #[test]
    fn pause_of_non_running_task_is_dropped() {
        let mut k = sim(1, 4);
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 1, None, 0);
        k.run();
        k.send(
            k.now(),
            0,
            0,
            KernelMessage::PauseNotify { task: TaskId(0) },
        );
        k.run();
        assert_eq!(k.dropped, 1);
        assert_eq!(k.task(TaskId(0)).state, TaskState::Done);
    }

    #[test]
    fn forced_termination_of_running_task() {
        let mut k = sim(1, 4);
        let code = k.register_code(CodeBlock::new("long", 16, WorkProfile::flops(1_000_000), 8));
        k.initiate(0, 0, code, 1, None, 0);
        k.send(
            500,
            0,
            0,
            KernelMessage::TerminateNotify { task: TaskId(0) },
        );
        let makespan = k.run();
        assert_eq!(k.task(TaskId(0)).state, TaskState::Done);
        assert_eq!(k.completions().len(), 1);
        // Killed well before its 4M-cycle run would have finished... the PE
        // keeps draining charged cycles, but the task is logically done at
        // the kill time.
        let (_, done_at) = k.completions()[0];
        assert!(done_at < 100_000, "killed at {done_at}");
        let _ = makespan;
    }

    #[test]
    fn fault_requeues_running_task() {
        let mut k = sim(1, 2); // one worker (PE 1)
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 1, None, 0);
        // Fail the worker while the task runs; kernel PE 0 survives and the
        // machine stops dedicating it (single survivor), so the task reruns
        // on PE 0.
        let plan = FaultPlan::at(300, [PeId::new(0, 1)]);
        k.inject_faults(&plan);
        k.run();
        assert!(k.all_done());
        assert_eq!(k.completions().len(), 1);
        assert_eq!(k.machine.reconfigurations, 1);
    }

    #[test]
    fn kernel_pe_fault_promotes_and_work_continues() {
        let mut k = sim(1, 4);
        let code = small_code(&mut k);
        k.initiate(0, 0, code, 8, None, 0);
        let plan = FaultPlan::at(1, [PeId::new(0, 0)]);
        k.inject_faults(&plan);
        k.run();
        assert!(k.all_done());
        assert_eq!(k.completions().len(), 8);
        assert_eq!(k.machine.kernel_pe(0), PeId::new(0, 1));
    }

    #[test]
    fn oom_drops_task_creation() {
        let mut m = Machine::new(MachineConfig::clustered(1, 2, Topology::Bus));
        // Tiny memory: only the code image fits.
        let mut cfg = m.config.clone();
        cfg.memory_per_cluster = 70;
        m = Machine::new(cfg);
        let mut k = KernelSim::new(m);
        let code = k.register_code(CodeBlock::new(
            "big_locals",
            64,
            WorkProfile::flops(10),
            1000,
        ));
        k.initiate(0, 0, code, 1, None, 0);
        k.run();
        assert_eq!(k.dropped, 1);
        assert_eq!(k.completions().len(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut k = sim(2, 4);
            let code = small_code(&mut k);
            k.initiate(0, 0, code, 5, None, 4);
            k.send(
                0,
                0,
                1,
                KernelMessage::InitiateTask {
                    code,
                    replications: 5,
                    parent: None,
                    args_words: 4,
                },
            );
            let makespan = k.run();
            (makespan, k.completions().to_vec(), k.machine.stats.total())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tasks_spread_over_clusters_finish_sooner() {
        // Same 8 tasks: one cluster vs spread over four.
        let mut k1 = sim(1, 3); // 2 workers
        let c1 = small_code(&mut k1);
        k1.initiate(0, 0, c1, 8, None, 0);
        let t_one = k1.run();

        let mut k4 = sim(4, 3); // 8 workers total
        let c4 = small_code(&mut k4);
        for c in 0..4 {
            k4.send(
                0,
                c,
                c,
                KernelMessage::InitiateTask {
                    code: c4,
                    replications: 2,
                    parent: None,
                    args_words: 0,
                },
            );
        }
        let t_four = k4.run();
        assert!(t_four < t_one, "spread {t_four} < single {t_one}");
    }
}
